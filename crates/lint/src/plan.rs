//! The plan pass: structural verification of processing trees.
//!
//! Walks the PT once, tracking (a) the temporaries in scope — a `Fix`
//! introduces its temporary for its recursive leg only — and (b) the
//! columns each enclosing operator still needs, so a projection that
//! drops a column consumed upstream is caught where it happens. Shape
//! errors surfaced by [`Pt::output_columns`] are attributed to the
//! shallowest node whose children are themselves well-formed.

use std::collections::{BTreeSet, HashMap};

use oorq_pt::{propagated_columns, type_of_column_expr, AccessMethod, JoinAlgo, Pt, PtEnv};
use oorq_query::Expr;
use oorq_schema::ResolvedType;
use oorq_storage::IndexKindDesc;

use crate::diag::{LintCode, LintReport};

type Cols = Vec<(String, ResolvedType)>;
type Scope = HashMap<String, Cols>;

/// Verify a processing tree against its environment. The environment's
/// `temp_fields` seed the temporary scope (temporaries defined by an
/// enclosing context, e.g. while linting a fixpoint leg in isolation).
pub fn verify_pt(env: &PtEnv, pt: &Pt) -> LintReport {
    let mut report = LintReport::new();
    check(
        env,
        &env.temp_fields.clone(),
        pt,
        "plan",
        &BTreeSet::new(),
        &mut report,
    );
    report
}

fn label(pt: &Pt) -> String {
    match pt {
        Pt::Entity { var, .. } => format!("Entity({var})"),
        Pt::Temp { name, .. } => format!("Temp({name})"),
        Pt::Sel { .. } => "Sel".into(),
        Pt::Proj { .. } => "Proj".into(),
        Pt::IJ { step, .. } => format!("IJ_{}", step.name),
        Pt::PIJ { .. } => "PIJ".into(),
        Pt::EJ { .. } => "EJ".into(),
        Pt::Union { .. } => "Union".into(),
        Pt::Fix { temp, .. } => format!("Fix({temp})"),
    }
}

fn env_with<'a>(base: &PtEnv<'a>, scope: &Scope) -> PtEnv<'a> {
    PtEnv {
        catalog: base.catalog,
        physical: base.physical,
        temp_fields: scope.clone(),
    }
}

/// True when every `Entity` and `PIJ` id in the subtree is in range —
/// the precondition for calling `output_columns` without panicking.
fn ids_ok(base: &PtEnv, pt: &Pt) -> bool {
    let n_entities = base.physical.entities().len();
    let n_indexes = base.physical.indexes().len();
    let mut ok = true;
    pt.visit(&mut |node| match node {
        Pt::Entity { id, .. } if id.0 as usize >= n_entities => ok = false,
        Pt::PIJ { index, .. } if index.0 as usize >= n_indexes => ok = false,
        _ => {}
    });
    ok
}

/// Output columns of a subtree, or `None` when they cannot be derived.
fn cols_of(base: &PtEnv, scope: &Scope, pt: &Pt) -> Option<Cols> {
    if !ids_ok(base, pt) {
        return None;
    }
    pt.output_columns(&env_with(base, scope)).ok()
}

/// Column references of an expression, resolved against `cols`: a path
/// may mean its base column or the qualified `base.step` column. The
/// first set is every demanded name (unresolvable references kept
/// verbatim, so the demand still reaches the projection that dropped
/// them); the second is just the unresolvable ones.
fn expr_refs(e: &Expr, cols: &BTreeSet<String>) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut used = BTreeSet::new();
    let mut unresolved = BTreeSet::new();
    let mut path_bases: BTreeSet<&str> = BTreeSet::new();
    for (bs, steps) in e.paths() {
        path_bases.insert(bs);
        if cols.contains(bs) {
            used.insert(bs.to_string());
        } else {
            let qualified = steps
                .first()
                .map(|first| format!("{bs}.{first}"))
                .filter(|q| cols.contains(q));
            match qualified {
                Some(q) => {
                    used.insert(q);
                }
                None => {
                    used.insert(bs.to_string());
                    unresolved.insert(bs.to_string());
                }
            }
        }
    }
    for v in e.vars() {
        if !path_bases.contains(v.as_str()) {
            if !cols.contains(&v) {
                unresolved.insert(v.clone());
            }
            used.insert(v);
        }
    }
    (used, unresolved)
}

fn used_cols(e: &Expr, cols: &BTreeSet<String>) -> BTreeSet<String> {
    expr_refs(e, cols).0
}

fn names(cols: &Cols) -> BTreeSet<String> {
    cols.iter().map(|(n, _)| n.clone()).collect()
}

fn colmap(cols: &Cols) -> HashMap<String, ResolvedType> {
    cols.iter().cloned().collect()
}

fn map_pt_error(e: &oorq_pt::PtError) -> LintCode {
    use oorq_pt::PtError::*;
    match e {
        FixBodyNotUnion => LintCode::FixBodyNotUnion,
        FixNotRecursive(_) => LintCode::FixNoRecursiveLeg,
        UnionShapeMismatch => LintCode::UnionShapeMismatch,
        TempAsEntity(_) | UnknownTemp(_) => LintCode::UndefinedTemp,
        NotAReference(_) => LintCode::BadIjStep,
        NotAPathIndex => LintCode::BadIndex,
        PathIndexArity { .. } => LintCode::BadIjStep,
        Typing(_) | BadPath { .. } | UnboundPatternVar(_) => LintCode::IllTypedPredicate,
    }
}

/// Report references of `e` that no column of `cols` satisfies, and any
/// type-check failure. (The typing pass alone is not enough: boolean
/// connectives type as `Bool` without visiting their operands, so a
/// predicate over a missing column would slip through.)
fn check_expr(
    base: &PtEnv,
    code: LintCode,
    e: &Expr,
    cols: &Cols,
    loc: &str,
    what: &str,
    report: &mut LintReport,
) {
    let (_, unresolved) = expr_refs(e, &names(cols));
    for name in unresolved {
        report.push(
            code,
            loc,
            format!("{what} references `{name}`, which the input does not produce"),
        );
    }
    if let Err(err) = type_of_column_expr(base.catalog, e, &colmap(cols)) {
        report.push(code, loc, format!("{what} does not type-check: {err}"));
    }
}

/// Check a selection/probe index reference: in range and of the
/// expected kind.
fn check_sel_index(base: &PtEnv, id: oorq_storage::IndexId, loc: &str, report: &mut LintReport) {
    match base.physical.indexes().get(id.0 as usize) {
        None => report.push(
            LintCode::BadIndex,
            loc,
            format!("index #{} does not exist", id.0),
        ),
        Some(d) => {
            if !matches!(d.kind, IndexKindDesc::Selection { .. }) {
                report.push(
                    LintCode::BadIndex,
                    loc,
                    "a path index cannot serve a selection probe",
                );
            }
        }
    }
}

fn check(
    base: &PtEnv,
    scope: &Scope,
    pt: &Pt,
    path: &str,
    needed: &BTreeSet<String>,
    report: &mut LintReport,
) {
    let loc = format!("{path}/{}", label(pt));
    // Tracks whether every child derived its columns; shape errors of
    // this node are only attributed here when they did (otherwise the
    // deeper recursion reports the root cause).
    let mut children_ok = true;

    match pt {
        Pt::Entity { id, .. } => {
            if id.0 as usize >= base.physical.entities().len() {
                report.push(
                    LintCode::UndefinedTemp,
                    &loc,
                    format!("entity id #{} is not in the physical schema", id.0),
                );
                return;
            }
        }
        Pt::Temp { name, .. } => {
            if !scope.contains_key(name) {
                report.push(
                    LintCode::UndefinedTemp,
                    &loc,
                    format!("temporary `{name}` is not defined in this scope"),
                );
                return;
            }
        }
        Pt::Sel {
            pred,
            method,
            input,
        } => {
            if let AccessMethod::Index(ix) = method {
                check_sel_index(base, *ix, &loc, report);
            }
            let in_cols = cols_of(base, scope, input);
            let child_needed = match &in_cols {
                Some(cols) => {
                    check_expr(
                        base,
                        LintCode::IllTypedPredicate,
                        pred,
                        cols,
                        &loc,
                        "selection predicate",
                        report,
                    );
                    // Selection passes every input column through, so
                    // upstream demands propagate unchanged.
                    let mut n = needed.clone();
                    n.extend(used_cols(pred, &names(cols)));
                    n
                }
                None => {
                    children_ok = false;
                    BTreeSet::new()
                }
            };
            check(base, scope, input, &loc, &child_needed, report);
        }
        Pt::Proj { cols, input } => {
            if cols.is_empty() {
                report.push(
                    LintCode::EmptyProjection,
                    &loc,
                    "projection onto zero columns",
                );
            }
            let out_names: BTreeSet<String> = cols.iter().map(|(n, _)| n.clone()).collect();
            let missing: Vec<&String> = needed.difference(&out_names).collect();
            if !missing.is_empty() {
                let list = missing
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                report.push(
                    LintCode::ProjDropsNeeded,
                    &loc,
                    format!("drops column(s) an enclosing operator consumes: {list}"),
                );
            }
            let in_cols = cols_of(base, scope, input);
            let child_needed = match &in_cols {
                Some(icols) => {
                    let nm = names(icols);
                    let mut n = BTreeSet::new();
                    for (name, e) in cols {
                        check_expr(
                            base,
                            LintCode::IllTypedPredicate,
                            e,
                            icols,
                            &loc,
                            &format!("projection of `{name}`"),
                            report,
                        );
                        n.extend(used_cols(e, &nm));
                    }
                    n
                }
                None => {
                    children_ok = false;
                    BTreeSet::new()
                }
            };
            check(base, scope, input, &loc, &child_needed, report);
        }
        Pt::IJ {
            on,
            out,
            input,
            target,
            ..
        } => {
            let in_cols = cols_of(base, scope, input);
            let child_needed = match &in_cols {
                Some(cols) => {
                    check_expr(
                        base,
                        LintCode::BadIjStep,
                        on,
                        cols,
                        &loc,
                        "IJ on-expression",
                        report,
                    );
                    let mut n = needed.clone();
                    n.remove(out);
                    n.extend(used_cols(on, &names(cols)));
                    n
                }
                None => {
                    children_ok = false;
                    BTreeSet::new()
                }
            };
            check(base, scope, input, &loc, &child_needed, report);
            children_ok &= cols_of(base, scope, target).is_some();
            check(base, scope, target, &loc, &BTreeSet::new(), report);
        }
        Pt::PIJ {
            index,
            on,
            outs,
            input,
            targets,
            ..
        } => {
            match base.physical.indexes().get(index.0 as usize) {
                None => report.push(
                    LintCode::BadIndex,
                    &loc,
                    format!("index #{} does not exist", index.0),
                ),
                Some(d) => {
                    if !matches!(d.kind, IndexKindDesc::Path { .. }) {
                        report.push(
                            LintCode::BadIndex,
                            &loc,
                            "PIJ requires a path index, got a selection index",
                        );
                    }
                }
            }
            let in_cols = cols_of(base, scope, input);
            let child_needed = match &in_cols {
                Some(cols) => {
                    check_expr(
                        base,
                        LintCode::BadIjStep,
                        on,
                        cols,
                        &loc,
                        "PIJ head-oid expression",
                        report,
                    );
                    let mut n = needed.clone();
                    for o in outs {
                        n.remove(o);
                    }
                    n.extend(used_cols(on, &names(cols)));
                    n
                }
                None => {
                    children_ok = false;
                    BTreeSet::new()
                }
            };
            check(base, scope, input, &loc, &child_needed, report);
            for t in targets {
                children_ok &= cols_of(base, scope, t).is_some();
                check(base, scope, t, &loc, &BTreeSet::new(), report);
            }
        }
        Pt::EJ {
            pred,
            algo,
            left,
            right,
        } => {
            if let JoinAlgo::IndexJoin(ix) = algo {
                check_sel_index(base, *ix, &loc, report);
            }
            let lcols = cols_of(base, scope, left);
            let rcols = cols_of(base, scope, right);
            let (mut lneeded, mut rneeded) = (BTreeSet::new(), BTreeSet::new());
            if let (Some(lc), Some(rc)) = (&lcols, &rcols) {
                let lnames = names(lc);
                let rnames = names(rc);
                for dup in lnames.intersection(&rnames) {
                    report.push(
                        LintCode::DuplicateColumn,
                        &loc,
                        format!("both sides produce column `{dup}`"),
                    );
                }
                let mut both = lc.clone();
                both.extend(rc.iter().cloned());
                check_expr(
                    base,
                    LintCode::IllTypedPredicate,
                    pred,
                    &both,
                    &loc,
                    "join predicate",
                    report,
                );
                let all_names: BTreeSet<String> = lnames.union(&rnames).cloned().collect();
                let mut all: BTreeSet<String> = needed.intersection(&all_names).cloned().collect();
                all.extend(used_cols(pred, &all_names));
                lneeded = all.intersection(&lnames).cloned().collect();
                rneeded = all.intersection(&rnames).cloned().collect();
            } else {
                children_ok = false;
            }
            check(base, scope, left, &loc, &lneeded, report);
            check(base, scope, right, &loc, &rneeded, report);
        }
        Pt::Union { left, right } => {
            let lcols = cols_of(base, scope, left);
            let rcols = cols_of(base, scope, right);
            if let (Some(lc), Some(rc)) = (&lcols, &rcols) {
                if names(lc) != names(rc) {
                    report.push(
                        LintCode::UnionShapeMismatch,
                        &loc,
                        format!(
                            "legs produce different columns: {:?} vs {:?}",
                            names(lc),
                            names(rc)
                        ),
                    );
                }
            } else {
                children_ok = false;
            }
            let lneeded = lcols.as_ref().map(names).unwrap_or_default();
            let rneeded = rcols.as_ref().map(names).unwrap_or_default();
            check(base, scope, left, &loc, &lneeded, report);
            check(base, scope, right, &loc, &rneeded, report);
        }
        Pt::Fix { temp, body } => {
            let Pt::Union { left, right } = body.as_ref() else {
                report.push(
                    LintCode::FixBodyNotUnion,
                    &loc,
                    "fixpoint body must be Union(base, recursive)",
                );
                check(base, scope, body, &loc, &BTreeSet::new(), report);
                return;
            };
            let l_rec = left.references_temp(temp);
            let r_rec = right.references_temp(temp);
            if !l_rec && !r_rec {
                report.push(
                    LintCode::FixNoRecursiveLeg,
                    &loc,
                    format!("no leg references the temporary `{temp}`"),
                );
            }
            if l_rec && r_rec {
                report.push(
                    LintCode::FixNoBaseLeg,
                    &loc,
                    format!("every leg references `{temp}`: no base case seeds the fixpoint"),
                );
            }
            let (base_leg, rec_leg) = if l_rec {
                (right.as_ref(), left.as_ref())
            } else {
                (left.as_ref(), right.as_ref())
            };
            let bcols = cols_of(base, scope, base_leg);
            let bneeded = bcols.as_ref().map(names).unwrap_or_default();
            check(base, scope, base_leg, &loc, &bneeded, report);

            // The recursive leg sees the temporary, shaped like the base
            // leg's output (unqualified field names, as the executor and
            // cost model register it).
            let fields: Cols = bcols
                .as_ref()
                .map(|c| {
                    c.iter()
                        .map(|(n, ty)| {
                            let short = n.rsplit('.').next().unwrap_or(n).to_string();
                            (short, ty.clone())
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut inner = scope.clone();
            inner.insert(temp.clone(), fields);
            let rcols = cols_of(base, &inner, rec_leg);
            let rneeded = rcols.as_ref().map(names).unwrap_or_default();
            check(base, &inner, rec_leg, &loc, &rneeded, report);

            if let (Some(bc), Some(rc)) = (&bcols, &rcols) {
                if names(bc) != names(rc) {
                    report.push(
                        LintCode::UnionShapeMismatch,
                        &loc,
                        format!(
                            "base and recursive legs differ: {:?} vs {:?}",
                            names(bc),
                            names(rc)
                        ),
                    );
                }
                if (l_rec ^ r_rec) && propagated_columns(pt).is_empty() {
                    report.push(
                        LintCode::NoPropagatedColumns,
                        &loc,
                        "no temporary column is propagated verbatim; nothing is pushable",
                    );
                }
            } else {
                children_ok = false;
            }
            // Shape errors of the Fix itself (e.g. base leg unable to
            // provide columns) were attributed above; done.
            if children_ok {
                if let Err(e) = pt.output_columns(&env_with(base, scope)) {
                    report.push(map_pt_error(&e), &loc, format!("{e}"));
                }
            }
            return;
        }
    }

    // Attribute this node's own shape error (children were fine).
    if children_ok && ids_ok(base, pt) {
        if let Err(e) = pt.output_columns(&env_with(base, scope)) {
            report.push(map_pt_error(&e), &loc, format!("{e}"));
        }
    }
}
