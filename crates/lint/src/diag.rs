//! Diagnostics: stable lint codes, severities and the report container.

use std::collections::BTreeSet;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The construct is wrong: evaluating it would fail or give a wrong
    /// answer.
    Error,
    /// Legal but suspicious — usually a modelling mistake.
    Warn,
    /// Informational: a property worth knowing, not a defect.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Note => "note",
        };
        write!(f, "{s}")
    }
}

/// Every check the lint engine performs, with a stable code.
///
/// `QG*` codes come from the query-graph pass ([`crate::lint_graph`]),
/// `PT*` from the plan pass ([`crate::verify_pt`]) and `CM*` from the
/// cost-model pass ([`crate::lint_plan_cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    // ---- query-graph pass ------------------------------------------
    /// A predicate or projection references a variable no tree label or
    /// root binding introduces.
    UnboundVariable,
    /// An arc references a name the graph/catalog does not define.
    UnknownName,
    /// Two bindings of one predicate node introduce the same variable.
    DuplicateVariable,
    /// A tree label names an attribute its input type does not have.
    BadLabel,
    /// A recursive name with no non-recursive alternative: the fixpoint
    /// starts from nothing and stays empty (or is not computable).
    UnsafeRecursion,
    /// An alternative consumes its own name more than once (non-linear
    /// recursion, outside the semi-naive/[KL86] assumptions).
    NonLinearRecursion,
    /// A name is produced but unreachable from the answer.
    UnreachableNode,
    /// A dependency cycle among derived names none of which the answer
    /// needs.
    DeadViewCycle,
    /// Two distinct names consume each other (mutual recursion — not
    /// expressible as a single linear fixpoint here).
    MutualRecursion,
    /// A bound variable no predicate or projection uses.
    UnusedVariable,
    /// A multi-input predicate node with no conjunct connecting its
    /// inputs (Cartesian product).
    CartesianProduct,
    /// The name is linearly recursive (the shape `Fix` handles well).
    LinearRecursion,

    // ---- plan pass --------------------------------------------------
    /// A `Fix` body is not a `Union` of a base and a recursive leg.
    FixBodyNotUnion,
    /// No leg of the fixpoint body references the temporary.
    FixNoRecursiveLeg,
    /// Every leg of the fixpoint body references the temporary: there is
    /// no base case to seed the iteration.
    FixNoBaseLeg,
    /// An `IJ`/`PIJ` step is unusable: the `on` column is absent from
    /// the input, or the step's attribute is not a reference.
    BadIjStep,
    /// An operator names an index that does not exist or has the wrong
    /// kind for the operator.
    BadIndex,
    /// A projection drops a column an enclosing operator still consumes.
    ProjDropsNeeded,
    /// The two legs of a union produce different column sets.
    UnionShapeMismatch,
    /// A predicate or projection expression does not type-check against
    /// the columns actually produced below it.
    IllTypedPredicate,
    /// A temporary is referenced outside any scope that defines it.
    UndefinedTemp,
    /// A join produces the same column name from both sides.
    DuplicateColumn,
    /// A projection onto zero columns.
    EmptyProjection,
    /// A fixpoint body propagates no temporary columns verbatim, so no
    /// selection can ever be pushed through it ([KL86]).
    NoPropagatedColumns,

    // ---- cost-model pass --------------------------------------------
    /// A cardinality or page estimate is negative or NaN.
    NegativeCardinality,
    /// A cost figure is negative, NaN or infinite.
    NonFiniteCost,
    /// A selection is estimated to *grow* its input (selectivity > 1).
    SelectivityOutOfRange,

    // ---- calibration drift pass -------------------------------------
    /// An operator's predicted page accesses drift beyond tolerance from
    /// the observed ones.
    IoDrift,
    /// An operator's predicted evaluations drift beyond tolerance from
    /// the observed ones.
    CpuDrift,
    /// An operator's predicted output cardinality drifts beyond
    /// tolerance from the observed row count.
    RowsDrift,
    /// A plan node in the cost breakdown has no observed counterpart (or
    /// vice versa) — predicted-vs-observed attribution is incomplete.
    UnmatchedOperator,
    /// A fixpoint profile's predicted iteration count drifts beyond
    /// tolerance from the observed semi-naive pass count.
    FixIterationsDrift,
    /// A fixpoint profile's predicted delta mass drifts beyond tolerance
    /// from the observed delta curve's total.
    FixDeltaMassDrift,
    /// The model and the run disagree about which side of the spill
    /// cliff the plan is on: breaker pages modeled past the memory
    /// budget against observed spill evictions.
    SpillDrift,

    // ---- physical-plan pass -----------------------------------------
    /// Physical operator ids are not dense and unique.
    PhysOpIds,
    /// A physical operator's output columns disagree with its operands.
    PhysColsMismatch,
    /// A union/fixpoint permutation does not map its operand's columns.
    PhysBadPerm,
    /// A physical operator names a missing or wrong-kind index.
    PhysBadIndex,
    /// A temp scan outside any defining fixpoint scope.
    PhysUndefinedTemp,
    /// A nested loop marked rescannable over a non-rescannable inner.
    PhysBadRescan,
    /// An entity scan references an entity out of range.
    PhysBadEntity,
    /// An exchange operator wraps a subtree it cannot partition (a
    /// materializing breaker, global dedup, or index-driven root).
    ExchangeUnderBreaker,
    /// A merge operator's permutation slots disagree with its child
    /// count (or a permutation fails to map a child's columns).
    MergeArityMismatch,
    /// A materializing breaker's estimated page footprint exceeds the
    /// executor's breaker memory budget: the answer stays correct, but
    /// LRU spill makes its re-reads pay full page I/O.
    BreakerOverBudget,

    // ---- abstract-interpretation (static bounds) pass ---------------
    /// An observed operator row counter escapes its static interval.
    BoundRowsViolated,
    /// An observed operator page-access counter escapes its static
    /// interval.
    BoundPagesViolated,
    /// An observed fixpoint ran more semi-naive passes than the static
    /// bound allows.
    BoundPassesViolated,
    /// A computed projection column is never consumed upstream (dead
    /// definition beyond PT006's shape check).
    DeadComputedColumn,
    /// A fixpoint's key space is unbounded: termination rests on the
    /// iteration cap, not on a finiteness proof.
    FixKeySpaceUnbounded,
    /// A fixpoint whose base leg is provably empty: the whole fixpoint
    /// produces nothing.
    FixProvablyEmpty,
    /// The analysis derived a degenerate interval (`lo > hi` or NaN
    /// endpoint) — an internal soundness failure.
    DegenerateInterval,
}

impl LintCode {
    /// The stable short code (what tests and tools match on).
    pub fn code(&self) -> &'static str {
        match self {
            LintCode::UnboundVariable => "QG001",
            LintCode::UnknownName => "QG002",
            LintCode::DuplicateVariable => "QG003",
            LintCode::BadLabel => "QG004",
            LintCode::UnsafeRecursion => "QG005",
            LintCode::NonLinearRecursion => "QG006",
            LintCode::UnreachableNode => "QG007",
            LintCode::DeadViewCycle => "QG008",
            LintCode::MutualRecursion => "QG009",
            LintCode::UnusedVariable => "QG010",
            LintCode::CartesianProduct => "QG011",
            LintCode::LinearRecursion => "QG012",
            LintCode::FixBodyNotUnion => "PT001",
            LintCode::FixNoRecursiveLeg => "PT002",
            LintCode::FixNoBaseLeg => "PT003",
            LintCode::BadIjStep => "PT004",
            LintCode::BadIndex => "PT005",
            LintCode::ProjDropsNeeded => "PT006",
            LintCode::UnionShapeMismatch => "PT007",
            LintCode::IllTypedPredicate => "PT008",
            LintCode::UndefinedTemp => "PT009",
            LintCode::DuplicateColumn => "PT010",
            LintCode::EmptyProjection => "PT011",
            LintCode::NoPropagatedColumns => "PT012",
            LintCode::NegativeCardinality => "CM001",
            LintCode::NonFiniteCost => "CM002",
            LintCode::SelectivityOutOfRange => "CM003",
            LintCode::IoDrift => "CX001",
            LintCode::CpuDrift => "CX002",
            LintCode::RowsDrift => "CX003",
            LintCode::UnmatchedOperator => "CX004",
            LintCode::FixIterationsDrift => "CX005",
            LintCode::FixDeltaMassDrift => "CX006",
            LintCode::SpillDrift => "CX007",
            LintCode::PhysOpIds => "PX001",
            LintCode::PhysColsMismatch => "PX002",
            LintCode::PhysBadPerm => "PX003",
            LintCode::PhysBadIndex => "PX004",
            LintCode::PhysUndefinedTemp => "PX005",
            LintCode::PhysBadRescan => "PX006",
            LintCode::PhysBadEntity => "PX007",
            LintCode::ExchangeUnderBreaker => "PX008",
            LintCode::MergeArityMismatch => "PX009",
            LintCode::BreakerOverBudget => "PX010",
            LintCode::BoundRowsViolated => "AB001",
            LintCode::BoundPagesViolated => "AB002",
            LintCode::BoundPassesViolated => "AB003",
            LintCode::DeadComputedColumn => "AB004",
            LintCode::FixKeySpaceUnbounded => "AB005",
            LintCode::FixProvablyEmpty => "AB006",
            LintCode::DegenerateInterval => "AB007",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(&self) -> Severity {
        use LintCode::*;
        match self {
            UnboundVariable
            | UnknownName
            | DuplicateVariable
            | BadLabel
            | UnsafeRecursion
            | MutualRecursion
            | FixBodyNotUnion
            | FixNoRecursiveLeg
            | FixNoBaseLeg
            | BadIjStep
            | BadIndex
            | ProjDropsNeeded
            | UnionShapeMismatch
            | IllTypedPredicate
            | UndefinedTemp
            | NegativeCardinality
            | NonFiniteCost
            | SelectivityOutOfRange
            | PhysOpIds
            | PhysColsMismatch
            | PhysBadPerm
            | PhysBadIndex
            | PhysUndefinedTemp
            | PhysBadRescan
            | PhysBadEntity
            | ExchangeUnderBreaker
            | MergeArityMismatch
            | BoundRowsViolated
            | BoundPagesViolated
            | BoundPassesViolated
            | DegenerateInterval => Severity::Error,
            NonLinearRecursion | UnreachableNode | DeadViewCycle | DuplicateColumn
            | EmptyProjection | IoDrift | CpuDrift | RowsDrift | FixIterationsDrift
            | FixDeltaMassDrift | SpillDrift | BreakerOverBudget | FixProvablyEmpty => {
                Severity::Warn
            }
            UnusedVariable | CartesianProduct | LinearRecursion | NoPropagatedColumns
            | UnmatchedOperator | DeadComputedColumn | FixKeySpaceUnbounded => Severity::Note,
        }
    }

    /// All codes the engine can emit, in code order.
    pub fn all() -> &'static [LintCode] {
        use LintCode::*;
        &[
            UnboundVariable,
            UnknownName,
            DuplicateVariable,
            BadLabel,
            UnsafeRecursion,
            NonLinearRecursion,
            UnreachableNode,
            DeadViewCycle,
            MutualRecursion,
            UnusedVariable,
            CartesianProduct,
            LinearRecursion,
            FixBodyNotUnion,
            FixNoRecursiveLeg,
            FixNoBaseLeg,
            BadIjStep,
            BadIndex,
            ProjDropsNeeded,
            UnionShapeMismatch,
            IllTypedPredicate,
            UndefinedTemp,
            DuplicateColumn,
            EmptyProjection,
            NoPropagatedColumns,
            NegativeCardinality,
            NonFiniteCost,
            SelectivityOutOfRange,
            IoDrift,
            CpuDrift,
            RowsDrift,
            UnmatchedOperator,
            FixIterationsDrift,
            FixDeltaMassDrift,
            SpillDrift,
            PhysOpIds,
            PhysColsMismatch,
            PhysBadPerm,
            PhysBadIndex,
            PhysUndefinedTemp,
            PhysBadRescan,
            PhysBadEntity,
            ExchangeUnderBreaker,
            MergeArityMismatch,
            BreakerOverBudget,
            BoundRowsViolated,
            BoundPagesViolated,
            BoundPassesViolated,
            DeadComputedColumn,
            FixKeySpaceUnbounded,
            FixProvablyEmpty,
            DegenerateInterval,
        ]
    }

    /// One-line description of what the check enforces.
    pub fn describe(&self) -> &'static str {
        use LintCode::*;
        match self {
            UnboundVariable => "variable used but never bound by a tree label",
            UnknownName => "arc references a name the graph does not define",
            DuplicateVariable => "variable bound twice in one predicate node",
            BadLabel => "tree label names an attribute the input type lacks",
            UnsafeRecursion => "recursive name with no non-recursive alternative",
            NonLinearRecursion => "alternative consumes its own name twice",
            UnreachableNode => "produced name unreachable from the answer",
            DeadViewCycle => "dependency cycle the answer never consumes",
            MutualRecursion => "two names consume each other",
            UnusedVariable => "bound variable is never used",
            CartesianProduct => "multi-input node with no connecting conjunct",
            LinearRecursion => "name is linearly recursive",
            FixBodyNotUnion => "Fix body is not a Union",
            FixNoRecursiveLeg => "no leg of the fixpoint references the temporary",
            FixNoBaseLeg => "every leg of the fixpoint references the temporary",
            BadIjStep => "IJ/PIJ step unusable on its input",
            BadIndex => "operator names a missing or wrong-kind index",
            ProjDropsNeeded => "projection drops a column consumed upstream",
            UnionShapeMismatch => "union legs produce different columns",
            IllTypedPredicate => "expression does not type-check over its columns",
            UndefinedTemp => "temporary referenced outside a defining scope",
            DuplicateColumn => "join duplicates a column name",
            EmptyProjection => "projection onto zero columns",
            NoPropagatedColumns => "fixpoint propagates no columns (nothing pushable)",
            NegativeCardinality => "negative or NaN cardinality estimate",
            NonFiniteCost => "negative, NaN or infinite cost estimate",
            SelectivityOutOfRange => "selection estimated to grow its input",
            IoDrift => "predicted page accesses drift beyond tolerance from observed",
            CpuDrift => "predicted evaluations drift beyond tolerance from observed",
            RowsDrift => "predicted cardinality drifts beyond tolerance from observed rows",
            UnmatchedOperator => "cost-breakdown node without an observed counterpart",
            FixIterationsDrift => {
                "modeled fixpoint iteration count drifts from the observed passes"
            }
            FixDeltaMassDrift => "modeled fixpoint delta mass drifts from the observed curve",
            SpillDrift => "modeled spill-cliff side disagrees with observed spill evictions",
            PhysOpIds => "physical operator ids not dense and unique",
            PhysColsMismatch => "physical operator columns disagree with operands",
            PhysBadPerm => "union/fixpoint permutation does not map operand columns",
            PhysBadIndex => "physical operator names a missing or wrong-kind index",
            PhysUndefinedTemp => "temp scanned outside a defining fixpoint",
            PhysBadRescan => "nested-loop rescan over a non-rescannable inner",
            PhysBadEntity => "entity scan references an entity out of range",
            ExchangeUnderBreaker => {
                "exchange placed under/over a materializing breaker it cannot help"
            }
            MergeArityMismatch => "merge permutation slots disagree with its child count",
            BreakerOverBudget => "breaker footprint exceeds the memory budget (expect spill)",
            BoundRowsViolated => "observed row counter escapes its static interval",
            BoundPagesViolated => "observed page-access counter escapes its static interval",
            BoundPassesViolated => "fixpoint exceeded its static semi-naive pass bound",
            DeadComputedColumn => "computed projection column never consumed upstream",
            FixKeySpaceUnbounded => "fixpoint key space unbounded; termination rests on the cap",
            FixProvablyEmpty => "fixpoint base leg provably empty",
            DegenerateInterval => "analysis derived a degenerate interval (lo > hi or NaN)",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding: a code, where it was found, and what was seen.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: LintCode,
    /// Where: a node path in the plan, or a name/node in the graph.
    pub location: String,
    /// What was observed.
    pub message: String,
}

impl Diagnostic {
    /// Severity, from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity(),
            self.code.code(),
            self.location,
            self.message
        )
    }
}

/// The outcome of a lint pass: every diagnostic found, in discovery
/// order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Record a finding.
    pub fn push(
        &mut self,
        code: LintCode,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            location: location.into(),
            message: message.into(),
        });
    }

    /// True when no `Error`-severity finding was recorded.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// True when a specific code fired.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct stable codes that fired.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    /// Absorb another report.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Human-readable rendering, one diagnostic per line.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}
