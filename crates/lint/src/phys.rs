//! The physical-plan pass: well-formedness of lowered plans.
//!
//! Lowering ([`oorq_pt::lower`]) resolves access methods, column
//! layouts and permutations once; the executor then trusts them on the
//! hot path. This pass re-derives every resolved fact and checks it
//! (`PX*` codes), the same trust boundary the PT pass guards for the
//! optimizer: operator ids dense and unique, per-operator output
//! columns consistent with the operands, union/fixpoint permutations
//! actually permutations of the operand columns, index kinds matching
//! the operators that probe them, temporaries scanned only under a
//! defining fixpoint, and nested-loop rescans only over rescannable
//! inners.

use std::collections::BTreeSet;

use oorq_pt::{PhysOp, PhysPlan, PtEnv};
use oorq_storage::IndexKindDesc;

use crate::diag::{LintCode, LintReport};

/// Verify a lowered physical plan against its environment. The
/// environment's `temp_fields` seed the temporary scope (temporaries
/// defined by an enclosing context).
pub fn verify_phys(env: &PtEnv, plan: &PhysPlan) -> LintReport {
    let mut report = LintReport::new();

    // Operator ids: dense and unique over 0..plan.ops.
    let mut seen = vec![false; plan.ops];
    let mut count = 0usize;
    plan.root.visit(&mut |op| {
        count += 1;
        let id = op.meta().id;
        match seen.get_mut(id) {
            Some(s) if !*s => *s = true,
            _ => report.push(
                LintCode::PhysOpIds,
                format!("#{id}"),
                format!(
                    "operator id {id} duplicate or out of range (ops={})",
                    plan.ops
                ),
            ),
        }
    });
    if count != plan.ops {
        report.push(
            LintCode::PhysOpIds,
            "plan",
            format!("plan declares {} operators but contains {count}", plan.ops),
        );
    }

    let scope: BTreeSet<String> = env.temp_fields.keys().cloned().collect();
    check(env, &scope, &plan.root, &mut report);
    report
}

fn loc(op: &PhysOp) -> String {
    format!("#{} {}", op.meta().id, op.meta().label)
}

fn cols_mismatch(op: &PhysOp, expect: &[String], report: &mut LintReport) {
    if op.cols() != expect {
        report.push(
            LintCode::PhysColsMismatch,
            loc(op),
            format!(
                "output columns [{}] inconsistent with operands (expected [{}])",
                op.cols().join(", "),
                expect.join(", ")
            ),
        );
    }
}

/// Check that `perm` (or the identity, when absent) maps `from` onto
/// `to` name-for-name.
fn check_perm(
    op: &PhysOp,
    perm: &Option<Vec<usize>>,
    to: &[String],
    from: &[String],
    report: &mut LintReport,
) {
    let aligned = match perm {
        None => to == from,
        Some(p) => {
            p.len() == to.len()
                && p.iter()
                    .zip(to)
                    .all(|(&i, want)| from.get(i).is_some_and(|have| have == want))
        }
    };
    if !aligned {
        report.push(
            LintCode::PhysBadPerm,
            loc(op),
            format!(
                "permutation does not map [{}] onto [{}]",
                from.join(", "),
                to.join(", ")
            ),
        );
    }
}

fn check_selection_index(
    env: &PtEnv,
    op: &PhysOp,
    idx: oorq_storage::IndexId,
    report: &mut LintReport,
) {
    match env.physical.indexes().get(idx.0 as usize).map(|d| &d.kind) {
        Some(IndexKindDesc::Selection { .. }) => {}
        Some(_) => report.push(
            LintCode::PhysBadIndex,
            loc(op),
            format!("index {} is not a selection index", idx.0),
        ),
        None => report.push(
            LintCode::PhysBadIndex,
            loc(op),
            format!("index {} does not exist", idx.0),
        ),
    }
}

fn check(env: &PtEnv, scope: &BTreeSet<String>, op: &PhysOp, report: &mut LintReport) {
    match op {
        PhysOp::EntityScan { entity, .. } => {
            if entity.0 as usize >= env.physical.entities().len() {
                report.push(
                    LintCode::PhysBadEntity,
                    loc(op),
                    format!("entity {} out of range", entity.0),
                );
            }
        }
        PhysOp::TempScan { name, .. } => {
            if !scope.contains(name) {
                report.push(
                    LintCode::PhysUndefinedTemp,
                    loc(op),
                    format!("temp `{name}` scanned outside a defining fixpoint"),
                );
            }
        }
        PhysOp::IndexSelect { index, var, .. } => {
            check_selection_index(env, op, *index, report);
            cols_mismatch(op, std::slice::from_ref(var), report);
        }
        PhysOp::Filter {
            require_index,
            input,
            ..
        } => {
            if let Some(idx) = require_index {
                check_selection_index(env, op, *idx, report);
            }
            cols_mismatch(op, input.cols(), report);
        }
        PhysOp::Project { exprs, .. } => {
            let expect: Vec<String> = exprs.iter().map(|(n, _)| n.clone()).collect();
            cols_mismatch(op, &expect, report);
        }
        PhysOp::IjDeref { out, input, .. } => {
            let mut expect = input.cols().to_vec();
            expect.push(out.clone());
            cols_mismatch(op, &expect, report);
        }
        PhysOp::PijLookup {
            index, outs, input, ..
        } => {
            match env
                .physical
                .indexes()
                .get(index.0 as usize)
                .map(|d| &d.kind)
            {
                Some(IndexKindDesc::Path { path }) => {
                    if outs.len() > path.len() {
                        report.push(
                            LintCode::PhysBadIndex,
                            loc(op),
                            format!(
                                "path index {} has {} steps but {} outputs bound",
                                index.0,
                                path.len(),
                                outs.len()
                            ),
                        );
                    }
                }
                Some(_) => report.push(
                    LintCode::PhysBadIndex,
                    loc(op),
                    format!("index {} is not a path index", index.0),
                ),
                None => report.push(
                    LintCode::PhysBadIndex,
                    loc(op),
                    format!("index {} does not exist", index.0),
                ),
            }
            let mut expect = input.cols().to_vec();
            expect.extend(outs.iter().cloned());
            cols_mismatch(op, &expect, report);
        }
        PhysOp::NlJoin {
            rescan_inner,
            require_index,
            left,
            right,
            ..
        } => {
            if let Some(idx) = require_index {
                check_selection_index(env, op, *idx, report);
            }
            if *rescan_inner && !right.rescannable() {
                report.push(
                    LintCode::PhysBadRescan,
                    loc(op),
                    "rescan_inner set over a non-rescannable inner".to_string(),
                );
            }
            let mut expect = left.cols().to_vec();
            expect.extend(right.cols().iter().cloned());
            cols_mismatch(op, &expect, report);
        }
        PhysOp::IndexJoin {
            index, var, left, ..
        } => {
            check_selection_index(env, op, *index, report);
            let mut expect = left.cols().to_vec();
            expect.push(var.clone());
            cols_mismatch(op, &expect, report);
        }
        PhysOp::UnionAll {
            perm, left, right, ..
        } => {
            cols_mismatch(op, left.cols(), report);
            check_perm(op, perm, op.cols(), right.cols(), report);
        }
        PhysOp::FixPoint {
            temp,
            fields,
            perm,
            base,
            rec,
            ..
        } => {
            let expect: Vec<String> = fields.iter().map(|(n, _)| n.clone()).collect();
            cols_mismatch(op, &expect, report);
            if base.cols() != expect.as_slice() {
                report.push(
                    LintCode::PhysColsMismatch,
                    loc(op),
                    format!(
                        "fixpoint fields [{}] differ from base columns [{}]",
                        expect.join(", "),
                        base.cols().join(", ")
                    ),
                );
            }
            check_perm(op, perm, &expect, rec.cols(), report);
            let mut inner = scope.clone();
            inner.insert(temp.clone());
            check(env, &inner, base, report);
            check(env, &inner, rec, report);
            return; // children handled with the extended scope
        }
        PhysOp::Exchange { workers, input, .. } => {
            if !oorq_pt::exchange_eligible(input) {
                report.push(
                    LintCode::ExchangeUnderBreaker,
                    loc(op),
                    "exchange over a subtree it cannot partition (pipeline breaker, \
                     global dedup, or index-driven root); partitioning the driver \
                     scan would change results or buy nothing"
                        .to_string(),
                );
            }
            if *workers < 2 {
                report.push(
                    LintCode::ExchangeUnderBreaker,
                    loc(op),
                    format!("exchange with {workers} worker(s) is a no-op wrapper"),
                );
            }
            cols_mismatch(op, input.cols(), report);
        }
        PhysOp::Merge {
            perms, children, ..
        } => {
            if perms.len() != children.len() || children.is_empty() {
                report.push(
                    LintCode::MergeArityMismatch,
                    loc(op),
                    format!(
                        "merge has {} children but {} permutation slots",
                        children.len(),
                        perms.len()
                    ),
                );
            } else {
                cols_mismatch(op, children[0].cols(), report);
                for (perm, child) in perms.iter().zip(children) {
                    check_perm(op, perm, op.cols(), child.cols(), report);
                }
            }
        }
    }
    for c in op.children() {
        check(env, scope, c, report);
    }
}
