//! Static verification of query graphs and processing trees.
//!
//! Optimizers that transform complete plans (the paper's §4
//! `transformPT` and the randomized walks of §5) are only trustworthy
//! if every intermediate plan stays well-formed. This crate provides
//! the invariant checks:
//!
//! - [`lint_graph`] — the *graph pass*: tree-label binding discipline,
//!   name resolution against the catalog, recursion classification
//!   (linear / non-linear / unsafe), reachability and dead view cycles.
//! - [`verify_pt`] — the *plan pass*: fixpoint shape, implicit-join
//!   steps against the physical schema, projections vs. columns
//!   consumed upstream, expression typing, temporary scoping.
//! - [`lint_plan_cost`] — the *cost pass*: finite non-negative
//!   estimates, selectivities within [0, 1].
//! - [`lint_drift`] — the *calibration pass*: per-operator predicted
//!   vs observed accounting, flagging estimates that drift beyond
//!   tolerance (`CX*`).
//!
//! Every check has a stable code ([`LintCode`],
//! `QG*`/`PT*`/`CM*`/`CX*`/`PX*`) and
//! a fixed severity; a [`LintReport`] is clean when no error-severity
//! diagnostic fired. The optimizer runs the plan pass after every
//! transformation in debug builds; the executor re-checks its input
//! plan at the boundary.

mod cost;
mod diag;
mod drift;
mod graph;
mod phys;
mod plan;

pub use cost::{lint_breaker_budget, lint_cost_figures, lint_plan_cost, lint_selection_rows};
pub use diag::{Diagnostic, LintCode, LintReport, Severity};
pub use drift::{
    lint_drift, lint_fix_drift, lint_spill_drift, DriftTolerance, ObservedFix, ObservedOp,
};
pub use graph::lint_graph;
pub use phys::verify_phys;
pub use plan::verify_pt;

use oorq_query::{parse_program, ParseError, ParsedProgram};
use oorq_schema::Catalog;

/// Record every diagnostic of a report as a structured trace event
/// (cat `lint`, name `violation`) carrying the stable code, severity,
/// location and message, plus a `lint.violations` counter bump. A
/// no-op on a disabled recorder or a clean report.
pub fn record_report(obs: &oorq_obs::Recorder, stage: &str, report: &LintReport) {
    if !obs.enabled() {
        return;
    }
    for d in &report.diagnostics {
        obs.event(
            "lint",
            "violation",
            vec![
                ("stage".into(), stage.into()),
                ("code".into(), d.code.code().into()),
                ("severity".into(), d.severity().to_string().into()),
                ("location".into(), d.location.clone().into()),
                ("message".into(), d.message.clone().into()),
            ],
        );
        obs.counter_add("lint.violations", 1.0);
    }
}

/// Parse a program and lint the resulting (unexpanded) query graph in
/// one step. Parse errors abort; lint findings are returned alongside
/// the program for the caller to act on.
pub fn parse_linted(
    catalog: &Catalog,
    src: &str,
) -> Result<(ParsedProgram, LintReport), ParseError> {
    let program = parse_program(catalog, src)?;
    let report = lint_graph(catalog, &program.graph);
    Ok((program, report))
}

#[cfg(test)]
mod tests;
