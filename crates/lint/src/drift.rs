//! The calibration-drift pass (`CX*`): predicted vs observed
//! per-operator accounting.
//!
//! The cost pass (`CM*`) proves estimates are *well-formed*; this pass
//! checks they are *honest*. Given the optimizer's per-node cost
//! breakdown and the executor's per-operator counters (summarised by
//! the caller into [`ObservedOp`] — this crate never depends on the
//! executor), it joins the two on the shared PT pre-order node index
//! and flags operators whose predicted/observed ratio drifts beyond
//! tolerance: `CX001` for page accesses, `CX002` for evaluations,
//! `CX003` for cardinality, and `CX004` for nodes with no counterpart
//! on the other side. A second entry point ([`lint_fix_drift`]) checks
//! the *fixpoint profile* predictions: `CX005` when a modeled iteration
//! count drifts from the observed semi-naive pass count, `CX006` when
//! the modeled delta mass drifts from the observed curve's total.
//!
//! Drift lints are warnings, not errors: an estimate can be off without
//! the plan being wrong. They exist so the calibration harness (and
//! `reproduce calibrate`) can gate on systematic mis-weighting instead
//! of silently absorbing it.

use std::collections::BTreeMap;

use oorq_cost::NodeCost;

use crate::diag::{LintCode, LintReport};

/// One executed operator's observed totals, summarised by the caller
/// from the executor's exclusive per-operator report: `io` is every
/// page touched (reads + index node reads + writes), `cpu` every
/// evaluation (predicate evals + method calls), `rows` the rows
/// produced.
#[derive(Debug, Clone)]
pub struct ObservedOp {
    /// Pre-order PT node index (the join key shared with
    /// [`NodeCost::node`]).
    pub pt_node: usize,
    /// Operator label, for diagnostics.
    pub label: String,
    /// Observed page accesses.
    pub io: f64,
    /// Observed evaluations.
    pub cpu: f64,
    /// Observed output rows.
    pub rows: f64,
}

/// When is a predicted/observed pair "drifted"? Both knobs together:
/// the larger side must exceed `floor` (tiny absolute counts are never
/// drift — a 3-page prediction against 1 observed page is noise) *and*
/// the smoothed ratio `max/(min+1)` must exceed `ratio`.
#[derive(Debug, Clone, Copy)]
pub struct DriftTolerance {
    /// Maximum tolerated predicted/observed ratio (either direction).
    pub ratio: f64,
    /// Absolute magnitude below which drift is never flagged.
    pub floor: f64,
}

impl Default for DriftTolerance {
    fn default() -> Self {
        DriftTolerance {
            ratio: 4.0,
            floor: 16.0,
        }
    }
}

impl DriftTolerance {
    fn drifted(&self, pred: f64, obs: f64) -> bool {
        let pred = pred.max(0.0);
        let obs = obs.max(0.0);
        if pred.max(obs) < self.floor {
            return false;
        }
        // +1 smoothing keeps the ratio finite when one side is zero.
        (pred.max(obs) + 1.0) / (pred.min(obs) + 1.0) > self.ratio
    }
}

/// Join a plan-cost breakdown against observed per-operator totals and
/// flag calibration drift (`CX001`–`CX004`).
///
/// Breakdown lines without a node id (synthetic lines) are skipped;
/// several observations of one PT node (an operator re-instantiated by
/// the lowering) are summed before comparison. Zero-cost *and*
/// zero-observation pairs never fire.
pub fn lint_drift(
    breakdown: &[NodeCost],
    observed: &[ObservedOp],
    tol: DriftTolerance,
) -> LintReport {
    let mut report = LintReport::new();

    let mut obs_by_node: BTreeMap<usize, ObservedOp> = BTreeMap::new();
    for o in observed {
        obs_by_node
            .entry(o.pt_node)
            .and_modify(|e| {
                e.io += o.io;
                e.cpu += o.cpu;
                e.rows += o.rows;
            })
            .or_insert_with(|| o.clone());
    }

    let mut matched: Vec<usize> = Vec::new();
    for line in breakdown {
        let Some(node) = line.node else { continue };
        let loc = format!("node {} ({})", node, line.label);
        let Some(obs) = obs_by_node.get(&node) else {
            if line.cost.io > 0.0 || line.cost.cpu > 0.0 {
                report.push(
                    LintCode::UnmatchedOperator,
                    loc,
                    "cost-breakdown line has no observed operator",
                );
            }
            continue;
        };
        matched.push(node);
        if tol.drifted(line.cost.io, obs.io) {
            report.push(
                LintCode::IoDrift,
                loc.clone(),
                format!(
                    "predicted {:.1} page accesses, observed {:.1}",
                    line.cost.io, obs.io
                ),
            );
        }
        if tol.drifted(line.cost.cpu, obs.cpu) {
            report.push(
                LintCode::CpuDrift,
                loc.clone(),
                format!(
                    "predicted {:.1} evaluations, observed {:.1}",
                    line.cost.cpu, obs.cpu
                ),
            );
        }
        if tol.drifted(line.rows, obs.rows) {
            report.push(
                LintCode::RowsDrift,
                loc,
                format!("predicted {:.1} rows, observed {:.1}", line.rows, obs.rows),
            );
        }
    }

    for node in matched {
        obs_by_node.remove(&node);
    }
    for (node, o) in obs_by_node {
        if o.io > 0.0 || o.cpu > 0.0 {
            report.push(
                LintCode::UnmatchedOperator,
                format!("node {} ({})", node, o.label),
                "observed operator has no cost-breakdown line",
            );
        }
    }

    report
}

/// Check the model's spill prediction against the run (`CX007`). The
/// breakdown's breaker write footprints against the memory budget say
/// how many breaker pages the model expects to be forced out of
/// residency; the buffer manager's spill-eviction counter says how many
/// actually were. Disagreement beyond tolerance means the residency
/// model put the plan on the wrong side of the spill cliff — the exact
/// mis-prediction the spill calibration harness gates on. A budget of
/// `0` (unbounded) never fires.
pub fn lint_spill_drift(
    breakdown: &[NodeCost],
    budget_pages: u64,
    observed_spill_evictions: f64,
    tol: DriftTolerance,
) -> LintReport {
    let mut report = LintReport::new();
    if budget_pages == 0 {
        return report;
    }
    let b = budget_pages as f64;
    let predicted_excess: f64 = breakdown
        .iter()
        .map(|l| (l.feat.write_pages - b).max(0.0))
        .sum();
    if tol.drifted(predicted_excess, observed_spill_evictions.max(0.0)) {
        report.push(
            LintCode::SpillDrift,
            "plan",
            format!(
                "modeled {:.0} breaker pages past the {budget_pages}-page budget, \
                 observed {:.0} spill evictions",
                predicted_excess, observed_spill_evictions
            ),
        );
    }
    report
}

/// One executed fixpoint's observed delta curve, summarised by the
/// caller: `iterations` is the recursive-side pass count (curve length
/// minus the seed entry), `mass` the curve's total delta rows.
#[derive(Debug, Clone)]
pub struct ObservedFix {
    /// Pre-order PT node index of the `Fix` node (the join key shared
    /// with [`NodeCost::node`]).
    pub pt_node: usize,
    /// The fixpoint's temporary, for diagnostics.
    pub temp: String,
    /// Observed semi-naive pass count.
    pub iterations: f64,
    /// Observed total delta mass (sum over the curve).
    pub mass: f64,
}

/// Join the `Fix` lines of a plan-cost breakdown (those carrying a
/// modeled [`oorq_cost::FixCurve`]) against observed fixpoint curves
/// and flag profile drift: `CX005` for iteration counts, `CX006` for
/// delta mass.
///
/// Iteration counts are small integers, so their check overrides the
/// magnitude floor with a floor of 2 — a modeled 2-pass fixpoint that
/// runs a dozen passes is exactly the drift the feedback loop exists to
/// catch — while the mass check uses the caller's tolerance as-is.
pub fn lint_fix_drift(
    breakdown: &[NodeCost],
    observed: &[ObservedFix],
    tol: DriftTolerance,
) -> LintReport {
    let mut report = LintReport::new();
    let iter_tol = DriftTolerance { floor: 2.0, ..tol };
    for line in breakdown {
        let (Some(node), Some(curve)) = (line.node, line.fix.as_ref()) else {
            continue;
        };
        let Some(obs) = observed.iter().find(|o| o.pt_node == node) else {
            continue;
        };
        let loc = format!("node {} (Fix({}))", node, obs.temp);
        if iter_tol.drifted(curve.iterations, obs.iterations) {
            report.push(
                LintCode::FixIterationsDrift,
                loc.clone(),
                format!(
                    "modeled {:.0} fixpoint passes, observed {:.0}",
                    curve.iterations, obs.iterations
                ),
            );
        }
        if tol.drifted(curve.mass(), obs.mass) {
            report.push(
                LintCode::FixDeltaMassDrift,
                loc,
                format!(
                    "modeled {:.1} total delta rows, observed {:.1}",
                    curve.mass(),
                    obs.mass
                ),
            );
        }
    }
    report
}
