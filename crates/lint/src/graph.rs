//! The query-graph lint pass: binding discipline, name resolution,
//! recursion classification and reachability over `Q = {(Name ← p)}`.

use std::collections::{BTreeSet, HashMap, HashSet};

use oorq_query::{Expr, GraphTerm, NameRef, QueryGraph, SpjNode};
use oorq_schema::Catalog;

use crate::diag::{LintCode, LintReport};

/// Lint a query graph against the catalog. Tolerant: it keeps going
/// after the first problem and reports everything it can see, unlike
/// [`QueryGraph::validate`] which stops at the first error.
pub fn lint_graph(catalog: &Catalog, graph: &QueryGraph) -> LintReport {
    let mut report = LintReport::new();

    if graph.producers(&graph.answer).is_empty() {
        report.push(
            LintCode::UnknownName,
            format!("{}", graph.answer.display(catalog)),
            "the answer name has no producer",
        );
    }

    for (name, term) in &graph.nodes {
        let loc = format!("{}", name.display(catalog));
        for spj in term.spjs() {
            lint_spj(catalog, graph, &loc, spj, &mut report);
        }
    }

    lint_recursion(catalog, graph, &mut report);
    lint_reachability(catalog, graph, &mut report);
    report
}

/// Per-node checks: labels resolve, variables are bound exactly once,
/// every used variable is bound, inputs are connected.
fn lint_spj(
    catalog: &Catalog,
    graph: &QueryGraph,
    loc: &str,
    spj: &SpjNode,
    report: &mut LintReport,
) {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    // Variable → index of the arc that bound it (for the product check).
    let mut arc_of: HashMap<String, usize> = HashMap::new();

    for (i, arc) in spj.inputs.iter().enumerate() {
        let ty = match graph.type_of(catalog, &arc.name) {
            Ok(ty) => Some(ty),
            Err(e) => {
                report.push(LintCode::UnknownName, loc, format!("{e}"));
                None
            }
        };
        if let Some(ty) = &ty {
            if let Err(e) = arc.label.validate(catalog, ty) {
                report.push(LintCode::BadLabel, loc, format!("{e}"));
            }
        }
        let mut arc_vars: Vec<String> = arc.var.iter().cloned().collect();
        arc_vars.extend(arc.label.vars());
        for v in arc_vars {
            if !bound.insert(v.clone()) {
                report.push(
                    LintCode::DuplicateVariable,
                    loc,
                    format!("variable `{v}` bound more than once"),
                );
            }
            arc_of.insert(v, i);
        }
    }

    let mut used: BTreeSet<String> = spj.pred.vars();
    for (_, e) in &spj.out_proj {
        used.extend(e.vars());
    }
    for v in &used {
        if !bound.contains(v) {
            report.push(
                LintCode::UnboundVariable,
                loc,
                format!("variable `{v}` is unbound"),
            );
        }
    }
    for v in &bound {
        if !used.contains(v) {
            report.push(
                LintCode::UnusedVariable,
                loc,
                format!("variable `{v}` is never used"),
            );
        }
    }

    // Cartesian product: ≥2 inputs and no conjunct (nor projection
    // expression) mentions variables from two different arcs.
    if spj.inputs.len() >= 2 {
        let connects = |e: &Expr| {
            let arcs: HashSet<usize> = e
                .vars()
                .iter()
                .filter_map(|v| arc_of.get(v))
                .copied()
                .collect();
            arcs.len() >= 2
        };
        let connected = spj.pred.conjuncts().iter().any(|c| connects(c))
            || spj.out_proj.iter().any(|(_, e)| connects(e));
        if !connected {
            report.push(
                LintCode::CartesianProduct,
                loc,
                format!("{} inputs with no connecting condition", spj.inputs.len()),
            );
        }
    }
}

/// Classify recursion per produced name: unsafe (no base case),
/// non-linear (an alternative consumes its own name twice), or linear.
/// Mutual recursion between distinct names is flagged separately.
fn lint_recursion(catalog: &Catalog, graph: &QueryGraph, report: &mut LintReport) {
    let produced: Vec<&NameRef> = {
        let mut seen = Vec::new();
        for (name, _) in &graph.nodes {
            if !seen.contains(&name) {
                seen.push(name);
            }
        }
        seen
    };

    for name in &produced {
        let loc = format!("{}", name.display(catalog));
        // Every union alternative across every producer of the name.
        let alts: Vec<&GraphTerm> = graph
            .producers(name)
            .iter()
            .flat_map(|t| t.alternatives())
            .collect();
        let self_counts: Vec<usize> = alts
            .iter()
            .map(|alt| alt.consumed_names().iter().filter(|n| *n == name).count())
            .collect();
        let recursive = self_counts.iter().any(|&c| c > 0);
        if !recursive {
            continue;
        }
        if !self_counts.contains(&0) {
            report.push(
                LintCode::UnsafeRecursion,
                &loc,
                "recursive with no non-recursive alternative (empty fixpoint)",
            );
        }
        if self_counts.iter().any(|&c| c >= 2) {
            report.push(
                LintCode::NonLinearRecursion,
                &loc,
                "an alternative consumes the name more than once",
            );
        } else {
            report.push(LintCode::LinearRecursion, &loc, "linearly recursive");
        }
    }

    // Mutual recursion / dead cycles: transitive dependencies among
    // produced names, ignoring direct self-loops (those are the linear
    // recursion handled above).
    let reachable = reachable_from_answer(graph);
    let mut flagged: HashSet<(usize, usize)> = HashSet::new();
    for (i, a) in produced.iter().enumerate() {
        let a_reaches = transitive_deps(graph, a);
        for (j, b) in produced.iter().enumerate() {
            if i >= j || !a_reaches.contains(*b) {
                continue;
            }
            if transitive_deps(graph, b).contains(*a) && flagged.insert((i, j)) {
                let code = if reachable.contains(*a) || reachable.contains(*b) {
                    LintCode::MutualRecursion
                } else {
                    LintCode::DeadViewCycle
                };
                report.push(
                    code,
                    format!("{}", a.display(catalog)),
                    format!(
                        "cycle with `{}` (each consumes the other)",
                        b.display(catalog)
                    ),
                );
            }
        }
    }
}

/// Names transitively consumed by the producers of `start`, excluding
/// the trivial `start → start` self-edge.
fn transitive_deps<'g>(graph: &'g QueryGraph, start: &NameRef) -> HashSet<&'g NameRef> {
    let mut seen: HashSet<&NameRef> = HashSet::new();
    let mut work: Vec<&NameRef> = Vec::new();
    for t in graph.producers(start) {
        for n in t.consumed_names() {
            if n != start && seen.insert(n) {
                work.push(n);
            }
        }
    }
    while let Some(n) = work.pop() {
        for t in graph.producers(n) {
            for m in t.consumed_names() {
                if seen.insert(m) {
                    work.push(m);
                }
            }
        }
    }
    seen
}

/// Names reachable from the answer through producer → consumed edges.
fn reachable_from_answer(graph: &QueryGraph) -> HashSet<&NameRef> {
    let mut seen: HashSet<&NameRef> = HashSet::new();
    let mut work = vec![&graph.answer];
    seen.insert(&graph.answer);
    while let Some(n) = work.pop() {
        for t in graph.producers(n) {
            for m in t.consumed_names() {
                if seen.insert(m) {
                    work.push(m);
                }
            }
        }
    }
    seen
}

/// Produced names the answer can never consume.
fn lint_reachability(catalog: &Catalog, graph: &QueryGraph, report: &mut LintReport) {
    let reachable = reachable_from_answer(graph);
    let mut flagged: HashSet<&NameRef> = HashSet::new();
    for (name, _) in &graph.nodes {
        if !reachable.contains(name) && flagged.insert(name) {
            report.push(
                LintCode::UnreachableNode,
                format!("{}", name.display(catalog)),
                "produced but unreachable from the answer",
            );
        }
    }
}
