//! One intentionally broken fixture per lint code, plus clean paper
//! fixtures that must stay clean.

use std::sync::Arc;

use oorq_pt::{IjStep, Pt, PtEnv};
use oorq_query::paper::{fig2_query, fig3_query, influencer_view, music_catalog};
use oorq_query::{Expr, NameRef, QArc, QueryGraph, SpjNode, TreeLabel};
use oorq_schema::Catalog;
use oorq_storage::{Database, StorageConfig};

use crate::{
    lint_breaker_budget, lint_drift, lint_graph, lint_spill_drift, verify_phys, verify_pt,
    DriftTolerance, LintCode, LintReport, ObservedOp, Severity,
};

fn setup() -> (Arc<Catalog>, Database) {
    let cat = Arc::new(music_catalog());
    let db = Database::new(Arc::clone(&cat), StorageConfig::default());
    (cat, db)
}

fn answer() -> NameRef {
    NameRef::Derived("Answer".into())
}

/// An SPJ selecting composers by name — the building block the broken
/// fixtures perturb.
fn simple_spj(cat: &Catalog) -> SpjNode {
    let composer = cat.class_by_name("Composer").unwrap();
    SpjNode {
        inputs: vec![QArc {
            name: NameRef::Class(composer),
            var: Some("x".into()),
            label: TreeLabel::leaf().attr_var("name", "n"),
        }],
        pred: Expr::var("n").eq(Expr::text("Bach")),
        out_proj: vec![("who".into(), Expr::var("x"))],
    }
}

// ---- graph pass -----------------------------------------------------

#[test]
fn clean_paper_queries_lint_clean() {
    let (cat, _) = setup();
    for g in [fig2_query(&cat), fig3_query(&cat)] {
        let report = lint_graph(&cat, &g);
        assert!(report.is_clean(), "unexpected errors:\n{report}");
    }
    // The recursive view, expanded: clean, and noted as linear.
    let mut g = fig3_query(&cat);
    influencer_view(&cat).expand(&mut g, &cat).unwrap();
    let report = lint_graph(&cat, &g);
    assert!(report.is_clean(), "unexpected errors:\n{report}");
    assert!(report.has(LintCode::LinearRecursion));
}

#[test]
fn unbound_variable_is_reported() {
    let (cat, _) = setup();
    let mut spj = simple_spj(&cat);
    spj.pred = Expr::var("ghost").eq(Expr::text("Bach"));
    let mut g = QueryGraph::new(answer());
    g.add_spj(answer(), spj);
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::UnboundVariable), "{report}");
    assert!(!report.is_clean());
}

#[test]
fn unknown_name_is_reported() {
    let (cat, _) = setup();
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Derived("Nowhere".into()), "x")],
            pred: Expr::True,
            out_proj: vec![("who".into(), Expr::var("x"))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::UnknownName), "{report}");
}

#[test]
fn duplicate_variable_is_reported() {
    let (cat, _) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Class(composer), "x"),
                QArc::new(NameRef::Class(composer), "x"),
            ],
            pred: Expr::path("x", &["name"]).eq(Expr::text("Bach")),
            out_proj: vec![("who".into(), Expr::var("x"))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::DuplicateVariable), "{report}");
}

#[test]
fn bad_label_is_reported() {
    let (cat, _) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![QArc {
                name: NameRef::Class(composer),
                var: Some("x".into()),
                label: TreeLabel::leaf().attr_var("no_such_attribute", "n"),
            }],
            pred: Expr::var("n").eq(Expr::text("Bach")),
            out_proj: vec![("who".into(), Expr::var("x"))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::BadLabel), "{report}");
}

#[test]
fn unsafe_recursion_without_base_case() {
    let (cat, _) = setup();
    let loop_name = NameRef::Derived("Loop".into());
    let mut g = QueryGraph::new(answer());
    // Loop consumes only itself: an empty fixpoint.
    g.add_spj(
        loop_name.clone(),
        SpjNode {
            inputs: vec![QArc::new(loop_name.clone(), "l")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("l"))],
        },
    );
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![QArc::new(loop_name, "l")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("l"))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::UnsafeRecursion), "{report}");
}

#[test]
fn non_linear_recursion_is_flagged() {
    let (cat, _) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let anc = NameRef::Derived("Anc".into());
    let mut g = QueryGraph::new(answer());
    // Base case.
    g.add_spj(
        anc.clone(),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    // Doubly recursive case: Anc ⋈ Anc.
    g.add_spj(
        anc.clone(),
        SpjNode {
            inputs: vec![QArc::new(anc.clone(), "a"), QArc::new(anc.clone(), "b")],
            pred: Expr::path("a", &["v"]).eq(Expr::path("b", &["v"])),
            out_proj: vec![("v".into(), Expr::path("a", &["v"]))],
        },
    );
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![QArc::new(anc, "a")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::path("a", &["v"]))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::NonLinearRecursion), "{report}");
    // Warn, not error: still evaluable, just outside the [KL86] shape.
    assert_eq!(LintCode::NonLinearRecursion.severity(), Severity::Warn);
}

#[test]
fn unreachable_node_is_flagged() {
    let (cat, _) = setup();
    let mut g = QueryGraph::new(answer());
    g.add_spj(answer(), simple_spj(&cat));
    g.add_spj(NameRef::Derived("Orphan".into()), simple_spj(&cat));
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::UnreachableNode), "{report}");
    assert!(
        report.is_clean(),
        "unreachability is a warning, not an error"
    );
}

#[test]
fn mutual_recursion_is_reported() {
    let (cat, _) = setup();
    let a = NameRef::Derived("A".into());
    let b = NameRef::Derived("B".into());
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        a.clone(),
        SpjNode {
            inputs: vec![QArc::new(b.clone(), "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    g.add_spj(
        b.clone(),
        SpjNode {
            inputs: vec![QArc::new(a.clone(), "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![QArc::new(a, "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::MutualRecursion), "{report}");
}

#[test]
fn cartesian_product_is_noted() {
    let (cat, _) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let instrument = cat.class_by_name("Instrument").unwrap();
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        answer(),
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Class(composer), "x"),
                QArc::new(NameRef::Class(instrument), "y"),
            ],
            pred: Expr::path("x", &["name"]).eq(Expr::text("Bach")),
            out_proj: vec![
                ("who".into(), Expr::var("x")),
                ("what".into(), Expr::var("y")),
            ],
        },
    );
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::CartesianProduct), "{report}");
    assert!(report.is_clean(), "a product is legal, only noted");
}

// ---- plan pass ------------------------------------------------------

/// `select x from Composer` as a one-entity plan.
fn scan(cat: &Catalog, db: &Database) -> Pt {
    let composer = cat.class_by_name("Composer").unwrap();
    Pt::entity(db.physical().entities_of_class(composer)[0], "x")
}

#[test]
fn clean_plan_verifies() {
    let (cat, db) = setup();
    let plan = Pt::proj(
        vec![("who".into(), Expr::var("x"))],
        Pt::sel(
            Expr::path("x", &["name"]).eq(Expr::text("Bach")),
            scan(&cat, &db),
        ),
    );
    let env = PtEnv::new(&cat, db.physical());
    let report = verify_pt(&env, &plan);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn fix_body_must_be_union() {
    let (cat, db) = setup();
    let plan = Pt::fix("T", scan(&cat, &db));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::FixBodyNotUnion), "{report}");
}

#[test]
fn fix_without_recursive_leg() {
    let (cat, db) = setup();
    let leg = || Pt::proj(vec![("who".into(), Expr::var("x"))], scan(&cat, &db));
    let plan = Pt::fix("T", Pt::union(leg(), leg()));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::FixNoRecursiveLeg), "{report}");
}

#[test]
fn fix_without_base_leg() {
    let (cat, db) = setup();
    let leg = || Pt::proj(vec![("who".into(), Expr::var("t.who"))], Pt::temp("T", "t"));
    let plan = Pt::fix("T", Pt::union(leg(), leg()));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::FixNoBaseLeg), "{report}");
}

#[test]
fn projection_dropping_consumed_column() {
    let (cat, db) = setup();
    // The selection consumes `who`, the projection below only keeps
    // `other`.
    let plan = Pt::sel(
        Expr::var("who").eq(Expr::text("Bach")),
        Pt::proj(
            vec![("other".into(), Expr::path("x", &["name"]))],
            scan(&cat, &db),
        ),
    );
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::ProjDropsNeeded), "{report}");
}

#[test]
fn union_shape_mismatch() {
    let (cat, db) = setup();
    let plan = Pt::union(
        Pt::proj(vec![("a".into(), Expr::var("x"))], scan(&cat, &db)),
        Pt::proj(vec![("b".into(), Expr::var("x"))], scan(&cat, &db)),
    );
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::UnionShapeMismatch), "{report}");
}

#[test]
fn ill_typed_predicate() {
    let (cat, db) = setup();
    let plan = Pt::sel(
        Expr::var("no_such_column").eq(Expr::int(1)),
        scan(&cat, &db),
    );
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::IllTypedPredicate), "{report}");
}

#[test]
fn undefined_temporary() {
    let (cat, db) = setup();
    let plan = Pt::proj(
        vec![("who".into(), Expr::var("t.who"))],
        Pt::temp("NeverDefined", "t"),
    );
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::UndefinedTemp), "{report}");
    // The same temporary in scope is fine.
    let env = PtEnv::new(&cat, db.physical()).with_temp(
        "NeverDefined",
        vec![(
            "who".into(),
            oorq_schema::ResolvedType::Object(cat.class_by_name("Composer").unwrap()),
        )],
    );
    assert!(verify_pt(&env, &plan).is_clean());
}

#[test]
fn bad_index_kind_for_probe() {
    let (cat, mut db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let (works, _) = cat.attr(composer, "works").unwrap();
    let composition = cat.class_by_name("Composition").unwrap();
    let (instruments, _) = cat.attr(composition, "instruments").unwrap();
    let pix = db.physical_mut().add_index(
        oorq_storage::IndexKindDesc::Path {
            path: vec![(composer, works), (composition, instruments)],
        },
        oorq_storage::IndexStats {
            nblevels: 2,
            nbleaves: 30,
        },
    );
    // A path index used as a selection probe.
    let plan = Pt::Sel {
        pred: Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        method: oorq_pt::AccessMethod::Index(pix),
        input: Box::new(scan(&cat, &db)),
    };
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::BadIndex), "{report}");
}

#[test]
fn bad_ij_on_expression() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let (master, _) = cat.attr(composer, "master").unwrap();
    let plan = Pt::IJ {
        on: Expr::path("nobody", &["master"]),
        step: IjStep::class_attr(&cat, composer, master),
        out: "m".into(),
        input: Box::new(scan(&cat, &db)),
        target: Box::new(scan(&cat, &db)),
    };
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::BadIjStep), "{report}");
}

#[test]
fn report_renders_codes_and_severities() {
    let (cat, db) = setup();
    let plan = Pt::sel(Expr::var("ghost").eq(Expr::int(1)), scan(&cat, &db));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    let text = report.render();
    assert!(text.contains("PT008"), "{text}");
    assert!(text.contains("error"), "{text}");
    // The code table is complete and stable.
    assert!(LintCode::all().len() >= 10);
    for code in LintCode::all() {
        assert!(!code.code().is_empty());
        assert!(!code.describe().is_empty());
    }
}

// ---- physical-plan pass ---------------------------------------------

/// A lowered fixpoint plan (the Influencer shape) for the phys pass.
fn lowered_fix(cat: &Catalog, db: &Database) -> oorq_pt::PhysPlan {
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
        ],
        Pt::entity(e, "x"),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("R", "i"),
            Pt::entity(e, "x"),
        ),
    );
    let fix = Pt::fix("R", Pt::union(base, rec));
    oorq_pt::lower(&PtEnv::new(cat, db.physical()), &fix).expect("lowers")
}

#[test]
fn lowered_plans_verify_clean() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    let plan = lowered_fix(&cat, &db);
    let report = verify_phys(&env, &plan);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn phys_op_count_mismatch_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    let mut plan = lowered_fix(&cat, &db);
    plan.ops += 1;
    let report = verify_phys(&env, &plan);
    assert!(report.has(LintCode::PhysOpIds), "{report}");
}

fn phys_meta(id: usize) -> oorq_pt::OpMeta {
    oorq_pt::OpMeta {
        id,
        pt_node: id,
        label: format!("op{id}"),
    }
}

fn phys_scan(cat: &Catalog, db: &Database, id: usize, var: &str) -> oorq_pt::PhysOp {
    let composer = cat.class_by_name("Composer").unwrap();
    oorq_pt::PhysOp::EntityScan {
        meta: phys_meta(id),
        entity: db.physical().entities_of_class(composer)[0],
        var: var.into(),
        class: Some(composer),
        cols: vec![var.into()],
    }
}

#[test]
fn phys_cols_mismatch_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // A filter claiming columns its input does not produce.
    let root = oorq_pt::PhysOp::Filter {
        meta: phys_meta(0),
        pred: Expr::True,
        require_index: None,
        input: Box::new(phys_scan(&cat, &db, 1, "x")),
        cols: vec!["y".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 2 });
    assert!(report.has(LintCode::PhysColsMismatch), "{report}");
}

#[test]
fn phys_bad_union_permutation_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // Identity columns but a perm that maps both outputs to column 0.
    let root = oorq_pt::PhysOp::UnionAll {
        meta: phys_meta(0),
        perm: Some(vec![0, 0]),
        left: Box::new(oorq_pt::PhysOp::Project {
            meta: phys_meta(1),
            exprs: vec![("a".into(), Expr::var("x")), ("b".into(), Expr::var("x"))],
            input: Box::new(phys_scan(&cat, &db, 2, "x")),
            cols: vec!["a".into(), "b".into()],
        }),
        right: Box::new(oorq_pt::PhysOp::Project {
            meta: phys_meta(3),
            exprs: vec![("a".into(), Expr::var("x")), ("b".into(), Expr::var("x"))],
            input: Box::new(phys_scan(&cat, &db, 4, "x")),
            cols: vec!["a".into(), "b".into()],
        }),
        cols: vec!["a".into(), "b".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 5 });
    assert!(report.has(LintCode::PhysBadPerm), "{report}");
}

#[test]
fn phys_undefined_temp_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    let root = oorq_pt::PhysOp::TempScan {
        meta: phys_meta(0),
        name: "Ghost".into(),
        cols: vec!["g".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 1 });
    assert!(report.has(LintCode::PhysUndefinedTemp), "{report}");
    // In scope via the environment: clean.
    let env2 = PtEnv::new(&cat, db.physical()).with_temp(
        "Ghost",
        vec![(
            "g".into(),
            oorq_schema::ResolvedType::Object(cat.class_by_name("Composer").unwrap()),
        )],
    );
    let root = oorq_pt::PhysOp::TempScan {
        meta: phys_meta(0),
        name: "Ghost".into(),
        cols: vec!["g".into()],
    };
    assert!(verify_phys(&env2, &oorq_pt::PhysPlan { root, ops: 1 }).is_clean());
}

#[test]
fn phys_bad_rescan_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // rescan_inner over a join inner: the inner is a pipeline, not a
    // rescannable leaf.
    let inner = oorq_pt::PhysOp::NlJoin {
        meta: phys_meta(1),
        pred: Expr::True,
        rescan_inner: true,
        mat_types: Vec::new(),
        require_index: None,
        left: Box::new(phys_scan(&cat, &db, 2, "b")),
        right: Box::new(phys_scan(&cat, &db, 3, "c")),
        cols: vec!["b".into(), "c".into()],
    };
    let root = oorq_pt::PhysOp::NlJoin {
        meta: phys_meta(0),
        pred: Expr::True,
        rescan_inner: true,
        mat_types: Vec::new(),
        require_index: None,
        left: Box::new(phys_scan(&cat, &db, 4, "a")),
        right: Box::new(inner),
        cols: vec!["a".into(), "b".into(), "c".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 5 });
    assert!(report.has(LintCode::PhysBadRescan), "{report}");
}

#[test]
fn phys_bad_entity_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    let root = oorq_pt::PhysOp::EntityScan {
        meta: phys_meta(0),
        entity: oorq_storage::EntityId(999),
        var: "x".into(),
        class: None,
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 1 });
    assert!(report.has(LintCode::PhysBadEntity), "{report}");
}

#[test]
fn phys_exchange_under_breaker_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // PX008: an exchange over a Project — global dedup makes the subtree
    // non-partitionable.
    let root = oorq_pt::PhysOp::Exchange {
        meta: phys_meta(0),
        workers: 2,
        input: Box::new(oorq_pt::PhysOp::Project {
            meta: phys_meta(1),
            exprs: vec![("a".into(), Expr::var("x"))],
            input: Box::new(phys_scan(&cat, &db, 2, "x")),
            cols: vec!["a".into()],
        }),
        cols: vec!["a".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 3 });
    assert!(report.has(LintCode::ExchangeUnderBreaker), "{report}");

    // A single-worker exchange is a no-op wrapper: also PX008.
    let root = oorq_pt::PhysOp::Exchange {
        meta: phys_meta(0),
        workers: 1,
        input: Box::new(phys_scan(&cat, &db, 1, "x")),
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 2 });
    assert!(report.has(LintCode::ExchangeUnderBreaker), "{report}");

    // Exchange over a partitionable spine (Filter -> EntityScan): clean.
    let root = oorq_pt::PhysOp::Exchange {
        meta: phys_meta(0),
        workers: 2,
        input: Box::new(oorq_pt::PhysOp::Filter {
            meta: phys_meta(1),
            pred: Expr::True,
            require_index: None,
            input: Box::new(phys_scan(&cat, &db, 2, "x")),
            cols: vec!["x".into()],
        }),
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 3 });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn phys_merge_arity_mismatch_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // PX009: two children but a single permutation slot.
    let root = oorq_pt::PhysOp::Merge {
        meta: phys_meta(0),
        perms: vec![None],
        children: vec![phys_scan(&cat, &db, 1, "x"), phys_scan(&cat, &db, 2, "x")],
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 3 });
    assert!(report.has(LintCode::MergeArityMismatch), "{report}");

    // A childless merge produces nothing and permutes nothing: also PX009.
    let root = oorq_pt::PhysOp::Merge {
        meta: phys_meta(0),
        perms: vec![],
        children: vec![],
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 1 });
    assert!(report.has(LintCode::MergeArityMismatch), "{report}");

    // Matching arity with identity perms: clean.
    let root = oorq_pt::PhysOp::Merge {
        meta: phys_meta(0),
        perms: vec![None, None],
        children: vec![phys_scan(&cat, &db, 1, "x"), phys_scan(&cat, &db, 2, "x")],
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 3 });
    assert!(report.is_clean(), "{report}");
}

// ---- calibration drift pass ---------------------------------------

fn node_cost(node: usize, label: &str, io: f64, cpu: f64, rows: f64) -> oorq_cost::NodeCost {
    oorq_cost::NodeCost {
        label: label.to_string(),
        kind: oorq_cost::OpKind::Sel,
        node: Some(node),
        cost: oorq_cost::Cost::new(io, cpu),
        feat: oorq_cost::CostFeatures::default(),
        rows,
        pages: 1.0,
        fix: None,
    }
}

fn observed(node: usize, label: &str, io: f64, cpu: f64, rows: f64) -> ObservedOp {
    ObservedOp {
        pt_node: node,
        label: label.to_string(),
        io,
        cpu,
        rows,
    }
}

#[test]
fn drift_clean_when_prediction_matches() {
    let breakdown = vec![node_cost(0, "scan a", 100.0, 50.0, 200.0)];
    let obs = vec![observed(0, "scan a", 110.0, 45.0, 200.0)];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.diagnostics.is_empty(), "{report}");
}

#[test]
fn drift_io_and_cpu_fire_beyond_ratio() {
    let breakdown = vec![node_cost(0, "scan a", 1000.0, 500.0, 200.0)];
    let obs = vec![observed(0, "scan a", 40.0, 20.0, 200.0)];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.has(LintCode::IoDrift), "{report}");
    assert!(report.has(LintCode::CpuDrift), "{report}");
    assert!(!report.has(LintCode::RowsDrift), "{report}");
}

#[test]
fn drift_rows_fires_on_cardinality_misestimate() {
    let breakdown = vec![node_cost(0, "Sel", 10.0, 10.0, 5000.0)];
    let obs = vec![observed(0, "Sel", 10.0, 10.0, 60.0)];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.has(LintCode::RowsDrift), "{report}");
}

#[test]
fn drift_small_counts_never_fire() {
    // Both sides below the floor: 12 vs 1 page is noise, not drift.
    let breakdown = vec![node_cost(0, "Sel", 12.0, 3.0, 8.0)];
    let obs = vec![observed(0, "Sel", 1.0, 15.0, 1.0)];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.diagnostics.is_empty(), "{report}");
}

#[test]
fn drift_unmatched_sides_reported() {
    let breakdown = vec![node_cost(0, "scan a", 100.0, 0.0, 10.0)];
    let obs = vec![observed(7, "IJ_parts", 50.0, 0.0, 10.0)];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    let unmatched = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::UnmatchedOperator)
        .count();
    assert_eq!(unmatched, 2, "{report}");
    // Notes, not errors: attribution gaps don't make the plan wrong.
    assert!(report.is_clean(), "{report}");
}

#[test]
fn drift_sums_repeated_observations_of_one_node() {
    // A fixpoint re-instantiates the rec-side scan; observations sum.
    let breakdown = vec![node_cost(3, "scan temp d", 90.0, 0.0, 30.0)];
    let obs = vec![
        observed(3, "scan temp d", 45.0, 0.0, 15.0),
        observed(3, "scan temp d", 45.0, 0.0, 15.0),
    ];
    let report = lint_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.diagnostics.is_empty(), "{report}");
}

// ---- fixpoint-profile drift pass -----------------------------------

fn fix_node(node: usize, temp: &str, iterations: f64, deltas: &[f64]) -> oorq_cost::NodeCost {
    let curve = oorq_cost::FixCurve {
        temp: temp.to_string(),
        base_rows: deltas.first().copied().unwrap_or(0.0),
        iterations,
        deltas: deltas.to_vec(),
        total_rows: deltas.iter().sum(),
        profiled: true,
    };
    oorq_cost::NodeCost {
        label: format!("Fix({temp})"),
        kind: oorq_cost::OpKind::Fix,
        node: Some(node),
        cost: oorq_cost::Cost::zero(),
        feat: oorq_cost::CostFeatures::default(),
        rows: curve.total_rows,
        pages: 1.0,
        fix: Some(curve),
    }
}

fn observed_fix(node: usize, temp: &str, iterations: f64, mass: f64) -> crate::ObservedFix {
    crate::ObservedFix {
        pt_node: node,
        temp: temp.to_string(),
        iterations,
        mass,
    }
}

#[test]
fn fix_drift_clean_when_profile_matches() {
    let breakdown = vec![fix_node(2, "Influencer", 4.0, &[20.0, 12.0, 6.0, 2.0, 0.0])];
    let obs = vec![observed_fix(2, "Influencer", 4.0, 41.0)];
    let report = crate::lint_fix_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.diagnostics.is_empty(), "{report}");
}

#[test]
fn fix_drift_iterations_fire_beyond_ratio() {
    // Modeled 2 passes, ran 12: CX005, even though both counts sit far
    // below the generic magnitude floor.
    let breakdown = vec![fix_node(2, "Influencer", 2.0, &[200.0, 100.0, 0.0])];
    let obs = vec![observed_fix(2, "Influencer", 12.0, 300.0)];
    let report = crate::lint_fix_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.has(LintCode::FixIterationsDrift), "{report}");
    assert!(!report.has(LintCode::FixDeltaMassDrift), "{report}");
    // Warnings, not errors.
    assert!(report.is_clean(), "{report}");
}

#[test]
fn fix_drift_mass_fires_on_volume_misestimate() {
    let breakdown = vec![fix_node(2, "Contains", 3.0, &[500.0, 400.0, 300.0, 0.0])];
    let obs = vec![observed_fix(2, "Contains", 3.0, 60.0)];
    let report = crate::lint_fix_drift(&breakdown, &obs, DriftTolerance::default());
    assert!(report.has(LintCode::FixDeltaMassDrift), "{report}");
    assert!(!report.has(LintCode::FixIterationsDrift), "{report}");
}

#[test]
fn fix_drift_joins_per_node_and_skips_unobserved() {
    // Two fixpoints in one plan: only the drifted node fires, keyed to
    // its own PT node; the unmatched Fix line is skipped quietly.
    let breakdown = vec![
        fix_node(2, "A", 3.0, &[50.0, 30.0, 0.0]),
        fix_node(8, "B", 2.0, &[40.0, 20.0, 0.0]),
        fix_node(11, "C", 2.0, &[10.0, 0.0]),
    ];
    let obs = vec![
        observed_fix(2, "A", 3.0, 80.0),
        observed_fix(8, "B", 2.0, 700.0),
    ];
    let report = crate::lint_fix_drift(&breakdown, &obs, DriftTolerance::default());
    assert_eq!(report.diagnostics.len(), 1, "{report}");
    assert!(report.has(LintCode::FixDeltaMassDrift), "{report}");
    assert!(
        report.diagnostics[0].location.contains("node 8"),
        "{report}"
    );
}

#[test]
fn unused_variable_is_noted() {
    let (cat, _) = setup();
    let mut spj = simple_spj(&cat);
    // `x` stays bound by the arc but nothing reads it any more.
    spj.out_proj = vec![("who".into(), Expr::var("n"))];
    let mut g = QueryGraph::new(answer());
    g.add_spj(answer(), spj);
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::UnusedVariable), "{report}");
    assert!(
        report.is_clean(),
        "an unused binding is advice, not an error"
    );
}

#[test]
fn dead_view_cycle_is_reported() {
    let (cat, _) = setup();
    // A and B feed only each other; the answer never consumes either.
    let a = NameRef::Derived("A".into());
    let b = NameRef::Derived("B".into());
    let mut g = QueryGraph::new(answer());
    g.add_spj(
        a.clone(),
        SpjNode {
            inputs: vec![QArc::new(b.clone(), "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    g.add_spj(
        b,
        SpjNode {
            inputs: vec![QArc::new(a, "x")],
            pred: Expr::True,
            out_proj: vec![("v".into(), Expr::var("x"))],
        },
    );
    g.add_spj(answer(), simple_spj(&cat));
    let report = lint_graph(&cat, &g);
    assert!(report.has(LintCode::DeadViewCycle), "{report}");
    assert!(
        !report.has(LintCode::MutualRecursion),
        "a dead cycle is not live mutual recursion: {report}"
    );
}

#[test]
fn duplicate_join_columns_are_reported() {
    let (cat, db) = setup();
    let leg = || {
        Pt::proj(
            vec![("who".into(), Expr::path("x", &["name"]))],
            scan(&cat, &db),
        )
    };
    let plan = Pt::ej(Expr::True, leg(), leg());
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::DuplicateColumn), "{report}");
}

#[test]
fn empty_projection_is_reported() {
    let (cat, db) = setup();
    let plan = Pt::proj(vec![], scan(&cat, &db));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::EmptyProjection), "{report}");
}

#[test]
fn fixpoint_without_propagated_columns_is_noted() {
    let (cat, db) = setup();
    // Both legs recompute `who` from the joined entity; no temporary
    // column survives verbatim, so no selection can commute inside.
    let base = Pt::proj(
        vec![("who".into(), Expr::path("x", &["name"]))],
        scan(&cat, &db),
    );
    let rec = Pt::proj(
        vec![("who".into(), Expr::path("x", &["name"]))],
        Pt::ej(
            Expr::var("t.who").eq(Expr::path("x", &["name"])),
            Pt::temp("T", "t"),
            scan(&cat, &db),
        ),
    );
    let plan = Pt::fix("T", Pt::union(base, rec));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(report.has(LintCode::NoPropagatedColumns), "{report}");
    // The same fixpoint propagating `who` verbatim is clean.
    let base = Pt::proj(
        vec![("who".into(), Expr::path("x", &["name"]))],
        scan(&cat, &db),
    );
    let rec = Pt::proj(
        vec![("who".into(), Expr::var("t.who"))],
        Pt::ej(
            Expr::var("t.who").eq(Expr::path("x", &["name"])),
            Pt::temp("T", "t"),
            scan(&cat, &db),
        ),
    );
    let plan = Pt::fix("T", Pt::union(base, rec));
    let report = verify_pt(&PtEnv::new(&cat, db.physical()), &plan);
    assert!(!report.has(LintCode::NoPropagatedColumns), "{report}");
}

// ---- cost pass ------------------------------------------------------

#[test]
fn cost_figures_flag_degenerate_estimates() {
    // The estimator clamps its own arithmetic, so these arms guard
    // against corrupt *inputs* (calibration files); check them against
    // hand-built figures.
    let pc = oorq_cost::PlanCost {
        cost: oorq_cost::Cost::new(-1.0, f64::NAN),
        rows: -3.0,
        breakdown: vec![node_cost(0, "Sel", 10.0, 5.0, f64::NAN)],
    };
    let report = crate::lint_cost_figures(&pc);
    assert!(report.has(LintCode::NegativeCardinality), "{report}");
    assert!(report.has(LintCode::NonFiniteCost), "{report}");
    assert!(!report.is_clean());
    // Sane figures are clean.
    let pc = oorq_cost::PlanCost {
        cost: oorq_cost::Cost::new(10.0, 5.0),
        rows: 3.0,
        breakdown: vec![node_cost(0, "Sel", 10.0, 5.0, 3.0)],
    };
    assert!(crate::lint_cost_figures(&pc).is_clean());
}

#[test]
fn selection_growing_its_input_is_reported() {
    let mut report = LintReport::new();
    crate::lint_selection_rows(100.0, 100.0, &mut report);
    assert!(report.diagnostics.is_empty(), "equal rows are fine");
    crate::lint_selection_rows(120.0, 100.0, &mut report);
    assert!(report.has(LintCode::SelectivityOutOfRange), "{report}");
}

// ---- physical-plan pass: index descriptors --------------------------

#[test]
fn phys_bad_index_is_reported() {
    let (cat, db) = setup();
    let env = PtEnv::new(&cat, db.physical());
    // A filter demanding an index that does not exist.
    let root = oorq_pt::PhysOp::Filter {
        meta: phys_meta(0),
        pred: Expr::True,
        require_index: Some(oorq_storage::IndexId(999)),
        input: Box::new(phys_scan(&cat, &db, 1, "x")),
        cols: vec!["x".into()],
    };
    let report = verify_phys(&env, &oorq_pt::PhysPlan { root, ops: 2 });
    assert!(report.has(LintCode::PhysBadIndex), "{report}");
}

// ---- breaker-budget / spill-drift passes ----------------------------

fn breaker_line(label: &str, write_pages: f64) -> oorq_cost::NodeCost {
    oorq_cost::NodeCost {
        label: label.to_string(),
        kind: oorq_cost::OpKind::Fix,
        node: Some(0),
        cost: oorq_cost::Cost::zero(),
        feat: oorq_cost::CostFeatures {
            write_pages,
            ..Default::default()
        },
        rows: 1.0,
        pages: write_pages,
        fix: None,
    }
}

#[test]
fn breaker_over_budget_is_reported() {
    let over = vec![breaker_line("Fix(R)", 96.0)];
    let report = lint_breaker_budget(&over, 8);
    assert!(report.has(LintCode::BreakerOverBudget), "{report}");
    assert_eq!(LintCode::BreakerOverBudget.severity(), Severity::Warn);
    // Fitting breakers and unbounded budgets stay quiet.
    assert!(lint_breaker_budget(&over, 0).diagnostics.is_empty());
    let fit = vec![breaker_line("Fix(R)", 4.0)];
    assert!(lint_breaker_budget(&fit, 8).diagnostics.is_empty());
}

#[test]
fn spill_drift_fires_on_cliff_disagreement() {
    let tol = DriftTolerance::default();
    let over = vec![breaker_line("Fix(R)", 96.0)];
    // Modeled 88 pages past the budget but no observed evictions: the
    // model put the plan on the wrong side of the cliff.
    let report = lint_spill_drift(&over, 8, 0.0, tol);
    assert!(report.has(LintCode::SpillDrift), "{report}");
    // Observed evictions in the modeled ballpark: quiet.
    let report = lint_spill_drift(&over, 8, 90.0, tol);
    assert!(report.diagnostics.is_empty(), "{report}");
    // Modeled fit, observed heavy spilling: drift again.
    let fit = vec![breaker_line("Fix(R)", 4.0)];
    let report = lint_spill_drift(&fit, 8, 200.0, tol);
    assert!(report.has(LintCode::SpillDrift), "{report}");
    // An unbounded budget never fires.
    assert!(lint_spill_drift(&fit, 0, 200.0, tol).diagnostics.is_empty());
}
