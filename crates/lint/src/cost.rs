//! The cost-model sanity pass: estimates must be finite, non-negative,
//! and selections must not grow their inputs.

use oorq_cost::{CostModel, PlanCost};
use oorq_pt::Pt;

use crate::diag::{LintCode, LintReport};

/// Lint the cost estimate of a plan. Subtrees the model cannot price
/// (e.g. temporaries with no registered shape) are skipped, not
/// reported — pricing failures are the plan pass's business.
pub fn lint_plan_cost(model: &CostModel<'_>, pt: &Pt) -> LintReport {
    let Ok(pc) = model.cost(pt) else {
        return LintReport::new();
    };
    let mut report = lint_cost_figures(&pc);

    // Selectivity: a selection's output cardinality must not exceed its
    // input's. Compared on whole-subtree estimates so fixpoint context
    // is irrelevant; unpriceable subtrees are skipped.
    pt.visit(&mut |node| {
        if let Pt::Sel { input, .. } = node {
            if let (Ok(outer), Ok(inner)) = (model.cost(node), model.cost(input)) {
                lint_selection_rows(outer.rows, inner.rows, &mut report);
            }
        }
    });
    report
}

/// Check the computed figures of one estimate: the answer cardinality
/// and every cost component must be finite and non-negative (`CM001`,
/// `CM002`). Exposed separately from [`lint_plan_cost`] so the checks
/// are testable against hand-built figures — the estimator itself
/// clamps its arithmetic, so a live model reaches these arms only
/// through corrupt calibration inputs (e.g. a poisoned fitted-weight
/// file).
pub fn lint_cost_figures(pc: &PlanCost) -> LintReport {
    let mut report = LintReport::new();
    if !(pc.rows.is_finite() && pc.rows >= 0.0) {
        report.push(
            LintCode::NegativeCardinality,
            "plan",
            format!("answer cardinality estimate is {}", pc.rows),
        );
    }
    for part in [("io", pc.cost.io), ("cpu", pc.cost.cpu)] {
        if !(part.1.is_finite() && part.1 >= 0.0) {
            report.push(
                LintCode::NonFiniteCost,
                "plan",
                format!("total {} cost is {}", part.0, part.1),
            );
        }
    }
    for row in &pc.breakdown {
        if !row.rows.is_finite() || row.rows < 0.0 || !row.pages.is_finite() || row.pages < 0.0 {
            report.push(
                LintCode::NegativeCardinality,
                &row.label,
                format!("rows={} pages={}", row.rows, row.pages),
            );
        }
        if !row.cost.io.is_finite()
            || row.cost.io < 0.0
            || !row.cost.cpu.is_finite()
            || row.cost.cpu < 0.0
        {
            report.push(
                LintCode::NonFiniteCost,
                &row.label,
                format!("io={} cpu={}", row.cost.io, row.cost.cpu),
            );
        }
    }
    report
}

/// Flag materializing breakers whose estimated page footprint cannot
/// stay resident under the executor's breaker memory budget (`PX010`).
/// The plan still answers correctly — the buffer manager spills
/// least-recently-used temporary pages and re-fetches them — but the
/// breaker's re-reads then pay full page I/O instead of buffer hits.
/// Breakers are the breakdown lines that write temporary pages
/// (fixpoint accumulators, materialized nested-loop inners); a budget
/// of `0` (unbounded) never fires.
pub fn lint_breaker_budget(breakdown: &[oorq_cost::NodeCost], budget_pages: u64) -> LintReport {
    let mut report = LintReport::new();
    if budget_pages == 0 {
        return report;
    }
    let b = budget_pages as f64;
    for line in breakdown {
        if line.feat.write_pages > b {
            report.push(
                LintCode::BreakerOverBudget,
                &line.label,
                format!(
                    "breaker materializes {:.0} pages against a {budget_pages}-page \
                     memory budget; expect LRU spill and page re-reads",
                    line.feat.write_pages
                ),
            );
        }
    }
    report
}

/// Check one selection's whole-subtree row estimate against its
/// input's (`CM003`). The estimator clamps selectivities to `[0, 1]`,
/// so this arm firing on a live model means the clamp regressed.
pub fn lint_selection_rows(outer_rows: f64, inner_rows: f64, report: &mut LintReport) {
    if outer_rows > inner_rows * (1.0 + 1e-9) + 1e-9 {
        report.push(
            LintCode::SelectivityOutOfRange,
            "Sel",
            format!(
                "selection grows its input: {} rows from {}",
                outer_rows, inner_rows
            ),
        );
    }
}
