//! The cost-model sanity pass: estimates must be finite, non-negative,
//! and selections must not grow their inputs.

use oorq_cost::CostModel;
use oorq_pt::Pt;

use crate::diag::{LintCode, LintReport};

/// Lint the cost estimate of a plan. Subtrees the model cannot price
/// (e.g. temporaries with no registered shape) are skipped, not
/// reported — pricing failures are the plan pass's business.
pub fn lint_plan_cost(model: &CostModel<'_>, pt: &Pt) -> LintReport {
    let mut report = LintReport::new();
    let Ok(pc) = model.cost(pt) else {
        return report;
    };

    if !(pc.rows.is_finite() && pc.rows >= 0.0) {
        report.push(
            LintCode::NegativeCardinality,
            "plan",
            format!("answer cardinality estimate is {}", pc.rows),
        );
    }
    for part in [("io", pc.cost.io), ("cpu", pc.cost.cpu)] {
        if !(part.1.is_finite() && part.1 >= 0.0) {
            report.push(
                LintCode::NonFiniteCost,
                "plan",
                format!("total {} cost is {}", part.0, part.1),
            );
        }
    }
    for row in &pc.breakdown {
        if !row.rows.is_finite() || row.rows < 0.0 || !row.pages.is_finite() || row.pages < 0.0 {
            report.push(
                LintCode::NegativeCardinality,
                &row.label,
                format!("rows={} pages={}", row.rows, row.pages),
            );
        }
        if !row.cost.io.is_finite()
            || row.cost.io < 0.0
            || !row.cost.cpu.is_finite()
            || row.cost.cpu < 0.0
        {
            report.push(
                LintCode::NonFiniteCost,
                &row.label,
                format!("io={} cpu={}", row.cost.io, row.cost.cpu),
            );
        }
    }

    // Selectivity: a selection's output cardinality must not exceed its
    // input's. Compared on whole-subtree estimates so fixpoint context
    // is irrelevant; unpriceable subtrees are skipped.
    pt.visit(&mut |node| {
        if let Pt::Sel { input, .. } = node {
            if let (Ok(outer), Ok(inner)) = (model.cost(node), model.cost(input)) {
                if outer.rows > inner.rows * (1.0 + 1e-9) + 1e-9 {
                    report.push(
                        LintCode::SelectivityOutOfRange,
                        "Sel",
                        format!(
                            "selection grows its input: {} rows from {}",
                            outer.rows, inner.rows
                        ),
                    );
                }
            }
        }
    });
    report
}
