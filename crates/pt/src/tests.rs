//! PT construction, display, typing and pattern-matching tests.

use std::sync::Arc;

use oorq_query::paper::music_catalog;
use oorq_query::Expr;
use oorq_schema::{Catalog, ResolvedType};
use oorq_storage::{Database, StorageConfig};

use crate::*;

/// A database over the Figure 1 schema (no data needed for these tests —
/// only the physical schema matters).
fn setup() -> (Arc<Catalog>, Database) {
    let cat = Arc::new(music_catalog());
    let db = Database::new(Arc::clone(&cat), StorageConfig::default());
    (cat, db)
}

#[test]
fn display_matches_paper_notation() {
    let (cat, mut db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let influencer_fields = vec![
        ("master".to_string(), ResolvedType::Object(composer)),
        ("disciple".to_string(), ResolvedType::Object(composer)),
        (
            "gen".to_string(),
            ResolvedType::Atomic(oorq_schema::AtomicType::Int),
        ),
    ];
    let (composer_e, composition_e, instrument_e, pix) = {
        let composition = cat.class_by_name("Composition").unwrap();
        let (works, _) = cat.attr(composer, "works").unwrap();
        let (instruments, _) = cat.attr(composition, "instruments").unwrap();
        let pix = db.physical_mut().add_index(
            oorq_storage::IndexKindDesc::Path {
                path: vec![(composer, works), (composition, instruments)],
            },
            oorq_storage::IndexStats {
                nblevels: 2,
                nbleaves: 30,
            },
        );
        (
            db.physical().entities_of_class(composer)[0],
            db.physical().entities_of_class(composition)[0],
            db.physical()
                .entities_of_class(cat.class_by_name("Instrument").unwrap())[0],
            pix,
        )
    };
    let (master, _) = cat.attr(composer, "master").unwrap();
    let ij = Pt::IJ {
        on: Expr::path("i", &["master"]),
        step: IjStep::class_attr(&cat, composer, master),
        out: "m".into(),
        input: Box::new(Pt::temp("Influencer", "i")),
        target: Box::new(Pt::entity(composer_e, "mc")),
    };
    let pij = Pt::PIJ {
        index: pix,
        on: Expr::var("m"),
        outs: vec!["w".into(), "ins".into()],
        input: Box::new(ij),
        targets: vec![
            Pt::entity(composition_e, "wc"),
            Pt::entity(instrument_e, "ic"),
        ],
    };
    let sel = Pt::sel(
        Expr::path("ins", &["name"]).eq(Expr::text("harpsichord")),
        pij,
    );
    let env = PtEnv::new(&cat, db.physical()).with_temp("Influencer", influencer_fields);
    assert_eq!(
        sel.display(&env).to_string(),
        "Sel_{ins.name=\"harpsichord\"}(PIJ_works.instruments(IJ_master(Influencer, \
         Composer), Composition, Instrument))"
    );
    // Output columns: Influencer fields + m + w + ins.
    let cols = sel.output_columns(&env).unwrap();
    let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["i.master", "i.disciple", "i.gen", "m", "w", "ins"]);
}

#[test]
fn tree_navigation_and_replacement() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    let pt = Pt::sel(
        Expr::var("x").eq(Expr::int(1)),
        Pt::union(Pt::entity(e, "a"), Pt::entity(e, "b")),
    );
    assert_eq!(pt.size(), 4);
    assert!(matches!(pt.at_path(&[0, 1]), Some(Pt::Entity { .. })));
    assert!(pt.at_path(&[0, 2]).is_none());
    let mut pt2 = pt.clone();
    let old = pt2.replace_at(&[0, 1], Pt::temp("T", "t")).unwrap();
    assert!(matches!(old, Pt::Entity { .. }));
    assert!(pt2.references_temp("T"));
    assert!(!pt.references_temp("T"));
    assert!(matches!(
        pt2.replace_at(&[5], Pt::temp("X", "x")),
        Err(PtError::BadPath { .. })
    ));
}

#[test]
fn fix_output_columns_come_from_base_side() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
        Pt::entity(e, "x"),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("Influencer", "i"),
            Pt::entity(e, "x"),
        ),
    );
    let fix = Pt::fix("Influencer", Pt::union(base, rec));
    let env = PtEnv::new(&cat, db.physical()).with_temp(
        "Influencer",
        vec![
            ("master".into(), ResolvedType::Object(composer)),
            ("disciple".into(), ResolvedType::Object(composer)),
            (
                "gen".into(),
                ResolvedType::Atomic(oorq_schema::AtomicType::Int),
            ),
        ],
    );
    let cols = fix.output_columns(&env).unwrap();
    let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["master", "disciple", "gen"]);
    assert!(matches!(cols[2].1, ResolvedType::Atomic(_)));
}

#[test]
fn pattern_matches_fix_through_context() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    // Sel(IJ(Fix(Union(Entity, EJ(Temp, Entity))), Entity)) — selection
    // separated from the fixpoint by an implicit join, as in Figure 4.(i).
    let fix = Pt::fix(
        "R",
        Pt::union(
            Pt::entity(e, "b"),
            Pt::ej(Expr::True, Pt::temp("R", "r"), Pt::entity(e, "x")),
        ),
    );
    let (master, _) = cat.attr(composer, "master").unwrap();
    let ij = Pt::IJ {
        on: Expr::var("d"),
        step: IjStep::class_attr(&cat, composer, master),
        out: "o".into(),
        input: Box::new(fix),
        target: Box::new(Pt::entity(e, "t")),
    };
    let sel = Pt::sel(Expr::var("o").eq(Expr::int(1)), ij);

    // Pattern: Sel(pt(Fix(Union(Base, pt'(Temp))))).
    let pattern = Pattern::sel(Pattern::context(
        "ctx",
        Pattern::fix(Pattern::union(
            Pattern::bind("base"),
            Pattern::context("rctx", Pattern::temp().named("rec")),
        ))
        .named("fix"),
    ));
    let ms = match_pattern(&sel, &pattern);
    assert!(
        !ms.is_empty(),
        "filter pattern must match through the IJ context"
    );
    let m = &ms[0];
    assert!(matches!(m.tree("base").unwrap(), Pt::Entity { .. }));
    assert!(matches!(m.tree("rec").unwrap(), Pt::Temp { .. }));
    assert!(matches!(m.tree("fix").unwrap(), Pt::Fix { .. }));
    // The outer context holds the IJ with the Fix in its hole.
    assert!(matches!(m.hole_of("ctx").unwrap(), Pt::Fix { .. }));
    assert!(!m.is_trivial_ctx("ctx"));
    // Plugging a replacement into the context rebuilds the IJ around it.
    let plugged = m.plug("ctx", Pt::temp("X", "x")).unwrap();
    assert!(matches!(plugged, Pt::IJ { .. }));
    assert!(plugged.references_temp("X"));
}

#[test]
fn transform_action_applies_and_saturates() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    // Action: collapse Union(X, X) -> X (just for testing the machinery).
    let action = TransformAction::new(
        "dedup-union",
        Pattern::union(Pattern::bind("l"), Pattern::bind("r")),
        |b| Some(b.tree("l").ok()?.clone()),
    )
    .with_constraint(|b| matches!((b.tree("l"), b.tree("r")), (Ok(l), Ok(r)) if l == r));
    let pt = Pt::union(
        Pt::union(Pt::entity(e, "a"), Pt::entity(e, "a")),
        Pt::entity(e, "a"),
    );
    let once = action.apply(&pt).unwrap();
    assert_eq!(once.size(), 3);
    let saturated = action.saturate(pt, 10);
    assert_eq!(saturated, Pt::entity(e, "a"));
    // No match -> None.
    assert!(action.apply(&Pt::entity(e, "a")).is_none());
}

#[test]
fn apply_all_enumerates_every_position() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    // Action: wrap any entity leaf in a trivial projection.
    let action = TransformAction::new("wrap", Pattern::entity().named("e"), |b| {
        Some(Pt::proj(vec![], b.tree("e").ok()?.clone()))
    });
    let pt = Pt::union(Pt::entity(e, "a"), Pt::entity(e, "b"));
    let all = action.apply_all(&pt);
    assert_eq!(all.len(), 2, "one rewrite per leaf");
    assert_ne!(all[0], all[1]);
}

// ---- lowering to physical plans -------------------------------------

/// Register a selection index on `Composer.name` in the physical schema.
fn name_index(cat: &Catalog, db: &mut Database) -> oorq_storage::IndexId {
    let composer = cat.class_by_name("Composer").unwrap();
    let (name, _) = cat.attr(composer, "name").unwrap();
    db.physical_mut().add_index(
        oorq_storage::IndexKindDesc::Selection {
            class: composer,
            attr: name,
        },
        oorq_storage::IndexStats {
            nblevels: 2,
            nbleaves: 10,
        },
    )
}

#[test]
fn lowering_resolves_index_selection_and_fallback() {
    let (cat, mut db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let sid = name_index(&cat, &mut db);
    let e = db.physical().entities_of_class(composer)[0];
    let env = PtEnv::new(&cat, db.physical());

    // A `var.attr = literal` conjunct: the probe key is resolved.
    let indexed = Pt::Sel {
        pred: Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        method: AccessMethod::Index(sid),
        input: Box::new(Pt::entity(e, "x")),
    };
    let plan = lower(&env, &indexed).unwrap();
    match &plan.root {
        PhysOp::IndexSelect { index, key, .. } => {
            assert_eq!(*index, sid);
            assert_eq!(*key, oorq_query::Literal::Text("Bach".into()));
        }
        other => panic!("expected IndexSelect, got {other:?}"),
    }
    assert!(plan.root.meta().label.starts_with("Sel^idx["));

    // No usable conjunct: degrade to a filter that still demands the
    // index structure (the interpreter's resolution order).
    let unusable = Pt::Sel {
        pred: Expr::path("x", &["name"]).ne(Expr::text("Bach")),
        method: AccessMethod::Index(sid),
        input: Box::new(Pt::entity(e, "x")),
    };
    let plan = lower(&env, &unusable).unwrap();
    match &plan.root {
        PhysOp::Filter { require_index, .. } => assert_eq!(*require_index, Some(sid)),
        other => panic!("expected Filter fallback, got {other:?}"),
    }
}

#[test]
fn lowering_resolves_index_join_outer_expression() {
    let (cat, mut db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let sid = name_index(&cat, &mut db);
    let e = db.physical().entities_of_class(composer)[0];
    let env = PtEnv::new(&cat, db.physical());

    // `l.name = r.name` with the index on the inner's `name`: the outer
    // key expression is resolved to `l.name`.
    let ej = Pt::EJ {
        pred: Expr::path("l", &["name"]).eq(Expr::path("r", &["name"])),
        algo: JoinAlgo::IndexJoin(sid),
        left: Box::new(Pt::entity(e, "l")),
        right: Box::new(Pt::entity(e, "r")),
    };
    let plan = lower(&env, &ej).unwrap();
    match &plan.root {
        PhysOp::IndexJoin { outer, var, .. } => {
            assert_eq!(*outer, Expr::path("l", &["name"]));
            assert_eq!(var, "r");
        }
        other => panic!("expected IndexJoin, got {other:?}"),
    }

    // No equality on the indexed attribute: degrade to a nested loop
    // that still demands the structure.
    let no_eq = Pt::EJ {
        pred: Expr::path("l", &["birth_year"]).ge(Expr::path("r", &["birth_year"])),
        algo: JoinAlgo::IndexJoin(sid),
        left: Box::new(Pt::entity(e, "l")),
        right: Box::new(Pt::entity(e, "r")),
    };
    let plan = lower(&env, &no_eq).unwrap();
    match &plan.root {
        PhysOp::NlJoin {
            require_index,
            rescan_inner,
            ..
        } => {
            assert_eq!(*require_index, Some(sid));
            assert!(*rescan_inner, "entity inner is honestly rescannable");
        }
        other => panic!("expected NlJoin fallback, got {other:?}"),
    }
}

#[test]
fn lowering_shares_preorder_node_numbering() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    let env = PtEnv::new(&cat, db.physical());
    let pt = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::union(Pt::entity(e, "x"), Pt::entity(e, "x")),
    );
    let ids = node_ids(&pt);
    assert_eq!(ids.len(), 4, "one id per PT node");
    let plan = lower(&env, &pt).unwrap();
    assert_eq!(plan.ops, 4, "one operator per node here");
    // Pre-order: Sel=0, Union=1, left Entity=2, right Entity=3 — and the
    // lowered operators carry exactly those indices.
    let mut seen = Vec::new();
    plan.root.visit(&mut |op| seen.push(op.meta().pt_node));
    assert_eq!(seen, vec![0, 1, 2, 3]);
    // Operator ids are dense and unique.
    let mut op_ids = Vec::new();
    plan.root.visit(&mut |op| op_ids.push(op.meta().id));
    op_ids.sort_unstable();
    assert_eq!(op_ids, vec![0, 1, 2, 3]);
}

#[test]
fn lowering_fix_aligns_recursive_columns() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];
    let env = PtEnv::new(&cat, db.physical());
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
        ],
        Pt::entity(e, "x"),
    );
    // The recursive side emits the same columns in swapped order.
    let rec = Pt::proj(
        vec![
            ("disciple".into(), Expr::var("x")),
            ("master".into(), Expr::var("i.master")),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("R", "i"),
            Pt::entity(e, "x"),
        ),
    );
    let fix = Pt::fix("R", Pt::union(base, rec));
    let plan = lower(&env, &fix).unwrap();
    match &plan.root {
        PhysOp::FixPoint { perm, cols, .. } => {
            assert_eq!(cols, &["master".to_string(), "disciple".to_string()]);
            assert_eq!(
                perm,
                &Some(vec![1, 0]),
                "rec columns permuted into base order"
            );
        }
        other => panic!("expected FixPoint, got {other:?}"),
    }

    // A union whose sides bind different columns fails the lowering.
    let l = Pt::proj(vec![("a".into(), Expr::var("x"))], Pt::entity(e, "x"));
    let r = Pt::proj(vec![("b".into(), Expr::var("x"))], Pt::entity(e, "x"));
    assert!(matches!(
        lower(&env, &Pt::union(l, r)),
        Err(PtError::UnionShapeMismatch)
    ));
}

#[test]
fn column_expr_typing_handles_qualified_names() {
    let (cat, _db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let cols: std::collections::HashMap<String, ResolvedType> = [
        ("i.disciple".to_string(), ResolvedType::Object(composer)),
        (
            "i.gen".to_string(),
            ResolvedType::Atomic(oorq_schema::AtomicType::Int),
        ),
    ]
    .into_iter()
    .collect();
    // `i.disciple.name` resolves through the qualified column.
    let t = type_of_column_expr(&cat, &Expr::path("i", &["disciple", "name"]), &cols).unwrap();
    assert_eq!(t, ResolvedType::Atomic(oorq_schema::AtomicType::Text));
    let t = type_of_column_expr(&cat, &Expr::path("i", &["gen"]), &cols).unwrap();
    assert_eq!(t, ResolvedType::Atomic(oorq_schema::AtomicType::Int));
}

/// Known-good fingerprints under the corrected FNV prime. The values
/// are pinned so a regression to the old mistyped prime
/// (`0x100_0000_01b3`, a digit short of `0x100000001b3`) — or any
/// accidental change to the framing — fails loudly: the serving
/// layer's plan cache keys on these hashes.
#[test]
fn fingerprint_pinned_known_good() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];

    let leaf = Pt::entity(e, "c");
    let temp = Pt::temp("Influencer", "i");
    let sel = Pt::sel(
        Expr::path("c", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "c"),
    );
    let fix = Pt::Fix {
        temp: "Influencer".into(),
        body: Box::new(Pt::union(Pt::temp("Influencer", "i"), Pt::entity(e, "c"))),
    };

    assert_eq!(leaf.fingerprint(), 0xbc7b2416ef78ba94);
    assert_eq!(temp.fingerprint(), 0x67e54f443c9d0dcb);
    assert_eq!(sel.fingerprint(), 0xe1566e06ced47825);
    assert_eq!(fix.fingerprint(), 0x5f6e5261eeb3dd88);
}

/// Framing: structurally distinct small PTs whose unframed renderings
/// could alias must produce distinct fingerprints.
#[test]
fn fingerprint_framing_no_alias() {
    let (cat, db) = setup();
    let composer = cat.class_by_name("Composer").unwrap();
    let e = db.physical().entities_of_class(composer)[0];

    // Name/var boundary shifts: ("ab","c") vs ("a","bc").
    assert_ne!(
        Pt::temp("ab", "c").fingerprint(),
        Pt::temp("a", "bc").fingerprint()
    );
    assert_ne!(
        Pt::temp("", "abc").fingerprint(),
        Pt::temp("abc", "").fingerprint()
    );
    // Variant confusion: a Temp and an Entity with superficially
    // similar payloads.
    assert_ne!(
        Pt::temp("T", "x").fingerprint(),
        Pt::entity(e, "x").fingerprint()
    );
    // Var moved across the operator boundary.
    assert_ne!(
        Pt::union(Pt::temp("T", "ab"), Pt::temp("U", "c")).fingerprint(),
        Pt::union(Pt::temp("T", "a"), Pt::temp("Ub", "c")).fingerprint()
    );
    // Projection column split: one column "ab" vs columns "a","b".
    let one = Pt::proj(vec![("ab".into(), Expr::var("x"))], Pt::entity(e, "x"));
    let two = Pt::proj(
        vec![("a".into(), Expr::var("x")), ("b".into(), Expr::var("x"))],
        Pt::entity(e, "x"),
    );
    assert_ne!(one.fingerprint(), two.fingerprint());
    // Equal trees agree, of course.
    assert_eq!(
        Pt::temp("T", "x").fingerprint(),
        Pt::temp("T", "x").fingerprint()
    );
}
