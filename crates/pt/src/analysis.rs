//! Structural analyses over processing trees shared by the optimizer
//! (push-action legality) and the lint engine (plan verification).

use oorq_query::Expr;

use crate::node::Pt;

/// Compute the propagated columns of a fixpoint body: output columns of
/// the recursive side's top projection that are verbatim copies of the
/// temporary's fields — the \[KL86\] `canPush` condition: a selection
/// on these columns commutes with the fixpoint.
pub fn propagated_columns(fix: &Pt) -> Vec<String> {
    let Pt::Fix { temp, body } = fix else {
        return Vec::new();
    };
    let Pt::Union { left, right } = body.as_ref() else {
        return Vec::new();
    };
    let rec = if left.references_temp(temp) {
        left
    } else {
        right
    };
    // Temp leaf variable inside the recursive side.
    let mut temp_var = None;
    rec.visit(&mut |n| {
        if let Pt::Temp { name, var } = n {
            if name == temp && temp_var.is_none() {
                temp_var = Some(var.clone());
            }
        }
    });
    let Some(tv) = temp_var else {
        return Vec::new();
    };
    let Pt::Proj { cols, .. } = rec.as_ref() else {
        return Vec::new();
    };
    cols.iter()
        .filter(|(name, e)| matches!(e, Expr::Var(v) if *v == format!("{tv}.{name}")))
        .map(|(name, _)| name.clone())
        .collect()
}
