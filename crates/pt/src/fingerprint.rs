//! Framed FNV-1a structural fingerprints.
//!
//! [`Fnv64`] is a 64-bit FNV-1a accumulator with *explicit input
//! framing*: every variable-length field is length-prefixed and every
//! enum variant writes a discriminant tag, so no two structurally
//! distinct values can feed the hash the same byte stream by ambiguous
//! concatenation (the classic `("ab","c")` vs `("a","bc")` alias).
//! [`Pt::fingerprint`](crate::Pt::fingerprint) walks the tree through
//! this writer, and the serving layer's plan cache reuses it to key
//! queries — a cache key must not alias, so the framing is part of the
//! fingerprint's contract, not an implementation detail.
//!
//! The constants are the reference FNV-1a parameters. An earlier
//! version of `Pt::fingerprint` open-coded the prime as
//! `0x100_0000_01b3` — a digit grouping one keystroke from the
//! truncated `0x10000001b3` that silently weakens the hash — and
//! hashed the unframed `Debug` rendering of the tree, where adjacent
//! fields can alias. `fnv_reference_vectors` in the test suite pins
//! the constants to the published test vectors so a truncated prime
//! cannot ship, and the framed writers close the aliasing hole.

use std::fmt::Debug;

/// The 64-bit FNV offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The 64-bit FNV prime, 2^40 + 2^8 + 0xb3.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a accumulator with framed write helpers.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh accumulator at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Raw bytes, no framing (callers frame themselves).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// One tag byte (enum discriminants, field separators).
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// A fixed-width integer (no length prefix needed).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// A string, framed by its byte length.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// An arbitrary value through its `Debug` rendering, framed by the
    /// rendering's byte length. Derived `Debug` output is injective per
    /// type (strings are quoted and escaped), and the length prefix
    /// keeps adjacent fields from bleeding into each other.
    pub fn write_debug<T: Debug>(&mut self, v: &T) {
        self.write_str(&format!("{v:?}"));
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Convenience: the framed FNV-1a hash of one string.
pub fn fnv64_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published FNV-1a test vectors (unframed byte stream): a
    /// mistyped prime or offset fails these immediately. In particular
    /// the truncated `0x10000001b3` prime (a digit short of
    /// `0x100000001b3`) hashes "a" to 0xcf62cc8c8601ec8c instead of
    /// the reference value below.
    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(FNV_PRIME, 0x100000001b3, "the 64-bit FNV prime");
        assert_eq!(FNV_PRIME, (1u64 << 40) + (1 << 8) + 0xb3);
        let hash = |s: &str| {
            let mut h = Fnv64::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf29ce484222325);
        assert_eq!(hash("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(hash("foobar"), 0x85944171f73967e8);
        // The classic typo, reproduced: same algorithm, prime a digit
        // short. Regressing FNV_PRIME to this value fails the vectors
        // above; this pair documents exactly how it diverges.
        let bad = (0xcbf29ce484222325u64 ^ b'a' as u64).wrapping_mul(0x10_0000_01b3);
        assert_eq!(bad, 0xcf62cc8c8601ec8c);
        assert_ne!(bad, hash("a"), "a truncated prime weakens the hash");
    }

    /// Length framing: concatenation ambiguities between adjacent
    /// strings must produce distinct hashes.
    #[test]
    fn framing_disambiguates_adjacent_strings() {
        let pairs = |a: &str, b: &str| {
            let mut h = Fnv64::new();
            h.write_str(a);
            h.write_str(b);
            h.finish()
        };
        assert_ne!(pairs("ab", "c"), pairs("a", "bc"));
        assert_ne!(pairs("", "abc"), pairs("abc", ""));
    }
}
