//! Processing-tree errors.

use std::fmt;

use oorq_query::QueryError;

/// Errors raised while manipulating processing trees.
#[derive(Debug, Clone, PartialEq)]
pub enum PtError {
    /// A child-index path pointed outside a node's arity.
    BadPath {
        /// Offending index.
        index: usize,
        /// The node's arity.
        arity: usize,
    },
    /// A temporary was referenced through an `Entity` leaf.
    TempAsEntity(String),
    /// A `Temp` leaf references an unregistered temporary.
    UnknownTemp(String),
    /// `IJ`'s attribute does not reference a class.
    NotAReference(String),
    /// A `PIJ` node names an index that is not a path index.
    NotAPathIndex,
    /// A `PIJ` node binds more outputs than the path has steps.
    PathIndexArity {
        /// Outputs requested.
        wanted: usize,
    },
    /// A `Fix` body is not a `Union`.
    FixBodyNotUnion,
    /// Neither side of a `Fix` body union references the temporary.
    FixNotRecursive(String),
    /// Union (or fixpoint base/recursive) sides disagree on columns.
    UnionShapeMismatch,
    /// Column-expression typing failed.
    Typing(QueryError),
    /// A pattern variable was not bound by the match.
    UnboundPatternVar(String),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::BadPath { index, arity } => {
                write!(f, "child index {index} out of range (arity {arity})")
            }
            PtError::TempAsEntity(n) => write!(f, "temporary `{n}` used as an entity leaf"),
            PtError::UnknownTemp(n) => write!(f, "unknown temporary `{n}`"),
            PtError::NotAReference(a) => {
                write!(f, "attribute `{a}` does not reference a class")
            }
            PtError::NotAPathIndex => write!(f, "PIJ names a non-path index"),
            PtError::PathIndexArity { wanted } => {
                write!(f, "PIJ binds {wanted} outputs but the path is shorter")
            }
            PtError::FixBodyNotUnion => write!(f, "Fix body must be a Union"),
            PtError::FixNotRecursive(t) => {
                write!(f, "neither union side references `{t}`")
            }
            PtError::UnionShapeMismatch => {
                write!(f, "union sides bind different columns")
            }
            PtError::Typing(e) => write!(f, "typing: {e}"),
            PtError::UnboundPatternVar(v) => write!(f, "pattern variable `{v}` unbound"),
        }
    }
}

impl std::error::Error for PtError {}

impl From<QueryError> for PtError {
    fn from(e: QueryError) -> Self {
        PtError::Typing(e)
    }
}
