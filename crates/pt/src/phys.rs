//! Physical plans: the lowered, execution-ready form of a PT.
//!
//! [`lower`] compiles a verified [`Pt`] into a [`PhysPlan`] — a tree of
//! physical operators with *resolved* access methods (the `attr = lit`
//! key of an index selection, the outer expression of an index join),
//! *resolved* column layouts (every operator knows its output columns
//! statically), and explicit pipeline-breaker placement (the semi-naive
//! fixpoint accumulator/delta and the materialize-once inner of a
//! nested-loop join over a non-rescannable subtree). Everything the
//! tree-walking interpreter used to re-derive per row is decided here,
//! once, so execution can stream.
//!
//! Every operator carries an [`OpMeta`] with a dense operator id (for
//! per-operator runtime counters) and the pre-order index of the `Pt`
//! node it was lowered from ([`node_ids`]), which is how observed
//! counters are joined against the cost model's per-node predictions.

use std::collections::HashMap;

use oorq_query::{CmpOp, Expr, Literal};
use oorq_schema::{ClassId, ResolvedType};
use oorq_storage::{EntityId, EntitySource, IndexId, IndexKindDesc};

use crate::error::PtError;
use crate::node::{AccessMethod, JoinAlgo, Pt, PtEnv};

/// Identity of a physical operator within its plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMeta {
    /// Dense operator id (`0..PhysPlan::ops`), assigned in lowering
    /// order. Indexes the executor's per-operator counter table.
    pub id: usize,
    /// Pre-order index of the source `Pt` node (see [`node_ids`]); the
    /// join key against the cost model's per-node breakdown.
    pub pt_node: usize,
    /// Display label, aligned with the cost model's breakdown labels.
    pub label: String,
}

/// A physical operator. Every variant stores its output column names
/// (`cols`), resolved at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Stream an atomic entity (class extents bind oids to `var`,
    /// relation extents bind one column per field).
    EntityScan {
        /// Operator identity.
        meta: OpMeta,
        /// The entity scanned.
        entity: EntityId,
        /// Binding variable.
        var: String,
        /// The extent's class, when the source is a class.
        class: Option<ClassId>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Stream a fixpoint temporary (the accumulator, or the delta while
    /// a fixpoint iteration has the name delta-bound).
    TempScan {
        /// Operator identity.
        meta: OpMeta,
        /// Temporary name.
        name: String,
        /// Output columns (`var.field`).
        cols: Vec<String>,
    },
    /// Probe a selection index with a resolved literal key, fetch the
    /// matching objects' pages, then apply the full predicate as a
    /// residual filter.
    IndexSelect {
        /// Operator identity.
        meta: OpMeta,
        /// The selection index probed.
        index: IndexId,
        /// Class of the selected entity (probe results are filtered to
        /// it).
        class: ClassId,
        /// Binding variable of the replaced entity scan.
        var: String,
        /// The resolved probe key.
        key: Literal,
        /// The full predicate (residual filter after the probe).
        pred: Expr,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Operator identity.
        meta: OpMeta,
        /// The predicate.
        pred: Expr,
        /// An index the original plan named but the lowering could not
        /// use (no usable conjunct, or a non-entity input): the built
        /// structure must still exist at runtime, mirroring the
        /// interpreter's access-method resolution order.
        require_index: Option<IndexId>,
        /// Input operator.
        input: Box<PhysOp>,
        /// Output columns (same as the input's).
        cols: Vec<String>,
    },
    /// Project each row through expressions, deduplicating output rows
    /// (set semantics) in streaming fashion.
    Project {
        /// Operator identity.
        meta: OpMeta,
        /// Output columns and their defining expressions.
        exprs: Vec<(String, Expr)>,
        /// Input operator.
        input: Box<PhysOp>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Implicit join: dereference the oid-valued `on` expression of each
    /// input row and emit one row per referenced sub-object.
    IjDeref {
        /// Operator identity.
        meta: OpMeta,
        /// Expression producing the oid(s) to dereference.
        on: Expr,
        /// Output column bound to the sub-object oid.
        out: String,
        /// Input operator.
        input: Box<PhysOp>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Path-index join: probe a path index with the head oid and emit
    /// the oids along the path (index-only; no object pages fetched).
    PijLookup {
        /// Operator identity.
        meta: OpMeta,
        /// The path index probed.
        index: IndexId,
        /// Head-oid expression.
        on: Expr,
        /// Output columns, one per path step.
        outs: Vec<String>,
        /// Input operator.
        input: Box<PhysOp>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Nested-loop explicit join. When `rescan_inner` the inner subtree
    /// is re-opened (through the buffer manager) for every outer row;
    /// otherwise it is materialized once — a pipeline breaker.
    NlJoin {
        /// Operator identity.
        meta: OpMeta,
        /// Join predicate.
        pred: Expr,
        /// Honest rescan (leaf-ish inner) vs materialize-once breaker.
        rescan_inner: bool,
        /// Field types of the materialized inner's rows, resolved at
        /// lowering so the executor can back the breaker with a
        /// page-store temporary (empty when `rescan_inner`).
        mat_types: Vec<ResolvedType>,
        /// See [`PhysOp::Filter::require_index`]: set when an index join
        /// degraded to a nested loop at lowering.
        require_index: Option<IndexId>,
        /// Outer operand.
        left: Box<PhysOp>,
        /// Inner operand.
        right: Box<PhysOp>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Index join: per outer row, evaluate the resolved outer expression
    /// and probe the inner's selection index; the inner is never
    /// scanned.
    IndexJoin {
        /// Operator identity.
        meta: OpMeta,
        /// The selection index probed.
        index: IndexId,
        /// Class of the inner entity.
        class: ClassId,
        /// The resolved outer key expression (over outer columns).
        outer: Expr,
        /// Binding variable of the inner entity.
        var: String,
        /// The full join predicate (residual filter).
        pred: Expr,
        /// Outer operand.
        left: Box<PhysOp>,
        /// Output columns.
        cols: Vec<String>,
    },
    /// Bag union; the right side's columns are permuted into the left's
    /// order with the lowering-resolved permutation.
    UnionAll {
        /// Operator identity.
        meta: OpMeta,
        /// `right`-column index for each output column, when the orders
        /// differ.
        perm: Option<Vec<usize>>,
        /// Left operand.
        left: Box<PhysOp>,
        /// Right operand.
        right: Box<PhysOp>,
        /// Output columns (the left side's).
        cols: Vec<String>,
    },
    /// Semi-naive fixpoint — the canonical pipeline breaker: the base
    /// feeds the accumulator and delta temporaries, the recursive side
    /// is re-opened per iteration over the delta, and the accumulated
    /// result streams out.
    FixPoint {
        /// Operator identity.
        meta: OpMeta,
        /// Temporary name.
        temp: String,
        /// Field names and types of the temporary (from the base side).
        fields: Vec<(String, ResolvedType)>,
        /// `rec`-column index for each field, when the recursive side's
        /// column order differs from the base's.
        perm: Option<Vec<usize>>,
        /// Base (non-recursive) operand.
        base: Box<PhysOp>,
        /// Recursive operand (re-opened per iteration).
        rec: Box<PhysOp>,
        /// Output columns (the field names).
        cols: Vec<String>,
    },
    /// Partition-parallel execution of an eligible pipeline subtree:
    /// `workers` threads each run a copy of `input` whose driver leaf
    /// scan is restricted to a disjoint page range, and the partition
    /// outputs are concatenated in partition order — byte-identical to
    /// the serial scan order. Exchange is an *execution* wrapper: it has
    /// its own operator id but shares its input's `pt_node`, so cost
    /// predictions still join against the underlying operator.
    Exchange {
        /// Operator identity (`pt_node` = the input root's).
        meta: OpMeta,
        /// Degree of parallelism (>= 2; 1 would be a no-op wrapper).
        workers: usize,
        /// The partitioned subtree.
        input: Box<PhysOp>,
        /// Output columns (same as the input's).
        cols: Vec<String>,
    },
    /// Leg-parallel n-ary union: each child subtree runs on its own
    /// worker and the results are concatenated in child order (the
    /// serial `UnionAll` order). Column permutations per child mirror
    /// [`PhysOp::UnionAll::perm`] (entry 0 is always `None`).
    Merge {
        /// Operator identity.
        meta: OpMeta,
        /// Per-child output-column permutation into `cols` order.
        perms: Vec<Option<Vec<usize>>>,
        /// Child subtrees, one worker each.
        children: Vec<PhysOp>,
        /// Output columns (the first child's).
        cols: Vec<String>,
    },
}

impl PhysOp {
    /// The operator's identity.
    pub fn meta(&self) -> &OpMeta {
        match self {
            PhysOp::EntityScan { meta, .. }
            | PhysOp::TempScan { meta, .. }
            | PhysOp::IndexSelect { meta, .. }
            | PhysOp::Filter { meta, .. }
            | PhysOp::Project { meta, .. }
            | PhysOp::IjDeref { meta, .. }
            | PhysOp::PijLookup { meta, .. }
            | PhysOp::NlJoin { meta, .. }
            | PhysOp::IndexJoin { meta, .. }
            | PhysOp::UnionAll { meta, .. }
            | PhysOp::FixPoint { meta, .. }
            | PhysOp::Exchange { meta, .. }
            | PhysOp::Merge { meta, .. } => meta,
        }
    }

    /// The operator's output columns.
    pub fn cols(&self) -> &[String] {
        match self {
            PhysOp::EntityScan { cols, .. }
            | PhysOp::TempScan { cols, .. }
            | PhysOp::IndexSelect { cols, .. }
            | PhysOp::Filter { cols, .. }
            | PhysOp::Project { cols, .. }
            | PhysOp::IjDeref { cols, .. }
            | PhysOp::PijLookup { cols, .. }
            | PhysOp::NlJoin { cols, .. }
            | PhysOp::IndexJoin { cols, .. }
            | PhysOp::UnionAll { cols, .. }
            | PhysOp::FixPoint { cols, .. }
            | PhysOp::Exchange { cols, .. }
            | PhysOp::Merge { cols, .. } => cols,
        }
    }

    /// Children in operand order.
    pub fn children(&self) -> Vec<&PhysOp> {
        match self {
            PhysOp::EntityScan { .. } | PhysOp::TempScan { .. } | PhysOp::IndexSelect { .. } => {
                vec![]
            }
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::IjDeref { input, .. }
            | PhysOp::PijLookup { input, .. } => vec![input],
            PhysOp::IndexJoin { left, .. } => vec![left],
            PhysOp::NlJoin { left, right, .. } | PhysOp::UnionAll { left, right, .. } => {
                vec![left, right]
            }
            PhysOp::FixPoint { base, rec, .. } => vec![base, rec],
            PhysOp::Exchange { input, .. } => vec![input],
            PhysOp::Merge { children, .. } => children.iter().collect(),
        }
    }

    /// Depth-first pre-order visit of every operator.
    pub fn visit(&self, f: &mut impl FnMut(&PhysOp)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// True when re-opening this subtree per outer row is cheap honest
    /// nested-loop behaviour (leaf-ish pipelines without breakers).
    pub fn rescannable(&self) -> bool {
        match self {
            PhysOp::EntityScan { .. } | PhysOp::TempScan { .. } => true,
            PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => input.rescannable(),
            _ => false,
        }
    }
}

/// A lowered physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// The root operator.
    pub root: PhysOp,
    /// Number of operators in the plan (`meta.id` ranges over `0..ops`).
    pub ops: usize,
}

impl PhysPlan {
    /// Render the plan as an indented operator tree.
    pub fn explain(&self) -> String {
        fn go(op: &PhysOp, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{}#{} {}",
                "  ".repeat(depth),
                op.meta().id,
                op.meta().label
            );
            for c in op.children() {
                go(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        go(&self.root, 0, &mut out);
        out
    }
}

/// Pre-order indices of every node of a PT, keyed by node address. The
/// same numbering is used by the cost model's per-node breakdown and by
/// [`lower`]'s `OpMeta::pt_node`, so predictions and observations can be
/// joined per node.
pub fn node_ids(root: &Pt) -> HashMap<*const Pt, usize> {
    let mut ids = HashMap::new();
    let mut next = 0usize;
    root.visit(&mut |pt| {
        ids.insert(pt as *const Pt, next);
        next += 1;
    });
    ids
}

/// Lower a PT into a physical plan.
///
/// Access methods are resolved here (mirroring the interpreter's runtime
/// resolution, including its fallbacks): an index selection without a
/// usable `var.attr = literal` conjunct or over a non-class input lowers
/// to a filter, an index join without a usable equality conjunct lowers
/// to a nested loop — in both cases remembering the named index so the
/// runtime still demands the built structure. Union and fixpoint column
/// permutations are resolved statically; a shape mismatch fails the
/// lowering.
pub fn lower(env: &PtEnv<'_>, pt: &Pt) -> Result<PhysPlan, PtError> {
    lower_with(env, pt, &ParallelSpec::new())
}

/// Degree of parallelism chosen per PT node (pre-order id, as in
/// [`node_ids`]), produced by the optimizer's parallel-placement pass.
/// Nodes absent from the spec run serially. A `Union` entry turns the
/// `UnionAll` into a leg-parallel [`PhysOp::Merge`]; any other entry
/// wraps the lowered subtree in a [`PhysOp::Exchange`] when
/// [`exchange_eligible`] admits it (ineligible entries are ignored, so a
/// stale spec can never produce an unsound plan).
pub type ParallelSpec = HashMap<usize, usize>;

/// Lower a PT, wrapping the subtrees named by `spec` in parallel
/// operators. `spec` is advisory: entries on ineligible nodes are
/// dropped silently, and an empty spec reproduces [`lower`] exactly.
pub fn lower_with(env: &PtEnv<'_>, pt: &Pt, spec: &ParallelSpec) -> Result<PhysPlan, PtError> {
    let mut lw = Lowering {
        env,
        temp_fields: env.temp_fields.clone(),
        ids: node_ids(pt),
        next_id: 0,
        spec,
    };
    let root = lw.lower(pt)?;
    Ok(PhysPlan {
        root,
        ops: lw.next_id,
    })
}

struct Lowering<'e, 'a> {
    env: &'e PtEnv<'a>,
    /// Temporary shapes in scope (grows while descending fixpoints).
    temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    ids: HashMap<*const Pt, usize>,
    next_id: usize,
    spec: &'e ParallelSpec,
}

impl Lowering<'_, '_> {
    fn scoped_env(&self) -> PtEnv<'_> {
        PtEnv {
            catalog: self.env.catalog,
            physical: self.env.physical,
            temp_fields: self.temp_fields.clone(),
        }
    }

    fn col_names(&self, pt: &Pt) -> Result<Vec<String>, PtError> {
        Ok(pt
            .output_columns(&self.scoped_env())?
            .into_iter()
            .map(|(n, _)| n)
            .collect())
    }

    fn meta(&mut self, pt: &Pt, label: String) -> OpMeta {
        let id = self.next_id;
        self.next_id += 1;
        OpMeta {
            id,
            pt_node: self.ids.get(&(pt as *const Pt)).copied().unwrap_or(0),
            label,
        }
    }

    fn lower(&mut self, pt: &Pt) -> Result<PhysOp, PtError> {
        let op = self.lower_inner(pt)?;
        Ok(self.maybe_parallel(pt, op))
    }

    /// Apply the parallel spec's choice for this PT node, if any: turn a
    /// `UnionAll` into a `Merge`, or wrap an eligible pipeline subtree in
    /// an `Exchange`. Ineligible or sub-2 choices leave the plan serial.
    fn maybe_parallel(&mut self, pt: &Pt, op: PhysOp) -> PhysOp {
        let node = self.ids.get(&(pt as *const Pt)).copied().unwrap_or(0);
        let Some(&dop) = self.spec.get(&node) else {
            return op;
        };
        if dop < 2 {
            return op;
        }
        match op {
            PhysOp::UnionAll {
                meta,
                perm,
                left,
                right,
                cols,
            } => {
                if merge_leg_ok(&left) && merge_leg_ok(&right) {
                    PhysOp::Merge {
                        meta: OpMeta {
                            label: "Merge".to_string(),
                            ..meta
                        },
                        perms: vec![None, perm],
                        children: vec![*left, *right],
                        cols,
                    }
                } else {
                    PhysOp::UnionAll {
                        meta,
                        perm,
                        left,
                        right,
                        cols,
                    }
                }
            }
            op if exchange_eligible(&op) => {
                let cols = op.cols().to_vec();
                let meta = self.meta(pt, format!("Exchange(x{dop})"));
                PhysOp::Exchange {
                    meta,
                    workers: dop,
                    input: Box::new(op),
                    cols,
                }
            }
            op => op,
        }
    }

    fn lower_inner(&mut self, pt: &Pt) -> Result<PhysOp, PtError> {
        match pt {
            Pt::Entity { id, var } => {
                let cols = self.col_names(pt)?;
                let desc = self.env.physical.entity(*id);
                let class = match desc.source {
                    EntitySource::Class(c) => Some(c),
                    _ => None,
                };
                let meta = self.meta(pt, format!("scan {}", desc.name));
                Ok(PhysOp::EntityScan {
                    meta,
                    entity: *id,
                    var: var.clone(),
                    class,
                    cols,
                })
            }
            Pt::Temp { name, .. } => {
                let cols = self.col_names(pt)?;
                let meta = self.meta(pt, format!("scan temp {name}"));
                Ok(PhysOp::TempScan {
                    meta,
                    name: name.clone(),
                    cols,
                })
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => match method {
                AccessMethod::Scan => {
                    let child = self.lower(input)?;
                    let cols = child.cols().to_vec();
                    let meta = self.meta(pt, format!("Sel[{pred}]"));
                    Ok(PhysOp::Filter {
                        meta,
                        pred: pred.clone(),
                        require_index: None,
                        input: Box::new(child),
                        cols,
                    })
                }
                AccessMethod::Index(idx) => self.lower_index_select(pt, *idx, pred, input),
            },
            Pt::Proj { cols, input } => {
                let child = self.lower(input)?;
                let out_cols = self.col_names(pt)?;
                let meta = self.meta(pt, "Proj".to_string());
                Ok(PhysOp::Project {
                    meta,
                    exprs: cols.clone(),
                    input: Box::new(child),
                    cols: out_cols,
                })
            }
            Pt::IJ {
                on,
                step,
                out,
                input,
                ..
            } => {
                let child = self.lower(input)?;
                let mut cols = child.cols().to_vec();
                cols.push(out.clone());
                let meta = self.meta(pt, format!("IJ_{}", step.name));
                Ok(PhysOp::IjDeref {
                    meta,
                    on: on.clone(),
                    out: out.clone(),
                    input: Box::new(child),
                    cols,
                })
            }
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                ..
            } => {
                let child = self.lower(input)?;
                let mut cols = child.cols().to_vec();
                cols.extend(outs.iter().cloned());
                let label = match self.env.physical.indexes().get(index.0 as usize) {
                    Some(desc) => format!("PIJ_{}", desc.display_name(self.env.catalog)),
                    None => "PIJ".to_string(),
                };
                let meta = self.meta(pt, label);
                Ok(PhysOp::PijLookup {
                    meta,
                    index: *index,
                    on: on.clone(),
                    outs: outs.clone(),
                    input: Box::new(child),
                    cols,
                })
            }
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => match algo {
                JoinAlgo::NestedLoop => self.lower_nested_loop(pt, pred, left, right, None),
                JoinAlgo::IndexJoin(idx) => self.lower_index_join(pt, *idx, pred, left, right),
            },
            Pt::Union { left, right } => {
                let l = self.lower(left)?;
                let r = self.lower(right)?;
                let cols = l.cols().to_vec();
                let perm = align_perm(&cols, r.cols())?;
                let meta = self.meta(pt, "Union".to_string());
                Ok(PhysOp::UnionAll {
                    meta,
                    perm,
                    left: Box::new(l),
                    right: Box::new(r),
                    cols,
                })
            }
            Pt::Fix { temp, body } => self.lower_fix(pt, temp, body),
        }
    }

    fn lower_index_select(
        &mut self,
        pt: &Pt,
        idx: IndexId,
        pred: &Expr,
        input: &Pt,
    ) -> Result<PhysOp, PtError> {
        // Resolve the indexed attribute from the physical schema; fall
        // back to a filter when the plan's entity/predicate cannot use
        // the probe (the runtime still demands the built structure).
        let fallback = |lw: &mut Self| -> Result<PhysOp, PtError> {
            let child = lw.lower(input)?;
            let cols = child.cols().to_vec();
            let meta = lw.meta(pt, format!("Sel[{pred}]"));
            Ok(PhysOp::Filter {
                meta,
                pred: pred.clone(),
                require_index: Some(idx),
                input: Box::new(child),
                cols,
            })
        };
        let Some(IndexKindDesc::Selection { class, attr }) = self
            .env
            .physical
            .indexes()
            .get(idx.0 as usize)
            .map(|d| d.kind.clone())
        else {
            return fallback(self);
        };
        let Pt::Entity { id, var } = input else {
            return fallback(self);
        };
        let desc = self.env.physical.entity(*id);
        let EntitySource::Class(entity_class) = desc.source else {
            return fallback(self);
        };
        let attr_name = &self.env.catalog.attribute(class, attr).name;
        let Some(key) = eq_literal_conjunct(pred, var, attr_name) else {
            return fallback(self);
        };
        let cols = vec![var.clone()];
        let meta = self.meta(pt, format!("Sel^idx[{pred}]"));
        Ok(PhysOp::IndexSelect {
            meta,
            index: idx,
            class: entity_class,
            var: var.clone(),
            key,
            pred: pred.clone(),
            cols,
        })
    }

    fn lower_nested_loop(
        &mut self,
        pt: &Pt,
        pred: &Expr,
        left: &Pt,
        right: &Pt,
        require_index: Option<IndexId>,
    ) -> Result<PhysOp, PtError> {
        let l = self.lower(left)?;
        let r = self.lower(right)?;
        let mut cols = l.cols().to_vec();
        cols.extend(r.cols().iter().cloned());
        let rescan_inner = r.rescannable();
        // A materialized inner becomes a page-store temporary at
        // execution; resolve its row shape here, where the typing
        // environment is in scope.
        let mat_types = if rescan_inner {
            Vec::new()
        } else {
            right
                .output_columns(&self.scoped_env())?
                .into_iter()
                .map(|(_, t)| t)
                .collect()
        };
        let meta = self.meta(pt, format!("EJ[{pred}]"));
        Ok(PhysOp::NlJoin {
            meta,
            pred: pred.clone(),
            rescan_inner,
            mat_types,
            require_index,
            left: Box::new(l),
            right: Box::new(r),
            cols,
        })
    }

    fn lower_index_join(
        &mut self,
        pt: &Pt,
        idx: IndexId,
        pred: &Expr,
        left: &Pt,
        right: &Pt,
    ) -> Result<PhysOp, PtError> {
        let Some(IndexKindDesc::Selection { class, attr }) = self
            .env
            .physical
            .indexes()
            .get(idx.0 as usize)
            .map(|d| d.kind.clone())
        else {
            return self.lower_nested_loop(pt, pred, left, right, Some(idx));
        };
        let Pt::Entity { id, var } = right else {
            return self.lower_nested_loop(pt, pred, left, right, Some(idx));
        };
        let desc = self.env.physical.entity(*id);
        let EntitySource::Class(entity_class) = desc.source else {
            return self.lower_nested_loop(pt, pred, left, right, Some(idx));
        };
        let attr_name = &self.env.catalog.attribute(class, attr).name;
        // Find the equality conjunct `outer-expr = var.attr`.
        let mut outer: Option<Expr> = None;
        for c in pred.conjuncts() {
            if let Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                let matches_inner = |e: &Expr| {
                    matches!(e, Expr::Path { base, steps }
                             if base == var && steps.len() == 1 && steps[0] == *attr_name)
                };
                if matches_inner(rhs) && !lhs.vars().contains(var) {
                    outer = Some((**lhs).clone());
                    break;
                }
                if matches_inner(lhs) && !rhs.vars().contains(var) {
                    outer = Some((**rhs).clone());
                    break;
                }
            }
        }
        let Some(outer) = outer else {
            return self.lower_nested_loop(pt, pred, left, right, Some(idx));
        };
        let l = self.lower(left)?;
        let mut cols = l.cols().to_vec();
        cols.push(var.clone());
        let meta = self.meta(pt, format!("EJ^idx[{pred}]"));
        Ok(PhysOp::IndexJoin {
            meta,
            index: idx,
            class: entity_class,
            outer,
            var: var.clone(),
            pred: pred.clone(),
            left: Box::new(l),
            cols,
        })
    }

    fn lower_fix(&mut self, pt: &Pt, temp: &str, body: &Pt) -> Result<PhysOp, PtError> {
        let Pt::Union { left, right } = body else {
            return Err(PtError::FixBodyNotUnion);
        };
        let (base, rec) = if left.references_temp(temp) {
            (right.as_ref(), left.as_ref())
        } else {
            (left.as_ref(), right.as_ref())
        };
        if !rec.references_temp(temp) {
            return Err(PtError::FixNotRecursive(temp.to_string()));
        }
        // Shape of the temporary, from the base side (names verbatim).
        let fields = base.output_columns(&self.scoped_env())?;
        let field_names: Vec<String> = fields.iter().map(|(n, _)| n.clone()).collect();
        self.temp_fields.insert(temp.to_string(), fields.clone());
        let base_op = self.lower(base)?;
        let rec_op = self.lower(rec)?;
        let perm = align_perm(&field_names, rec_op.cols())?;
        let meta = self.meta(pt, format!("Fix({temp})"));
        Ok(PhysOp::FixPoint {
            meta,
            temp: temp.to_string(),
            fields,
            perm,
            base: Box::new(base_op),
            rec: Box::new(rec_op),
            cols: field_names,
        })
    }
}

/// True when an [`PhysOp::Exchange`] over this subtree preserves serial
/// semantics under page-range partitioning of its driver leaf: the
/// subtree must be a streaming pipeline whose leftmost (driver) leaf is
/// a page-partitionable scan, with no operator whose output depends on
/// rows from *other* partitions. Excluded:
///
/// - `Project` (streaming set-dedup is global; per-partition dedup could
///   emit duplicates across partitions),
/// - `IndexSelect` (driven by an index probe, not a partitionable scan),
/// - materializing `NlJoin` (the once-materialized inner is a breaker;
///   partitioning the outer around it buys nothing — lint PX008),
/// - `UnionAll`, `FixPoint`, and nested `Exchange`/`Merge`.
pub fn exchange_eligible(op: &PhysOp) -> bool {
    match op {
        PhysOp::EntityScan { .. } | PhysOp::TempScan { .. } => true,
        PhysOp::Filter { input, .. }
        | PhysOp::IjDeref { input, .. }
        | PhysOp::PijLookup { input, .. } => exchange_eligible(input),
        PhysOp::IndexJoin { left, .. } => exchange_eligible(left),
        PhysOp::NlJoin {
            rescan_inner, left, ..
        } => *rescan_inner && exchange_eligible(left),
        _ => false,
    }
}

/// True when a subtree may run as a [`PhysOp::Merge`] leg on its own
/// worker: no pipeline breaker that writes shared temporaries (a
/// `FixPoint` leg would race on the accumulator/delta entities) and no
/// already-parallel operator (nested parallelism would corrupt the
/// per-worker buffer accounting).
pub fn merge_leg_ok(op: &PhysOp) -> bool {
    let mut ok = true;
    op.visit(&mut |o| {
        if matches!(
            o,
            PhysOp::FixPoint { .. } | PhysOp::Exchange { .. } | PhysOp::Merge { .. }
        ) {
            ok = false;
        }
    });
    ok
}

/// Find an `var.attr = literal` (or mirrored) conjunct of the predicate.
/// Public so static analysis can mirror access-method resolution exactly.
pub fn eq_literal_conjunct(pred: &Expr, var: &str, attr_name: &str) -> Option<Literal> {
    for c in pred.conjuncts() {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let (path, lit) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Path { base, steps }, Expr::Lit(l)) => ((base, steps), l),
                (Expr::Lit(l), Expr::Path { base, steps }) => ((base, steps), l),
                _ => continue,
            };
            if path.0 == var && path.1.len() == 1 && path.1[0] == attr_name {
                return Some(lit.clone());
            }
        }
    }
    None
}

/// Permutation aligning `from` columns onto the `to` order; `None` when
/// already aligned.
fn align_perm(to: &[String], from: &[String]) -> Result<Option<Vec<usize>>, PtError> {
    if to == from {
        return Ok(None);
    }
    if to.len() != from.len() {
        return Err(PtError::UnionShapeMismatch);
    }
    let perm: Option<Vec<usize>> = to
        .iter()
        .map(|c| from.iter().position(|f| f == c))
        .collect();
    perm.map(Some).ok_or(PtError::UnionShapeMismatch)
}
