//! Processing trees (PTs): the execution-plan algebra of §3.1, plus the
//! declarative transformation-action engine of §4.1.
//!
//! PTs refer to *physical* entities, so the impact of every optimizer
//! action on the plan cost is directly computable — the paper's central
//! methodological point. Interior nodes are operators (`Sel`, `Proj`,
//! `IJ`, `PIJ`, `EJ`, `Union`, `Fix`); leaves are atomic entities of the
//! physical schema or temporary files.

mod analysis;
mod error;
pub mod fingerprint;
mod node;
mod pattern;
pub mod phys;

pub use analysis::propagated_columns;
pub use error::PtError;
pub use fingerprint::{fnv64_str, Fnv64, FNV_OFFSET, FNV_PRIME};
pub use node::{type_of_column_expr, AccessMethod, IjStep, JoinAlgo, Pt, PtDisplay, PtEnv};
pub use pattern::{match_pattern, subtrees, Binding, Bindings, Pattern, TransformAction};
pub use phys::{
    eq_literal_conjunct, exchange_eligible, lower, lower_with, merge_leg_ok, node_ids, OpMeta,
    ParallelSpec, PhysOp, PhysPlan,
};

#[cfg(test)]
mod tests;
