//! Processing-tree nodes (§3.1 of the paper).
//!
//! A PT is an algebra over *physical* entities: interior nodes are
//! operators (`Sel`, `Proj`, `IJ`, `PIJ`, `EJ`, `Union`, `Fix`) and leaf
//! nodes are atomic entities of the physical schema or temporary files.
//! PTs are functional terms — e.g. Figure 4.(i)'s root is
//! `IJ_disc(Sel_name="harpsichord"(...), Composer)` — and model a
//! bottom-up execution consuming operands left to right.
//!
//! Operationally every node produces a stream of *binding rows* with
//! named, typed columns: an `Entity` leaf binds its instances to the
//! leaf's variable (class extents bind oids; relation extents bind one
//! column per field, qualified `var.field`), `IJ` dereferences an
//! oid-valued expression and binds each referenced sub-object, `PIJ`
//! probes a path index, `EJ`/`Sel`/`Proj`/`Union`/`Fix` behave as usual.

use std::collections::HashMap;
use std::fmt;

use oorq_query::{expr_type, Expr};
use oorq_schema::{AttrId, Catalog, ClassId, ResolvedType};
use oorq_storage::{EntityId, EntitySource, IndexId, IndexKindDesc, PhysicalSchema};

use crate::error::PtError;
use crate::fingerprint::Fnv64;

/// Access method of a selection over an entity leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMethod {
    /// Sequential scan.
    Scan,
    /// Probe of a selection index.
    Index(IndexId),
}

/// Join algorithm of an explicit join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Nested-loop join.
    NestedLoop,
    /// Index join: probe a selection index on the inner operand.
    IndexJoin(IndexId),
}

/// The attribute (or relation/temporary field) an implicit join
/// traverses. Class attributes carry their `(class, attr)` ids so the
/// cost model can consult fan-out and clustering statistics; oid-valued
/// relation/temporary fields (e.g. `Influencer.disc`) carry only a name.
#[derive(Debug, Clone, PartialEq)]
pub struct IjStep {
    /// Attribute/field name, as displayed (`IJ_<name>`).
    pub name: String,
    /// The declaring class and attribute id, when traversing a class
    /// attribute.
    pub class_attr: Option<(ClassId, AttrId)>,
}

impl IjStep {
    /// Step through a class attribute.
    pub fn class_attr(catalog: &Catalog, class: ClassId, attr: AttrId) -> Self {
        IjStep {
            name: catalog.attribute(class, attr).name.clone(),
            class_attr: Some((class, attr)),
        }
    }

    /// Step through an oid-valued relation/temporary field.
    pub fn field(name: impl Into<String>) -> Self {
        IjStep {
            name: name.into(),
            class_attr: None,
        }
    }
}

/// A processing-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Pt {
    /// Atomic entity of the physical schema, binding `var`.
    Entity {
        /// The entity scanned.
        id: EntityId,
        /// Binding variable (class extents: the oid; relations: the
        /// prefix of `var.field` columns).
        var: String,
    },
    /// A temporary file (intermediate result), e.g. the recursive
    /// occurrence inside a fixpoint.
    Temp {
        /// Temporary name (e.g. `Influencer`).
        name: String,
        /// Binding variable prefix.
        var: String,
    },
    /// Selection.
    Sel {
        /// The predicate (an expression over input columns; short
        /// attribute paths on oid columns are allowed and account their
        /// page fetches at execution).
        pred: Expr,
        /// Access method (only meaningful over an `Entity` leaf).
        method: AccessMethod,
        /// Input.
        input: Box<Pt>,
    },
    /// Projection (with set semantics: duplicate output rows removed).
    Proj {
        /// Output columns.
        cols: Vec<(String, Expr)>,
        /// Input.
        input: Box<Pt>,
    },
    /// Implicit join: dereference the oid-valued `on` expression of each
    /// input row and bind each referenced sub-object to `out`.
    IJ {
        /// Expression producing the oid(s) to dereference (fans out over
        /// collection values).
        on: Expr,
        /// The attribute or field traversed (display, fan-out and
        /// clustering lookup).
        step: IjStep,
        /// Output column (holds the sub-object oid).
        out: String,
        /// Input.
        input: Box<Pt>,
        /// The atomic entity holding the sub-objects.
        target: Box<Pt>,
    },
    /// Path implicit join: probe a path index with the head oid and bind
    /// the oids along the path.
    PIJ {
        /// The path index used.
        index: IndexId,
        /// Head-oid expression.
        on: Expr,
        /// Output columns, one per path step.
        outs: Vec<String>,
        /// Input.
        input: Box<Pt>,
        /// The atomic entities spanned (display only; the probe itself
        /// touches only index pages).
        targets: Vec<Pt>,
    },
    /// Explicit join.
    EJ {
        /// Join predicate.
        pred: Expr,
        /// Algorithm.
        algo: JoinAlgo,
        /// Outer operand.
        left: Box<Pt>,
        /// Inner operand.
        right: Box<Pt>,
    },
    /// Union (bag union; `Fix` and `Proj` deduplicate).
    Union {
        /// Left operand.
        left: Box<Pt>,
        /// Right operand.
        right: Box<Pt>,
    },
    /// Fixpoint of `temp = body(temp)`, computed semi-naively. The body
    /// must be a `Union` whose one side (the base) does not reference
    /// `Temp(temp)` and whose other side (the recursive part) does.
    Fix {
        /// The temporary holding the accumulated result.
        temp: String,
        /// The fixpoint equation.
        body: Box<Pt>,
    },
}

impl Pt {
    /// Entity leaf.
    pub fn entity(id: EntityId, var: impl Into<String>) -> Pt {
        Pt::Entity {
            id,
            var: var.into(),
        }
    }

    /// Temporary leaf.
    pub fn temp(name: impl Into<String>, var: impl Into<String>) -> Pt {
        Pt::Temp {
            name: name.into(),
            var: var.into(),
        }
    }

    /// Selection with sequential access.
    pub fn sel(pred: Expr, input: Pt) -> Pt {
        Pt::Sel {
            pred,
            method: AccessMethod::Scan,
            input: Box::new(input),
        }
    }

    /// Projection.
    pub fn proj(cols: Vec<(String, Expr)>, input: Pt) -> Pt {
        Pt::Proj {
            cols,
            input: Box::new(input),
        }
    }

    /// Nested-loop explicit join.
    pub fn ej(pred: Expr, left: Pt, right: Pt) -> Pt {
        Pt::EJ {
            pred,
            algo: JoinAlgo::NestedLoop,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Union.
    pub fn union(left: Pt, right: Pt) -> Pt {
        Pt::Union {
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Fixpoint.
    pub fn fix(temp: impl Into<String>, body: Pt) -> Pt {
        Pt::Fix {
            temp: temp.into(),
            body: Box::new(body),
        }
    }

    /// Structural fingerprint: framed FNV-1a over the tree's full
    /// structure (operators, predicates, access methods, entities). Two
    /// PTs have equal fingerprints iff they are structurally equal
    /// (modulo hash collisions), so candidate plans can be identified
    /// across a trace — and, since the serving layer's plan cache keys
    /// on it, aliasing is not acceptable: every variant writes a
    /// discriminant tag and every variable-length field is
    /// length-prefixed through [`Fnv64`], so no two distinct trees feed
    /// the hash the same byte stream. Render as hex for transport — a
    /// JSON `f64` cannot carry all 64 bits.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Walk the tree into a framed hasher (see [`Pt::fingerprint`]).
    fn hash_into(&self, h: &mut Fnv64) {
        match self {
            Pt::Entity { id, var } => {
                h.write_tag(0);
                h.write_u64(id.0 as u64);
                h.write_str(var);
            }
            Pt::Temp { name, var } => {
                h.write_tag(1);
                h.write_str(name);
                h.write_str(var);
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => {
                h.write_tag(2);
                h.write_debug(pred);
                h.write_debug(method);
                input.hash_into(h);
            }
            Pt::Proj { cols, input } => {
                h.write_tag(3);
                h.write_u64(cols.len() as u64);
                for (name, expr) in cols {
                    h.write_str(name);
                    h.write_debug(expr);
                }
                input.hash_into(h);
            }
            Pt::IJ {
                on,
                step,
                out,
                input,
                target,
            } => {
                h.write_tag(4);
                h.write_debug(on);
                h.write_str(&step.name);
                h.write_debug(&step.class_attr);
                h.write_str(out);
                input.hash_into(h);
                target.hash_into(h);
            }
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                targets,
            } => {
                h.write_tag(5);
                h.write_u64(index.0 as u64);
                h.write_debug(on);
                h.write_u64(outs.len() as u64);
                for o in outs {
                    h.write_str(o);
                }
                input.hash_into(h);
                h.write_u64(targets.len() as u64);
                for t in targets {
                    t.hash_into(h);
                }
            }
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => {
                h.write_tag(6);
                h.write_debug(pred);
                h.write_debug(algo);
                left.hash_into(h);
                right.hash_into(h);
            }
            Pt::Union { left, right } => {
                h.write_tag(7);
                left.hash_into(h);
                right.hash_into(h);
            }
            Pt::Fix { temp, body } => {
                h.write_tag(8);
                h.write_str(temp);
                body.hash_into(h);
            }
        }
    }

    /// Children in operand order.
    pub fn children(&self) -> Vec<&Pt> {
        match self {
            Pt::Entity { .. } | Pt::Temp { .. } => vec![],
            Pt::Sel { input, .. } | Pt::Proj { input, .. } | Pt::Fix { body: input, .. } => {
                vec![input]
            }
            Pt::IJ { input, target, .. } => vec![input, target],
            Pt::PIJ { input, targets, .. } => {
                let mut v = vec![input.as_ref()];
                v.extend(targets.iter());
                v
            }
            Pt::EJ { left, right, .. } | Pt::Union { left, right } => vec![left, right],
        }
    }

    /// Mutable children in operand order.
    pub fn children_mut(&mut self) -> Vec<&mut Pt> {
        match self {
            Pt::Entity { .. } | Pt::Temp { .. } => vec![],
            Pt::Sel { input, .. } | Pt::Proj { input, .. } | Pt::Fix { body: input, .. } => {
                vec![input]
            }
            Pt::IJ { input, target, .. } => vec![input, target],
            Pt::PIJ { input, targets, .. } => {
                let mut v = vec![input.as_mut()];
                v.extend(targets.iter_mut());
                v
            }
            Pt::EJ { left, right, .. } | Pt::Union { left, right } => vec![left, right],
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// True when the tree contains a `Temp` leaf with the given name.
    pub fn references_temp(&self, name: &str) -> bool {
        match self {
            Pt::Temp { name: n, .. } => n == name,
            other => other.children().iter().any(|c| c.references_temp(name)),
        }
    }

    /// Depth-first pre-order visit of every subtree.
    pub fn visit(&self, f: &mut impl FnMut(&Pt)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// The subtree at a child-index path (empty path = self).
    pub fn at_path(&self, path: &[usize]) -> Option<&Pt> {
        let mut cur = self;
        for &i in path {
            cur = *cur.children().get(i)?;
        }
        Some(cur)
    }

    /// Replace the subtree at a child-index path, returning the old one.
    pub fn replace_at(&mut self, path: &[usize], new: Pt) -> Result<Pt, PtError> {
        if path.is_empty() {
            return Ok(std::mem::replace(self, new));
        }
        let mut cur = self;
        for &i in &path[..path.len() - 1] {
            let n = cur.children_mut().len();
            cur = cur
                .children_mut()
                .into_iter()
                .nth(i)
                .ok_or(PtError::BadPath { index: i, arity: n })?;
        }
        let last = *path.last().expect("non-empty");
        let n = cur.children_mut().len();
        let slot = cur
            .children_mut()
            .into_iter()
            .nth(last)
            .ok_or(PtError::BadPath {
                index: last,
                arity: n,
            })?;
        Ok(std::mem::replace(slot, new))
    }

    /// Output columns of the node, given the environment (catalog,
    /// physical schema, temporary shapes).
    pub fn output_columns(&self, env: &PtEnv) -> Result<Vec<(String, ResolvedType)>, PtError> {
        match self {
            Pt::Entity { id, var } => {
                let desc = env.physical.entity(*id);
                match &desc.source {
                    EntitySource::Class(c) => Ok(vec![(var.clone(), ResolvedType::Object(*c))]),
                    EntitySource::Relation(r) => Ok(env
                        .catalog
                        .relation(*r)
                        .fields
                        .iter()
                        .map(|(n, t)| (format!("{var}.{n}"), t.clone()))
                        .collect()),
                    EntitySource::Temporary => Err(PtError::TempAsEntity(desc.name.clone())),
                }
            }
            Pt::Temp { name, var } => {
                let fields = env
                    .temp_fields
                    .get(name)
                    .ok_or_else(|| PtError::UnknownTemp(name.clone()))?;
                Ok(fields
                    .iter()
                    .map(|(n, t)| (format!("{var}.{n}"), t.clone()))
                    .collect())
            }
            Pt::Sel { input, .. } => input.output_columns(env),
            Pt::Proj { cols, input } => {
                let in_cols = input.output_columns(env)?;
                let cenv: HashMap<String, ResolvedType> = in_cols.into_iter().collect();
                cols.iter()
                    .map(|(n, e)| Ok((n.clone(), type_of_column_expr(env.catalog, e, &cenv)?)))
                    .collect()
            }
            Pt::IJ {
                out,
                input,
                step,
                target,
                ..
            } => {
                let mut cols = input.output_columns(env)?;
                // Target class: from the target entity leaf, falling back
                // to the attribute's referenced class.
                let c = match target.as_ref() {
                    Pt::Entity { id, .. } => match env.physical.entity(*id).source {
                        EntitySource::Class(c) => Some(c),
                        _ => None,
                    },
                    _ => None,
                }
                .or_else(|| {
                    step.class_attr
                        .and_then(|(c, a)| env.catalog.attribute(c, a).ty.referenced_class())
                })
                .ok_or_else(|| PtError::NotAReference(step.name.clone()))?;
                cols.push((out.clone(), ResolvedType::Object(c)));
                Ok(cols)
            }
            Pt::PIJ {
                index, outs, input, ..
            } => {
                let mut cols = input.output_columns(env)?;
                let desc = env.physical.index(*index);
                let IndexKindDesc::Path { path } = &desc.kind else {
                    return Err(PtError::NotAPathIndex);
                };
                for (i, out) in outs.iter().enumerate() {
                    let (cls, attr) = path
                        .get(i)
                        .ok_or(PtError::PathIndexArity { wanted: outs.len() })?;
                    let a = env.catalog.attribute(*cls, *attr);
                    let c =
                        a.ty.referenced_class()
                            .ok_or_else(|| PtError::NotAReference(a.name.clone()))?;
                    cols.push((out.clone(), ResolvedType::Object(c)));
                }
                Ok(cols)
            }
            Pt::EJ { left, right, .. } => {
                let mut cols = left.output_columns(env)?;
                cols.extend(right.output_columns(env)?);
                Ok(cols)
            }
            Pt::Union { left, .. } => left.output_columns(env),
            Pt::Fix { temp, body } => {
                // The fixpoint's output is the temporary's shape; derive it
                // from the base (non-recursive) side of the body union.
                let Pt::Union { left, right } = body.as_ref() else {
                    return Err(PtError::FixBodyNotUnion);
                };
                let base = if left.references_temp(temp) {
                    right.as_ref()
                } else {
                    left.as_ref()
                };
                base.output_columns(env)
            }
        }
    }

    /// Render the PT as a functional term using catalog/physical names.
    pub fn display<'a>(&'a self, env: &'a PtEnv<'a>) -> PtDisplay<'a> {
        PtDisplay { pt: self, env }
    }

    /// Render the PT as an indented operator tree (EXPLAIN-style).
    pub fn explain(&self, env: &PtEnv<'_>) -> String {
        let mut out = String::new();
        self.explain_into(env, 0, &mut out);
        out
    }

    fn explain_into(&self, env: &PtEnv<'_>, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        let line = match self {
            Pt::Entity { id, var } => {
                format!("scan {} as {var}", env.physical.entity(*id).name)
            }
            Pt::Temp { name, var } => format!("scan temp {name} as {var}"),
            Pt::Sel { pred, method, .. } => match method {
                AccessMethod::Scan => format!("select {pred}"),
                AccessMethod::Index(idx) => format!(
                    "select {pred} via index {}",
                    env.physical.index(*idx).display_name(env.catalog)
                ),
            },
            Pt::Proj { cols, .. } => {
                let cs: Vec<String> = cols
                    .iter()
                    .map(|(n, e)| {
                        if matches!(e, Expr::Var(v) if v == n) {
                            n.clone()
                        } else {
                            format!("{n}: {e}")
                        }
                    })
                    .collect();
                format!("project [{}]", cs.join(", "))
            }
            Pt::IJ { step, out: o, .. } => format!("implicit join .{} as {o}", step.name),
            Pt::PIJ { index, outs, .. } => format!(
                "path-index join {} as [{}]",
                env.physical.index(*index).display_name(env.catalog),
                outs.join(", ")
            ),
            Pt::EJ { pred, algo, .. } => match algo {
                JoinAlgo::NestedLoop => format!("nested-loop join on {pred}"),
                JoinAlgo::IndexJoin(idx) => format!(
                    "index join on {pred} via {}",
                    env.physical.index(*idx).display_name(env.catalog)
                ),
            },
            Pt::Union { .. } => "union".to_string(),
            Pt::Fix { temp, .. } => format!("fixpoint into temp {temp} (semi-naive)"),
        };
        let _ = writeln!(out, "{pad}{line}");
        // Operand order: print the driving input last so the tree reads
        // top-down like an EXPLAIN.
        for child in self.children() {
            child.explain_into(env, depth + 1, out);
        }
    }
}

/// Shared naming/typing environment for PTs.
pub struct PtEnv<'a> {
    /// Conceptual catalog.
    pub catalog: &'a Catalog,
    /// Physical schema.
    pub physical: &'a PhysicalSchema,
    /// Field shapes of temporaries (by name).
    pub temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
}

impl<'a> PtEnv<'a> {
    /// New environment with no temporaries.
    pub fn new(catalog: &'a Catalog, physical: &'a PhysicalSchema) -> Self {
        PtEnv {
            catalog,
            physical,
            temp_fields: HashMap::new(),
        }
    }

    /// Register a temporary's shape.
    pub fn with_temp(
        mut self,
        name: impl Into<String>,
        fields: Vec<(String, ResolvedType)>,
    ) -> Self {
        self.temp_fields.insert(name.into(), fields);
        self
    }
}

/// Type an expression over column names. Unlike [`expr_type`]'s variable
/// environment, columns of the form `var.field` may be referenced either
/// directly or as `Path { base: var, steps: [field, ...] }`.
pub fn type_of_column_expr(
    catalog: &Catalog,
    expr: &Expr,
    cols: &HashMap<String, ResolvedType>,
) -> Result<ResolvedType, PtError> {
    // Rewrite `var.field...` paths whose prefix is a qualified column.
    let rewritten = expr.map_leaves(&mut |leaf| match leaf {
        Expr::Path { base, steps } if !cols.contains_key(base) && !steps.is_empty() => {
            let qualified = format!("{base}.{}", steps[0]);
            cols.contains_key(&qualified).then(|| {
                if steps.len() == 1 {
                    Expr::Var(qualified)
                } else {
                    Expr::Path {
                        base: qualified,
                        steps: steps[1..].to_vec(),
                    }
                }
            })
        }
        _ => None,
    });
    expr_type(catalog, &rewritten, cols).map_err(PtError::Typing)
}

/// Helper rendering a [`Pt`] as a functional term.
pub struct PtDisplay<'a> {
    pt: &'a Pt,
    env: &'a PtEnv<'a>,
}

impl fmt::Display for PtDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_pt(self.pt, self.env, f)
    }
}

fn write_pt(pt: &Pt, env: &PtEnv<'_>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match pt {
        Pt::Entity { id, .. } => write!(f, "{}", env.physical.entity(*id).name),
        Pt::Temp { name, .. } => write!(f, "{name}"),
        Pt::Sel {
            pred,
            input,
            method,
        } => {
            match method {
                AccessMethod::Scan => write!(f, "Sel_{{{pred}}}(")?,
                AccessMethod::Index(_) => write!(f, "Sel^idx_{{{pred}}}(")?,
            }
            write_pt(input, env, f)?;
            write!(f, ")")
        }
        Pt::Proj { cols, input } => {
            write!(f, "Proj_[")?;
            for (i, (n, e)) in cols.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if matches!(e, Expr::Var(v) if v == n) {
                    write!(f, "{n}")?;
                } else {
                    write!(f, "{n}: {e}")?;
                }
            }
            write!(f, "](")?;
            write_pt(input, env, f)?;
            write!(f, ")")
        }
        Pt::IJ {
            step,
            input,
            target,
            ..
        } => {
            write!(f, "IJ_{}(", step.name)?;
            write_pt(input, env, f)?;
            write!(f, ", ")?;
            write_pt(target, env, f)?;
            write!(f, ")")
        }
        Pt::PIJ {
            index,
            input,
            targets,
            ..
        } => {
            let desc = env.physical.index(*index);
            write!(f, "PIJ_{}(", desc.display_name(env.catalog))?;
            write_pt(input, env, f)?;
            for t in targets {
                write!(f, ", ")?;
                write_pt(t, env, f)?;
            }
            write!(f, ")")
        }
        Pt::EJ {
            pred,
            algo,
            left,
            right,
        } => {
            match algo {
                JoinAlgo::NestedLoop => write!(f, "EJ_{{{pred}}}(")?,
                JoinAlgo::IndexJoin(_) => write!(f, "EJ^idx_{{{pred}}}(")?,
            }
            write_pt(left, env, f)?;
            write!(f, ", ")?;
            write_pt(right, env, f)?;
            write!(f, ")")
        }
        Pt::Union { left, right } => {
            write!(f, "Union(")?;
            write_pt(left, env, f)?;
            write!(f, ", ")?;
            write_pt(right, env, f)?;
            write!(f, ")")
        }
        Pt::Fix { temp, body } => {
            write!(f, "Fix({temp}, ")?;
            write_pt(body, env, f)?;
            write!(f, ")")
        }
    }
}
