//! The declarative transformation-action engine (§4.1 of the paper).
//!
//! Optimizer actions have the form `action: F | constraint → G`: when the
//! pattern `F` matches some part of the tree and `constraint` holds on
//! the captured bindings, the matched part is replaced by `G`.
//!
//! Patterns mirror PT constructors and add two special forms: `Bind`
//! (match anything, capture it) and `Context` — the paper's `pt(X)`,
//! matching any tree that *contains* a subtree matching the inner
//! pattern, and capturing the surrounding context so the rewrite can
//! plug a transformed subtree back into the same place. This is what
//! lets the `filter` rule be stated as
//! `Sel_pred(pt(Fix(Rec, Union(Base, pt'(Rec)))))` even when implicit
//! joins sit between the selection and the fixpoint.

use std::collections::HashMap;

use crate::error::PtError;
use crate::node::Pt;

/// A pattern over processing trees.
#[derive(Debug, Clone)]
pub struct Pattern {
    kind: PatKind,
    bind: Option<String>,
}

#[derive(Debug, Clone)]
enum PatKind {
    /// Matches any subtree.
    Any,
    /// Matches an `Entity` leaf.
    Entity,
    /// Matches a `Temp` leaf.
    Temp,
    /// Matches `Sel(input)`.
    Sel(Box<Pattern>),
    /// Matches `Proj(input)`.
    Proj(Box<Pattern>),
    /// Matches `IJ(input, target)`.
    IJ(Box<Pattern>, Box<Pattern>),
    /// Matches `PIJ(input, ...)` (targets not inspected).
    Pij(Box<Pattern>),
    /// Matches `EJ(left, right)`.
    Ej(Box<Pattern>, Box<Pattern>),
    /// Matches `Union(left, right)`.
    Union(Box<Pattern>, Box<Pattern>),
    /// Matches `Fix(body)`.
    Fix(Box<Pattern>),
    /// `pt(X)`: matches any tree containing a subtree that matches the
    /// inner pattern; binds the context under the given name.
    Context(String, Box<Pattern>),
}

impl Pattern {
    /// Match anything.
    pub fn any() -> Pattern {
        Pattern {
            kind: PatKind::Any,
            bind: None,
        }
    }
    /// Match anything and bind it.
    pub fn bind(name: impl Into<String>) -> Pattern {
        Pattern {
            kind: PatKind::Any,
            bind: Some(name.into()),
        }
    }
    /// Match an entity leaf.
    pub fn entity() -> Pattern {
        Pattern {
            kind: PatKind::Entity,
            bind: None,
        }
    }
    /// Match a temporary leaf.
    pub fn temp() -> Pattern {
        Pattern {
            kind: PatKind::Temp,
            bind: None,
        }
    }
    /// Match a selection.
    pub fn sel(input: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Sel(Box::new(input)),
            bind: None,
        }
    }
    /// Match a projection.
    pub fn proj(input: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Proj(Box::new(input)),
            bind: None,
        }
    }
    /// Match an implicit join.
    pub fn ij(input: Pattern, target: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::IJ(Box::new(input), Box::new(target)),
            bind: None,
        }
    }
    /// Match a path implicit join.
    pub fn pij(input: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Pij(Box::new(input)),
            bind: None,
        }
    }
    /// Match an explicit join.
    pub fn ej(left: Pattern, right: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Ej(Box::new(left), Box::new(right)),
            bind: None,
        }
    }
    /// Match a union.
    pub fn union(left: Pattern, right: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Union(Box::new(left), Box::new(right)),
            bind: None,
        }
    }
    /// Match a fixpoint.
    pub fn fix(body: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Fix(Box::new(body)),
            bind: None,
        }
    }
    /// The paper's `pt(X)` context pattern.
    pub fn context(name: impl Into<String>, inner: Pattern) -> Pattern {
        Pattern {
            kind: PatKind::Context(name.into(), Box::new(inner)),
            bind: None,
        }
    }
    /// Also bind the whole subtree matched by this pattern.
    pub fn named(mut self, name: impl Into<String>) -> Pattern {
        self.bind = Some(name.into());
        self
    }
}

/// A captured binding: a whole subtree or a context (a tree with a hole).
#[derive(Debug, Clone)]
pub enum Binding {
    /// A matched subtree.
    Tree(Pt),
    /// A matched context: the tree and the child-index path of the hole.
    Ctx {
        /// The whole context tree (hole contents still in place).
        tree: Pt,
        /// Path to the hole.
        hole: Vec<usize>,
    },
}

/// The bindings captured by one successful match.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, Binding>,
}

impl Bindings {
    /// The subtree bound to `name`.
    pub fn tree(&self, name: &str) -> Result<&Pt, PtError> {
        match self.map.get(name) {
            Some(Binding::Tree(t)) => Ok(t),
            _ => Err(PtError::UnboundPatternVar(name.to_string())),
        }
    }

    /// The subtree currently filling the hole of the context bound to
    /// `name`.
    pub fn hole_of(&self, name: &str) -> Result<&Pt, PtError> {
        match self.map.get(name) {
            Some(Binding::Ctx { tree, hole }) => tree
                .at_path(hole)
                .ok_or_else(|| PtError::UnboundPatternVar(name.to_string())),
            _ => Err(PtError::UnboundPatternVar(name.to_string())),
        }
    }

    /// Rebuild the context bound to `name` with its hole replaced by
    /// `filling` — the paper's `pt(G)` on the right-hand side of a rule.
    pub fn plug(&self, name: &str, filling: Pt) -> Result<Pt, PtError> {
        match self.map.get(name) {
            Some(Binding::Ctx { tree, hole }) => {
                let mut t = tree.clone();
                t.replace_at(hole, filling)?;
                Ok(t)
            }
            _ => Err(PtError::UnboundPatternVar(name.to_string())),
        }
    }

    /// True when the context bound to `name` is trivial (hole at the
    /// root, i.e. `pt(X) = X`).
    pub fn is_trivial_ctx(&self, name: &str) -> bool {
        matches!(self.map.get(name), Some(Binding::Ctx { hole, .. }) if hole.is_empty())
    }

    fn insert(&mut self, name: String, b: Binding) {
        self.map.insert(name, b);
    }

    fn merged(mut self, other: &Bindings) -> Bindings {
        for (k, v) in &other.map {
            self.map.insert(k.clone(), v.clone());
        }
        self
    }
}

/// All ways `pattern` matches the tree `pt` (at its root).
pub fn match_pattern(pt: &Pt, pattern: &Pattern) -> Vec<Bindings> {
    let mut out: Vec<Bindings> = match &pattern.kind {
        PatKind::Any => vec![Bindings::default()],
        PatKind::Entity => match pt {
            Pt::Entity { .. } => vec![Bindings::default()],
            _ => vec![],
        },
        PatKind::Temp => match pt {
            Pt::Temp { .. } => vec![Bindings::default()],
            _ => vec![],
        },
        PatKind::Sel(inner) => match pt {
            Pt::Sel { input, .. } => match_pattern(input, inner),
            _ => vec![],
        },
        PatKind::Proj(inner) => match pt {
            Pt::Proj { input, .. } => match_pattern(input, inner),
            _ => vec![],
        },
        PatKind::IJ(pi, pt_) => match pt {
            Pt::IJ { input, target, .. } => {
                combine(match_pattern(input, pi), match_pattern(target, pt_))
            }
            _ => vec![],
        },
        PatKind::Pij(pi) => match pt {
            Pt::PIJ { input, .. } => match_pattern(input, pi),
            _ => vec![],
        },
        PatKind::Ej(pl, pr) => match pt {
            Pt::EJ { left, right, .. } => {
                combine(match_pattern(left, pl), match_pattern(right, pr))
            }
            _ => vec![],
        },
        PatKind::Union(pl, pr) => match pt {
            Pt::Union { left, right } => combine(match_pattern(left, pl), match_pattern(right, pr)),
            _ => vec![],
        },
        PatKind::Fix(pb) => match pt {
            Pt::Fix { body, .. } => match_pattern(body, pb),
            _ => vec![],
        },
        PatKind::Context(name, inner) => {
            let mut results = Vec::new();
            for (path, sub) in subtrees(pt) {
                for m in match_pattern(sub, inner) {
                    let mut b = m;
                    b.insert(
                        name.clone(),
                        Binding::Ctx {
                            tree: pt.clone(),
                            hole: path.clone(),
                        },
                    );
                    results.push(b);
                }
            }
            results
        }
    };
    if let Some(bind) = &pattern.bind {
        for m in &mut out {
            m.insert(bind.clone(), Binding::Tree(pt.clone()));
        }
    }
    out
}

fn combine(a: Vec<Bindings>, b: Vec<Bindings>) -> Vec<Bindings> {
    let mut out = Vec::new();
    for x in &a {
        for y in &b {
            out.push(x.clone().merged(y));
        }
    }
    out
}

/// All subtrees with their child-index paths (pre-order; includes the
/// root with the empty path).
pub fn subtrees(pt: &Pt) -> Vec<(Vec<usize>, &Pt)> {
    let mut out = Vec::new();
    fn walk<'a>(pt: &'a Pt, path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, &'a Pt)>) {
        out.push((path.clone(), pt));
        for (i, c) in pt.children().into_iter().enumerate() {
            path.push(i);
            walk(c, path, out);
            path.pop();
        }
    }
    walk(pt, &mut Vec::new(), &mut out);
    out
}

/// The applicability constraint of a [`TransformAction`].
pub type ConstraintFn<'a> = Box<dyn Fn(&Bindings) -> bool + 'a>;
/// The right-hand-side builder of a [`TransformAction`].
pub type BuildFn<'a> = Box<dyn Fn(&Bindings) -> Option<Pt> + 'a>;

/// A transformation action `name: F | constraint → G`.
pub struct TransformAction<'a> {
    /// Action label.
    pub name: String,
    /// The pattern `F`.
    pub pattern: Pattern,
    /// The applicability constraint over captured bindings.
    pub constraint: ConstraintFn<'a>,
    /// Builds the replacement `G` from the bindings. Returning `None`
    /// vetoes this particular match (e.g. a malformed capture).
    pub build: BuildFn<'a>,
}

impl<'a> TransformAction<'a> {
    /// New action with a trivially-true constraint.
    pub fn new(
        name: impl Into<String>,
        pattern: Pattern,
        build: impl Fn(&Bindings) -> Option<Pt> + 'a,
    ) -> Self {
        TransformAction {
            name: name.into(),
            pattern,
            constraint: Box::new(|_| true),
            build: Box::new(build),
        }
    }

    /// Attach a constraint.
    pub fn with_constraint(mut self, c: impl Fn(&Bindings) -> bool + 'a) -> Self {
        self.constraint = Box::new(c);
        self
    }

    /// Apply the action at the first position (pre-order) where the
    /// pattern matches and the constraint holds. Returns the transformed
    /// tree, or `None` when no applicable match exists.
    pub fn apply(&self, pt: &Pt) -> Option<Pt> {
        for (path, sub) in subtrees(pt) {
            for m in match_pattern(sub, &self.pattern) {
                if !(self.constraint)(&m) {
                    continue;
                }
                if let Some(replacement) = (self.build)(&m) {
                    let mut out = pt.clone();
                    out.replace_at(&path, replacement).ok()?;
                    return Some(out);
                }
            }
        }
        None
    }

    /// Every tree obtainable by one application of the action (one per
    /// applicable match position) — used by randomized strategies to
    /// enumerate neighbour moves.
    pub fn apply_all(&self, pt: &Pt) -> Vec<Pt> {
        let mut out = Vec::new();
        for (path, sub) in subtrees(pt) {
            for m in match_pattern(sub, &self.pattern) {
                if !(self.constraint)(&m) {
                    continue;
                }
                if let Some(replacement) = (self.build)(&m) {
                    let mut t = pt.clone();
                    if t.replace_at(&path, replacement).is_ok() {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Apply the action up to saturation (bounded by `max` applications —
    /// the paper's irrevocable strategies are all finite).
    pub fn saturate(&self, mut pt: Pt, max: usize) -> Pt {
        for _ in 0..max {
            match self.apply(&pt) {
                Some(next) => pt = next,
                None => break,
            }
        }
        pt
    }
}
