//! A small, dependency-free, deterministic pseudo-random number
//! generator for data generation and randomized plan search.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded from a
//! single `u64` through SplitMix64 — the construction recommended by
//! the xoshiro authors. It is *not* cryptographic; it exists so the
//! workspace needs no external `rand` crate and so every generated
//! database and every randomized optimizer walk is reproducible from
//! its seed alone.

/// SplitMix64: a tiny, statistically solid 64-bit generator used here to
/// expand one seed word into the xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The workspace PRNG: xoshiro256**, seeded via [`SplitMix64`].
///
/// Identical seeds produce identical streams on every platform; that
/// determinism is load-bearing for the datagen crates (fixtures named
/// in tests) and the randomized optimizer (named strategies must be
/// comparable across runs).
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Prng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, n)`. Uses Lemire rejection so small ranges are
    /// unbiased. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Prng::below(0)");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index into a slice of length `n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`. Panics if
    /// `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Prng::range_i64: empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `u32` in the half-open range `[lo, hi)`. Panics if
    /// `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "Prng::range_u32: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 || p.is_nan() {
            return false;
        }
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "different seeds must diverge");
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known outputs for seed 0 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_eq!(first, 0xE220A8397B1DCDAF);
        assert_eq!(second, 0x6E789E6AA1B965F4);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reached");
    }

    #[test]
    fn range_i64_bounds() {
        let mut rng = Prng::new(9);
        for _ in 0..1000 {
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(rng.range_i64(3, 4), 3);
    }

    #[test]
    fn f64_unit_interval_and_chance_extremes() {
        let mut rng = Prng::new(11);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 1/2");
        assert!(rng.chance(1.0));
        assert!(!rng.chance(0.0));
        assert!(!rng.chance(f64::NAN));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
