//! Column def-use dataflow over the PT: a top-down demand (liveness)
//! pass flagging projection columns that are *computed* (not a bare
//! column pass-through) yet never read by any ancestor — dead work the
//! plan author can drop (`AB004`).
//!
//! The pass is deliberately conservative toward liveness: variable
//! shadowing and qualified-column aliasing only ever *add* demanded
//! names, so a column is flagged only when provably unread. Fixpoint
//! bodies are fully live — every column of a recursive temporary feeds
//! the accumulator's distinctness check.

use std::collections::BTreeSet;

use oorq_lint::{LintCode, LintReport};
use oorq_pt::{node_ids, Pt};
use oorq_query::Expr;

/// The demand set flowing down the tree.
#[derive(Debug, Clone)]
struct Live {
    /// Everything is demanded (root, fixpoint bodies).
    all: bool,
    names: BTreeSet<String>,
}

impl Live {
    fn all() -> Live {
        Live {
            all: true,
            names: BTreeSet::new(),
        }
    }

    fn is_live(&self, name: &str) -> bool {
        if self.all || self.names.contains(name) {
            return true;
        }
        // A demand for `v` (e.g. a path rooted at `v`) reaches the
        // qualified column `v.field`, and a demand for `v.field`
        // reaches the column `v` it projects from.
        if let Some(base) = name.split('.').next() {
            if base != name && self.names.contains(base) {
                return true;
            }
        }
        self.names.iter().any(|n| n.split('.').next() == Some(name))
    }

    fn extend_from(&mut self, e: &Expr) {
        if !self.all {
            self.names.extend(e.vars());
        }
    }
}

/// Flag provably-dead computed projection columns (`AB004`).
pub fn dead_columns(pt: &Pt) -> LintReport {
    let ids = node_ids(pt);
    let mut report = LintReport::new();
    walk(pt, Live::all(), &ids, &mut report);
    report
}

fn walk(
    pt: &Pt,
    live: Live,
    ids: &std::collections::HashMap<*const Pt, usize>,
    report: &mut LintReport,
) {
    match pt {
        Pt::Entity { .. } | Pt::Temp { .. } => {}
        Pt::Sel { pred, input, .. } => {
            let mut l = live;
            l.extend_from(pred);
            walk(input, l, ids, report);
        }
        Pt::Proj { cols, input } => {
            let id = ids.get(&(pt as *const Pt)).copied().unwrap_or(0);
            let mut demand = Live {
                all: false,
                names: BTreeSet::new(),
            };
            for (name, expr) in cols {
                let used = live.is_live(name);
                if used || live.all {
                    demand.names.extend(expr.vars());
                }
                if !used && !matches!(expr, Expr::Var(_)) {
                    report.push(
                        LintCode::DeadComputedColumn,
                        format!("node {id} (Proj)"),
                        format!(
                            "computed column `{name}` is never read by any ancestor; \
                             its per-row evaluation is dead work"
                        ),
                    );
                }
            }
            walk(input, demand, ids, report);
        }
        Pt::IJ {
            on, input, target, ..
        } => {
            let mut l = live;
            l.extend_from(on);
            walk(input, l, ids, report);
            walk(target, Live::all(), ids, report);
        }
        Pt::PIJ {
            on, input, targets, ..
        } => {
            let mut l = live;
            l.extend_from(on);
            walk(input, l, ids, report);
            for t in targets {
                walk(t, Live::all(), ids, report);
            }
        }
        Pt::EJ {
            pred, left, right, ..
        } => {
            let mut l = live;
            l.extend_from(pred);
            walk(left, l.clone(), ids, report);
            walk(right, l, ids, report);
        }
        Pt::Union { left, right } => {
            walk(left, live.clone(), ids, report);
            walk(right, live, ids, report);
        }
        Pt::Fix { body, .. } => {
            // Every column of the body participates in the accumulator's
            // row-distinctness check: all live.
            walk(body, Live::all(), ids, report);
        }
    }
}
