//! Static plan analysis by abstract interpretation.
//!
//! Three cooperating passes over a processing tree (and, through the
//! lowering mirror, over the physical plan it lowers to):
//!
//! - [`bounds`] — the interval domain: sound `[lo, hi]` bounds on every
//!   operator's cardinality, page accesses, fixpoint pass count, and
//!   weighted cost, with directed rounding so float arithmetic can never
//!   round a true bound away;
//! - [`dataflow`] — column def-use: provably dead computed projection
//!   columns (`AB004`);
//! - [`dominance`] — provable candidate pruning: result-preserving
//!   toggles whose cost intervals do not overlap.
//!
//! [`check_observed`] closes the loop at runtime: every observed
//! per-operator counter must lie inside its static interval
//! (`AB001`–`AB003`), which debug builds of the executor assert after
//! every query.

pub mod bounds;
pub mod check;
pub mod dataflow;
pub mod dominance;
pub mod interval;

pub use bounds::{Analysis, Analyzer, AnalyzerConfig, FeatBounds, NodeBounds};
pub use check::{check_observed, ObservedFix, ObservedOp};
pub use dataflow::dead_columns;
pub use dominance::{equivalent_local_change, proven_worse};
pub use interval::{next_down, next_up, Interval};
