//! Abstract interpretation of processing trees: sound per-node interval
//! bounds on cardinality, page accesses, fixpoint passes, and weighted
//! cost.
//!
//! The analyzer walks a PT mirroring the lowering's access-method
//! resolution exactly ([`oorq_pt::lower`]), and for every node that
//! lowers to a physical operator derives intervals guaranteed to contain
//! the executor's *exclusive* per-operator counters:
//!
//! - `rows_total` ⊇ observed `rows_out`;
//! - `data()` (sequential + dereference pages) ⊇ observed
//!   `page_reads + page_hits`;
//! - `index()` ⊇ observed `index_reads`;
//! - `writes()` ⊇ observed `page_writes`;
//! - `passes` (fixpoints only) ⊇ the observed semi-naive iteration
//!   count of every delta curve.
//!
//! Violations of this contract are surfaced by [`crate::check_observed`]
//! as `AB001`–`AB003` lints and (in debug builds) break the executor's
//! soundness assertion.
//!
//! Termination of fixpoints is bounded by the *finite key space*
//! argument: the accumulator holds distinct rows, so when every field of
//! the temporary ranges over a finite domain (object fields range over
//! the class extent plus `Null`, booleans over `{true, false, Null}`),
//! the number of distinct rows — and hence the number of non-empty
//! deltas, and hence the semi-naive pass count — is bounded by the
//! product of the field domains. An unbounded field degrades the pass
//! bound to the executor's iteration cap (`AB005`).
//!
//! Cost intervals apply the Figure-5 feature×weight model with directed
//! rounding (see [`Interval`]), so two plans' intervals can be compared:
//! if one plan's lower cost bound exceeds another's upper bound, the
//! first is *provably* worse (see [`crate::dominance`]).

use std::collections::HashMap;

use oorq_cost::CostParams;
use oorq_lint::{LintCode, LintReport};
use oorq_pt::{
    eq_literal_conjunct, node_ids, type_of_column_expr, AccessMethod, JoinAlgo, Pt, PtEnv, PtError,
};
use oorq_query::{CmpOp, Expr, Literal};
use oorq_schema::{AtomicType, AttrId, AttributeKind, Catalog, ClassId, ResolvedType};
use oorq_storage::{DbStats, EntityId, EntitySource, FragmentSpec, IndexKindDesc, PhysicalSchema};

use crate::interval::{next_up, Interval};

/// Analyzer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzerConfig {
    /// The executor's fixpoint iteration cap: a run exceeding it aborts
    /// with `FixpointDiverged`, so the cap is a sound pass bound for
    /// every *completed* run. Must match the executing
    /// `ExecConfig::max_fix_iterations` for the soundness contract to
    /// hold.
    pub max_fix_iterations: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            max_fix_iterations: 10_000,
        }
    }
}

/// Interval bounds on one operator's exclusive feature counters
/// (totals over the whole query, all opens included).
#[derive(Debug, Clone, Copy)]
pub struct FeatBounds {
    /// Sequentially scanned data pages.
    pub seq: Interval,
    /// Randomly fetched data pages (object dereference, predicate path
    /// traversal, fetching index matches).
    pub deref: Interval,
    /// Index page accesses (levels and leaves combined — the executor
    /// counts them as one `index_reads` counter).
    pub index: Interval,
    /// Temporary pages written.
    pub writes: Interval,
    /// Predicate comparisons.
    pub evals: Interval,
    /// Method cost units (declared `eval_cost` × invocations).
    pub method_units: Interval,
}

impl FeatBounds {
    /// All-zero features (an operator with no own work).
    pub fn zero() -> FeatBounds {
        FeatBounds {
            seq: Interval::zero(),
            deref: Interval::zero(),
            index: Interval::zero(),
            writes: Interval::zero(),
            evals: Interval::zero(),
            method_units: Interval::zero(),
        }
    }
}

/// The static bounds of one PT node.
#[derive(Debug, Clone)]
pub struct NodeBounds {
    /// Pre-order index of the node (the join key against
    /// `OpMeta::pt_node`).
    pub pt_node: usize,
    /// Display label, aligned with the lowering's operator labels.
    pub label: String,
    /// False for nodes the lowering does not emit as operators (the
    /// entity replaced by an index probe, an implicit join's target, a
    /// fixpoint body's union) — their bounds are all zero.
    pub lowered: bool,
    /// Subtree size in nodes (pre-order ids `pt_node..pt_node+size`).
    pub size: usize,
    /// How many times the operator is opened over the whole query.
    pub opens: Interval,
    /// Rows emitted per open.
    pub rows_once: Interval,
    /// Rows emitted over the whole query (all opens).
    pub rows_total: Interval,
    /// Exclusive feature totals.
    pub feats: FeatBounds,
    /// Fixpoints only: bound on the semi-naive pass count *per open*.
    pub passes: Option<Interval>,
    /// Exclusive weighted cost (features × weights, `io·pr + cpu·ev`).
    pub cost: Interval,
}

impl NodeBounds {
    /// Bound on observed data-page accesses (`page_reads + page_hits`).
    pub fn data(&self) -> Interval {
        self.feats.seq.add(self.feats.deref)
    }

    /// Bound on observed `index_reads`.
    pub fn index(&self) -> Interval {
        self.feats.index
    }

    /// Bound on observed `page_writes`.
    pub fn writes(&self) -> Interval {
        self.feats.writes
    }

    fn zero(pt_node: usize, label: String, size: usize) -> NodeBounds {
        NodeBounds {
            pt_node,
            label,
            lowered: false,
            size,
            opens: Interval::zero(),
            rows_once: Interval::zero(),
            rows_total: Interval::zero(),
            feats: FeatBounds::zero(),
            passes: None,
            cost: Interval::zero(),
        }
    }
}

/// The result of analyzing one PT.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node bounds, indexed by pre-order id.
    pub nodes: Vec<NodeBounds>,
    /// Diagnostics raised during analysis (`AB004`–`AB007`).
    pub report: LintReport,
    /// Whole-plan cost interval (sum of every node's exclusive cost).
    pub total_cost: Interval,
}

impl Analysis {
    /// The bounds of the node with the given pre-order id.
    pub fn node(&self, pt_node: usize) -> Option<&NodeBounds> {
        self.nodes.get(pt_node)
    }

    /// Cost interval of the subtree rooted at a pre-order id (pre-order
    /// ids of a subtree are contiguous).
    pub fn subtree_cost(&self, pt_node: usize) -> Option<Interval> {
        let root = self.nodes.get(pt_node)?;
        let end = pt_node.checked_add(root.size)?;
        if end > self.nodes.len() {
            return None;
        }
        Some(
            self.nodes[pt_node..end]
                .iter()
                .fold(Interval::zero(), |acc, n| acc.add(n.cost)),
        )
    }
}

/// The static plan analyzer. Borrowed context: catalog, physical schema,
/// measured statistics, cost parameters.
pub struct Analyzer<'a> {
    /// Conceptual catalog.
    pub catalog: &'a Catalog,
    /// Physical schema.
    pub physical: &'a PhysicalSchema,
    /// Measured database statistics (the `max_fanout`/`max_dup` columns
    /// are what makes the upper bounds finite).
    pub stats: &'a DbStats,
    /// Cost parameters whose weights price the feature intervals.
    pub params: CostParams,
    /// Knobs.
    pub config: AnalyzerConfig,
}

impl<'a> Analyzer<'a> {
    /// New analyzer with default knobs.
    pub fn new(
        catalog: &'a Catalog,
        physical: &'a PhysicalSchema,
        stats: &'a DbStats,
        params: CostParams,
    ) -> Self {
        Analyzer {
            catalog,
            physical,
            stats,
            params,
            config: AnalyzerConfig::default(),
        }
    }

    /// Analyze a plan with no pre-registered temporaries.
    pub fn analyze(&self, pt: &Pt) -> Result<Analysis, PtError> {
        self.analyze_with_temps(pt, HashMap::new())
    }

    /// Analyze a plan; `temp_fields` pre-registers the shapes of
    /// temporaries defined outside the plan (their cardinalities are
    /// unknown, so their bounds are top).
    pub fn analyze_with_temps(
        &self,
        pt: &Pt,
        temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    ) -> Result<Analysis, PtError> {
        let size = pt.size();
        let mut walk = Walk {
            az: self,
            ids: node_ids(pt),
            temp_fields,
            temp_info: HashMap::new(),
            nodes: vec![None; size],
            report: LintReport::new(),
        };
        walk.go(pt, Interval::exact(1.0))?;
        let mut report = walk.report;
        let nodes: Vec<NodeBounds> = walk
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, n)| n.unwrap_or_else(|| NodeBounds::zero(i, "?".to_string(), 1)))
            .collect();
        for n in &nodes {
            let degenerate = n.rows_once.is_degenerate()
                || n.rows_total.is_degenerate()
                || n.opens.is_degenerate()
                || n.data().is_degenerate()
                || n.index().is_degenerate()
                || n.writes().is_degenerate()
                || n.cost.is_degenerate()
                || n.passes.is_some_and(|p| p.is_degenerate());
            if degenerate {
                report.push(
                    LintCode::DegenerateInterval,
                    format!("node {} ({})", n.pt_node, n.label),
                    "analysis derived lo > hi or NaN; the bound is unusable".to_string(),
                );
            }
        }
        let total_cost = nodes
            .iter()
            .fold(Interval::zero(), |acc, n| acc.add(n.cost));
        Ok(Analysis {
            nodes,
            report,
            total_cost,
        })
    }
}

/// Upper bounds on the cost of evaluating one expression on one row —
/// every field is a sound `hi` (the matching lower bounds are all zero:
/// `And`/`Or` short-circuit and comparisons stop at the first true
/// member pair, so nothing below the top-level count is guaranteed).
#[derive(Debug, Clone, Copy)]
struct ExprCost {
    /// Data pages fetched by path traversal (`read_attr`).
    fetches: f64,
    /// Comparison bumps.
    evals: f64,
    /// Method cost units.
    units: f64,
    /// Members of the result value (fan-out under existential
    /// semantics).
    members: f64,
}

impl ExprCost {
    fn leaf(members: f64) -> ExprCost {
        ExprCost {
            fetches: 0.0,
            evals: 0.0,
            units: 0.0,
            members,
        }
    }

    fn top() -> ExprCost {
        ExprCost {
            fetches: f64::INFINITY,
            evals: f64::INFINITY,
            units: f64::INFINITY,
            members: f64::INFINITY,
        }
    }

    fn merge(self, o: ExprCost, members: f64) -> ExprCost {
        ExprCost {
            fetches: add_up(self.fetches, o.fetches),
            evals: add_up(self.evals, o.evals),
            units: add_up(self.units, o.units),
            members,
        }
    }
}

/// `a + b` rounded toward `+∞`.
fn add_up(a: f64, b: f64) -> f64 {
    next_up(a + b)
}

/// `a · b` rounded toward `+∞`, with `0 · ∞ = 0` (an unbounded factor
/// of a quantity that never occurs contributes nothing).
fn mul_up(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        next_up(a * b)
    }
}

/// A column visible to expressions at some point of the tree.
#[derive(Debug, Clone)]
struct ColInfo {
    name: String,
    ty: ResolvedType,
    /// Upper bound on the members of one row's value.
    members: f64,
}

/// What a subtree feeds its parent.
struct Out {
    cols: Vec<ColInfo>,
    rows_once: Interval,
    rows_total: Interval,
}

/// What the analyzer knows about a fixpoint temporary in scope.
struct TempInfo {
    /// Bound on the distinct rows ever accumulated per fixpoint open
    /// (the finite-key-space bound; `∞` when unbounded).
    k_hi: f64,
    /// While analyzing the recursive leg: bound on the *total* rows all
    /// delta scans of this temporary stream over the whole query —
    /// every distinct row enters the delta exactly once, so the sum of
    /// delta sizes over all passes is at most `k_hi` per fixpoint open.
    total_cap: Option<f64>,
}

struct Walk<'a, 'b> {
    az: &'b Analyzer<'a>,
    ids: HashMap<*const Pt, usize>,
    temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    temp_info: HashMap<String, TempInfo>,
    nodes: Vec<Option<NodeBounds>>,
    report: LintReport,
}

impl Walk<'_, '_> {
    fn id_of(&self, pt: &Pt) -> usize {
        self.ids.get(&(pt as *const Pt)).copied().unwrap_or(0)
    }

    fn scoped_env(&self) -> PtEnv<'_> {
        PtEnv {
            catalog: self.az.catalog,
            physical: self.az.physical,
            temp_fields: self.temp_fields.clone(),
        }
    }

    /// Record a lowered node's bounds (cost derived from the features).
    #[allow(clippy::too_many_arguments)]
    fn set(
        &mut self,
        pt: &Pt,
        label: String,
        opens: Interval,
        rows_once: Interval,
        rows_total: Interval,
        feats: FeatBounds,
        passes: Option<Interval>,
    ) {
        let id = self.id_of(pt);
        let cost = self.cost_of(&feats);
        self.nodes[id] = Some(NodeBounds {
            pt_node: id,
            label,
            lowered: true,
            size: pt.size(),
            opens,
            rows_once,
            rows_total,
            feats,
            passes,
            cost,
        });
    }

    /// Record a whole subtree as not lowered (zero bounds).
    fn mark_unlowered(&mut self, pt: &Pt) {
        let id = self.id_of(pt);
        let label = match pt {
            Pt::Entity { id: e, .. } => format!("({})", self.az.physical.entity(*e).name),
            Pt::Temp { name, .. } => format!("({name})"),
            Pt::Union { .. } => "(Union)".to_string(),
            _ => "(unlowered)".to_string(),
        };
        self.nodes[id] = Some(NodeBounds::zero(id, label, pt.size()));
        for c in pt.children() {
            self.mark_unlowered(c);
        }
    }

    /// Price a feature interval vector under the analyzer's weights. Any
    /// negative or non-finite weight makes signs ambiguous — the cost
    /// interval collapses to top (which disables provable pruning but
    /// keeps every counter check intact).
    fn cost_of(&self, f: &FeatBounds) -> Interval {
        let p = &self.az.params;
        let w = &p.weights;
        let ws = [
            w.seq_page,
            w.deref_page,
            w.index_level,
            w.index_leaf,
            w.write_page,
            w.eval,
            w.method,
            p.pr,
            p.ev,
        ];
        if ws.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Interval::top();
        }
        // The executor does not split index accesses into levels and
        // leaves, so the probe count is priced with the hull of the two
        // weights.
        let wi = Interval::make(
            w.index_level.min(w.index_leaf),
            w.index_level.max(w.index_leaf),
        );
        let io = f
            .seq
            .scale(w.seq_page)
            .add(f.deref.scale(w.deref_page))
            .add(f.index.mul(wi))
            .add(f.writes.scale(w.write_page));
        let cpu = f.evals.scale(w.eval).add(f.method_units.scale(w.method));
        io.scale(p.pr).add(cpu.scale(p.ev))
    }

    // ------------------------------------------------------------------
    // Statistics helpers (all upper bounds unless noted)
    // ------------------------------------------------------------------

    /// Field slot of a class attribute inside one entity's row layout
    /// (`None` when a vertical fragment does not carry the attribute).
    fn slot_of(&self, entity: EntityId, attr: AttrId) -> Option<usize> {
        match &self.az.physical.entity(entity).fragment {
            Some(FragmentSpec::Vertical { attrs }) => attrs.iter().position(|a| *a == attr),
            _ => Some(attr.0 as usize),
        }
    }

    /// Upper bound on the rows whose oid has *exactly* class `c` (sums
    /// fragment cardinalities; vertical fragments over-count, which is
    /// sound for an upper bound).
    fn class_rows_hi(&self, c: ClassId) -> f64 {
        let mut total = 0.0;
        for &e in self.az.physical.entities_of_class(c) {
            match self.az.stats.entity(e) {
                Some(s) => total = add_up(total, s.cardinality as f64),
                None => return f64::INFINITY,
            }
        }
        total
    }

    /// Size of the key space of an `Object(c)` field: any oid of `c` or
    /// a subclass, plus `Null`.
    fn key_space_rows(&self, c: ClassId) -> f64 {
        let mut total = 1.0; // Null
        for sub in self.az.catalog.subclasses_of(c) {
            total = add_up(total, self.class_rows_hi(sub));
        }
        total
    }

    /// Upper bound on the records of class `c` (exactly) sharing one
    /// value of `attr` — bounds the hits of an equality index probe
    /// after the executor's exact-class filter.
    fn attr_max_dup(&self, c: ClassId, attr: AttrId) -> f64 {
        let mut total = 0.0;
        for &e in self.az.physical.entities_of_class(c) {
            let Some(slot) = self.slot_of(e, attr) else {
                continue;
            };
            match self.az.stats.entity(e).and_then(|s| s.attrs.get(slot)) {
                Some(a) => total = add_up(total, a.max_dup as f64),
                None => return f64::INFINITY,
            }
        }
        total
    }

    /// Upper bound on the members of one row's `attr` value, over `c`
    /// and its subclasses (a column statically typed `Object(c)` holds
    /// subclass oids too). Computed attributes are bounded by their
    /// type; stored attributes by the measured `max_fanout`.
    fn attr_fanout_hi(&self, c: ClassId, name: &str) -> f64 {
        let mut best = 0.0f64;
        let mut found = false;
        for sub in self.az.catalog.subclasses_of(c) {
            let Some((aid, attr)) = self.az.catalog.attr(sub, name) else {
                continue;
            };
            found = true;
            let fallback = if attr.ty.is_collection() {
                f64::INFINITY
            } else {
                1.0
            };
            if matches!(attr.kind, AttributeKind::Computed { .. }) {
                best = best.max(fallback);
                continue;
            }
            let mut sub_best = 0.0f64;
            let mut any = false;
            for &e in self.az.physical.entities_of_class(sub) {
                let Some(slot) = self.slot_of(e, aid) else {
                    continue;
                };
                match self.az.stats.entity(e).and_then(|s| s.attrs.get(slot)) {
                    Some(a) => {
                        any = true;
                        sub_best = sub_best.max(a.max_fanout as f64);
                    }
                    None => {
                        any = true;
                        sub_best = fallback;
                    }
                }
            }
            best = best.max(if any { sub_best } else { fallback });
        }
        if found {
            best
        } else {
            f64::INFINITY
        }
    }

    /// Upper bound on the data-page fetches of `read_object` for an oid
    /// statically typed `c` (vertical decomposition reads one page per
    /// fragment; the runtime class may be any subclass).
    fn deref_cost_hi(&self, c: ClassId) -> f64 {
        let mut best = 1.0f64;
        for sub in self.az.catalog.subclasses_of(c) {
            let vert = self
                .az
                .physical
                .entities_of_class(sub)
                .iter()
                .filter(|&&e| {
                    matches!(
                        self.az.physical.entity(e).fragment,
                        Some(FragmentSpec::Vertical { .. })
                    )
                })
                .count();
            best = best.max(if vert == 0 { 1.0 } else { vert as f64 });
        }
        best
    }

    // ------------------------------------------------------------------
    // Expression bounds
    // ------------------------------------------------------------------

    fn col<'c>(&self, cols: &'c [ColInfo], name: &str) -> Option<&'c ColInfo> {
        cols.iter().find(|c| c.name == name)
    }

    /// Per-evaluation upper bounds of an expression over the given
    /// columns (mirrors `EvalCtx::eval` exactly, including the
    /// qualified-column precedence of path resolution and the
    /// single-bump `= null` special case).
    fn expr_bounds(&self, e: &Expr, cols: &[ColInfo]) -> ExprCost {
        match e {
            Expr::True => ExprCost::leaf(1.0),
            Expr::Lit(Literal::Null) => ExprCost::leaf(0.0),
            Expr::Lit(_) => ExprCost::leaf(1.0),
            Expr::Var(v) => match self.col(cols, v) {
                Some(c) => ExprCost::leaf(c.members),
                None => ExprCost::top(),
            },
            Expr::Path { base, steps } => self.path_bounds(base, steps, cols),
            Expr::Cmp { lhs, rhs, .. } => {
                let l = self.expr_bounds(lhs, cols);
                let r = self.expr_bounds(rhs, cols);
                let bumps = if matches!(rhs.as_ref(), Expr::Lit(Literal::Null)) {
                    1.0
                } else {
                    mul_up(l.members, r.members)
                };
                let mut out = l.merge(r, 1.0);
                out.evals = add_up(out.evals, bumps);
                out
            }
            Expr::And(l, r) | Expr::Or(l, r) | Expr::Add(l, r) => {
                let a = self.expr_bounds(l, cols);
                let b = self.expr_bounds(r, cols);
                a.merge(b, 1.0)
            }
            Expr::Not(inner) => {
                let mut c = self.expr_bounds(inner, cols);
                c.members = 1.0;
                c
            }
        }
    }

    fn path_bounds(&self, base: &str, steps: &[String], cols: &[ColInfo]) -> ExprCost {
        // Qualified-column precedence, as in the evaluator.
        let (start, rest): (&ColInfo, &[String]) = {
            let qualified = (!steps.is_empty())
                .then(|| format!("{base}.{}", steps[0]))
                .and_then(|q| self.col(cols, &q));
            match qualified {
                Some(c) => (c, &steps[1..]),
                None => match self.col(cols, base) {
                    Some(c) => (c, steps),
                    None => return ExprCost::top(),
                },
            }
        };
        let mut cost = ExprCost::leaf(start.members);
        let mut ty = start.ty.clone();
        for step in rest {
            let Some(class) = ty.referenced_class() else {
                // Non-oid members are skipped by the evaluator: the
                // traversal dead-ends with no further work.
                cost.members = 0.0;
                return cost;
            };
            // The runtime class of a member may be any subclass; take
            // the worst case over all of them.
            let mut any_stored = false;
            let mut unit = 0.0f64;
            let mut next_ty = None;
            let mut found = false;
            for sub in self.az.catalog.subclasses_of(class) {
                let Some((_aid, attr)) = self.az.catalog.attr(sub, step) else {
                    continue;
                };
                found = true;
                match attr.kind {
                    AttributeKind::Stored => any_stored = true,
                    AttributeKind::Computed { eval_cost } => unit = unit.max(eval_cost.max(0.0)),
                }
                next_ty = Some(attr.ty.clone());
            }
            if !found {
                return ExprCost::top();
            }
            if any_stored {
                cost.fetches = add_up(cost.fetches, cost.members);
            }
            cost.units = add_up(cost.units, mul_up(cost.members, unit));
            cost.members = mul_up(cost.members, self.attr_fanout_hi(class, step));
            ty = next_ty.expect("found implies type");
        }
        cost
    }

    fn members_of_field(ty: &ResolvedType) -> f64 {
        if ty.is_collection() {
            f64::INFINITY
        } else {
            1.0
        }
    }

    // ------------------------------------------------------------------
    // Access-method resolution mirrors
    // ------------------------------------------------------------------

    /// Mirror of `PhysOp::rescannable` at the PT level (a `Sel` that
    /// resolves to an index probe lowers to `IndexSelect`, which is not
    /// rescannable; one that does not lowers to a pass-through filter).
    fn pt_rescannable(&self, pt: &Pt) -> bool {
        match pt {
            Pt::Entity { .. } | Pt::Temp { .. } => true,
            Pt::Sel {
                pred,
                method,
                input,
            } => {
                if let AccessMethod::Index(idx) = method {
                    if resolve_index_select(self.az.catalog, self.az.physical, *idx, pred, input)
                        .is_some()
                    {
                        return false;
                    }
                }
                self.pt_rescannable(input)
            }
            Pt::Proj { input, .. } => self.pt_rescannable(input),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // The transfer functions
    // ------------------------------------------------------------------

    fn go(&mut self, pt: &Pt, opens: Interval) -> Result<Out, PtError> {
        match pt {
            Pt::Entity { id, var } => self.go_entity(pt, *id, var, opens),
            Pt::Temp { name, var } => self.go_temp(pt, name, var, opens),
            Pt::Sel {
                pred,
                method,
                input,
            } => {
                if let AccessMethod::Index(idx) = method {
                    if let Some((nbl, ec, attr_name)) =
                        resolve_index_select(self.az.catalog, self.az.physical, *idx, pred, input)
                    {
                        return self.go_index_select(pt, input, pred, nbl, ec, &attr_name, opens);
                    }
                }
                self.go_filter(pt, input, pred, opens)
            }
            Pt::Proj { cols, input } => self.go_proj(pt, cols, input, opens),
            Pt::IJ {
                on,
                step,
                out,
                input,
                target,
            } => self.go_ij(
                pt,
                on,
                &step.name,
                step.class_attr,
                out,
                input,
                target,
                opens,
            ),
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                targets,
            } => self.go_pij(pt, *index, on, outs, input, targets, opens),
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => {
                if let JoinAlgo::IndexJoin(idx) = algo {
                    if let Some((nbl, ec, attr_name, outer)) =
                        resolve_index_join(self.az.catalog, self.az.physical, *idx, pred, right)
                    {
                        return self.go_index_join(
                            pt, pred, left, right, nbl, ec, &attr_name, &outer, opens,
                        );
                    }
                }
                self.go_nl(pt, pred, left, right, opens)
            }
            Pt::Union { left, right } => self.go_union(pt, left, right, opens),
            Pt::Fix { temp, body } => self.go_fix(pt, temp, body, opens),
        }
    }

    fn go_entity(
        &mut self,
        pt: &Pt,
        id: EntityId,
        var: &str,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let desc = self.az.physical.entity(id);
        let (card, pages) = match self.az.stats.entity(id) {
            Some(s) => (
                Interval::exact_u64(s.cardinality),
                Interval::exact_u64(s.pages),
            ),
            None => (Interval::top(), Interval::top()),
        };
        let cols = match &desc.source {
            EntitySource::Class(c) => vec![ColInfo {
                name: var.to_string(),
                ty: ResolvedType::Object(*c),
                members: 1.0,
            }],
            EntitySource::Relation(r) => {
                let stats = self.az.stats.entity(id);
                self.az
                    .catalog
                    .relation(*r)
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(i, (n, t))| ColInfo {
                        name: format!("{var}.{n}"),
                        ty: t.clone(),
                        members: match stats.and_then(|s| s.attrs.get(i)) {
                            Some(a) => a.max_fanout as f64,
                            None => Self::members_of_field(t),
                        },
                    })
                    .collect()
            }
            EntitySource::Temporary => return Err(PtError::TempAsEntity(desc.name.clone())),
        };
        // Full-drain property: every open sequentially reads the whole
        // extent, so pages and rows per open are exact.
        let rows_once = card;
        let rows_total = rows_once.mul(opens);
        let feats = FeatBounds {
            seq: pages.mul(opens),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            format!("scan {}", desc.name),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    fn go_temp(&mut self, pt: &Pt, name: &str, var: &str, opens: Interval) -> Result<Out, PtError> {
        let fields = self
            .temp_fields
            .get(name)
            .ok_or_else(|| PtError::UnknownTemp(name.to_string()))?
            .clone();
        let info = self.temp_info.get(name);
        let k_hi = info.map(|i| i.k_hi).unwrap_or(f64::INFINITY);
        let total_cap = info.and_then(|i| i.total_cap);
        let rows_once = Interval::up_to(k_hi);
        let mut rows_total = rows_once.mul(opens);
        if let Some(cap) = total_cap {
            // Semi-naive tightening: summed over all passes, the delta
            // scans stream each distinct row once per fixpoint open.
            rows_total = rows_total.cap_hi(cap);
        }
        // Every temp page holds at least one row, so page reads are
        // bounded by rows.
        let feats = FeatBounds {
            seq: Interval::up_to(rows_total.hi),
            ..FeatBounds::zero()
        };
        let cols = fields
            .iter()
            .map(|(n, t)| ColInfo {
                name: format!("{var}.{n}"),
                ty: t.clone(),
                members: Self::members_of_field(t),
            })
            .collect();
        self.set(
            pt,
            format!("scan temp {name}"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn go_index_select(
        &mut self,
        pt: &Pt,
        input: &Pt,
        pred: &Expr,
        nblevels: f64,
        entity_class: ClassId,
        attr_name: &str,
        opens: Interval,
    ) -> Result<Out, PtError> {
        self.mark_unlowered(input);
        let Pt::Entity { var, .. } = input else {
            unreachable!("resolve_index_select checked the input shape");
        };
        let cols = vec![ColInfo {
            name: var.clone(),
            ty: ResolvedType::Object(entity_class),
            members: 1.0,
        }];
        let pc = self.expr_bounds(pred, &cols);
        // The probe's hits are filtered to the exact class before any
        // page is touched, so object fetches are bounded by the worst
        // per-key duplication of the attribute within that class.
        let dup = match self.az.catalog.attr(entity_class, attr_name) {
            Some((aid, _)) => self.attr_max_dup(entity_class, aid),
            None => f64::INFINITY,
        };
        let hits = dup.min(self.class_rows_hi(entity_class));
        let rows_once = Interval::up_to(hits);
        let rows_total = rows_once.mul(opens);
        let feats = FeatBounds {
            // The B+-tree descent runs unconditionally at every open.
            index: Interval::exact(nblevels).mul(opens),
            deref: Interval::up_to(mul_up(
                hits,
                add_up(self.deref_cost_hi(entity_class), pc.fetches),
            ))
            .mul(opens),
            evals: Interval::up_to(mul_up(hits, pc.evals)).mul(opens),
            method_units: Interval::up_to(mul_up(hits, pc.units)).mul(opens),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            format!("Sel^idx[{pred}]"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    fn go_filter(
        &mut self,
        pt: &Pt,
        input: &Pt,
        pred: &Expr,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let child = self.go(input, opens)?;
        let pc = self.expr_bounds(pred, &child.cols);
        let rows_once = Interval::up_to(child.rows_once.hi);
        let rows_total = Interval::up_to(child.rows_total.hi);
        let feats = FeatBounds {
            deref: Interval::up_to(mul_up(child.rows_total.hi, pc.fetches)),
            evals: Interval::up_to(mul_up(child.rows_total.hi, pc.evals)),
            method_units: Interval::up_to(mul_up(child.rows_total.hi, pc.units)),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            format!("Sel[{pred}]"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols: child.cols,
            rows_once,
            rows_total,
        })
    }

    fn go_proj(
        &mut self,
        pt: &Pt,
        cols: &[(String, Expr)],
        input: &Pt,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let child = self.go(input, opens)?;
        let cenv: HashMap<String, ResolvedType> = child
            .cols
            .iter()
            .map(|c| (c.name.clone(), c.ty.clone()))
            .collect();
        let mut out_cols = Vec::with_capacity(cols.len());
        let mut fetches = 0.0;
        let mut evals = 0.0;
        let mut units = 0.0;
        for (n, e) in cols {
            let ec = self.expr_bounds(e, &child.cols);
            fetches = add_up(fetches, ec.fetches);
            evals = add_up(evals, ec.evals);
            units = add_up(units, ec.units);
            out_cols.push(ColInfo {
                name: n.clone(),
                ty: type_of_column_expr(self.az.catalog, e, &cenv)?,
                members: ec.members,
            });
        }
        // Streaming dedup: at least one distinct row per non-empty open,
        // at most the input cardinality.
        let lo = if child.rows_once.lo >= 1.0 { 1.0 } else { 0.0 };
        let rows_once = Interval::make(lo, child.rows_once.hi);
        let rows_total = rows_once.mul(opens).cap_hi(child.rows_total.hi);
        let feats = FeatBounds {
            deref: Interval::up_to(mul_up(child.rows_total.hi, fetches)),
            evals: Interval::up_to(mul_up(child.rows_total.hi, evals)),
            method_units: Interval::up_to(mul_up(child.rows_total.hi, units)),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            "Proj".to_string(),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols: out_cols,
            rows_once,
            rows_total,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn go_ij(
        &mut self,
        pt: &Pt,
        on: &Expr,
        step_name: &str,
        class_attr: Option<(ClassId, AttrId)>,
        out: &str,
        input: &Pt,
        target: &Pt,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let child = self.go(input, opens)?;
        self.mark_unlowered(target);
        let target_class = match target {
            Pt::Entity { id, .. } => match self.az.physical.entity(*id).source {
                EntitySource::Class(c) => Some(c),
                _ => None,
            },
            _ => None,
        }
        .or_else(|| {
            class_attr.and_then(|(c, a)| self.az.catalog.attribute(c, a).ty.referenced_class())
        })
        .ok_or_else(|| PtError::NotAReference(step_name.to_string()))?;
        let oc = self.expr_bounds(on, &child.cols);
        let m = oc.members;
        let rows_once = Interval::up_to(mul_up(child.rows_once.hi, m));
        let rows_total = Interval::up_to(mul_up(child.rows_total.hi, m));
        let feats = FeatBounds {
            deref: Interval::up_to(mul_up(
                child.rows_total.hi,
                add_up(oc.fetches, mul_up(m, self.deref_cost_hi(target_class))),
            )),
            evals: Interval::up_to(mul_up(child.rows_total.hi, oc.evals)),
            method_units: Interval::up_to(mul_up(child.rows_total.hi, oc.units)),
            ..FeatBounds::zero()
        };
        let mut cols = child.cols;
        cols.push(ColInfo {
            name: out.to_string(),
            ty: ResolvedType::Object(target_class),
            members: 1.0,
        });
        self.set(
            pt,
            format!("IJ_{step_name}"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn go_pij(
        &mut self,
        pt: &Pt,
        index: oorq_storage::IndexId,
        on: &Expr,
        outs: &[String],
        input: &Pt,
        targets: &[Pt],
        opens: Interval,
    ) -> Result<Out, PtError> {
        let child = self.go(input, opens)?;
        for t in targets {
            self.mark_unlowered(t);
        }
        let desc = self
            .az
            .physical
            .indexes()
            .get(index.0 as usize)
            .ok_or(PtError::NotAPathIndex)?;
        let IndexKindDesc::Path { path } = desc.kind.clone() else {
            return Err(PtError::NotAPathIndex);
        };
        let label = format!("PIJ_{}", desc.display_name(self.az.catalog));
        let nbl = desc.stats.nblevels as f64;
        // Path tuples reachable from one head oid: product of the step
        // fan-outs.
        let mut tails = 1.0f64;
        for (cls, attr) in &path {
            let name = self.az.catalog.attribute(*cls, *attr).name.clone();
            tails = mul_up(tails, self.attr_fanout_hi(*cls, &name));
        }
        let mut cols = child.cols.clone();
        for (i, o) in outs.iter().enumerate() {
            let (cls, attr) = path
                .get(i)
                .ok_or(PtError::PathIndexArity { wanted: outs.len() })?;
            let a = self.az.catalog.attribute(*cls, *attr);
            let c =
                a.ty.referenced_class()
                    .ok_or_else(|| PtError::NotAReference(a.name.clone()))?;
            cols.push(ColInfo {
                name: o.clone(),
                ty: ResolvedType::Object(c),
                members: 1.0,
            });
        }
        let oc = self.expr_bounds(on, &child.cols);
        let m = oc.members;
        let rows_once = Interval::up_to(mul_up(child.rows_once.hi, mul_up(m, tails)));
        let rows_total = Interval::up_to(mul_up(child.rows_total.hi, mul_up(m, tails)));
        // One probe per head oid: nblevels descent plus extra leaf pages
        // for long result lists (`ceil(hits/8) - 1 <= hits/8`).
        let probe = add_up(nbl, mul_up(tails, 0.125));
        let feats = FeatBounds {
            index: Interval::up_to(mul_up(child.rows_total.hi, mul_up(m, probe))),
            deref: Interval::up_to(mul_up(child.rows_total.hi, oc.fetches)),
            evals: Interval::up_to(mul_up(child.rows_total.hi, oc.evals)),
            method_units: Interval::up_to(mul_up(child.rows_total.hi, oc.units)),
            ..FeatBounds::zero()
        };
        self.set(pt, label, opens, rows_once, rows_total, feats, None);
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn go_index_join(
        &mut self,
        pt: &Pt,
        pred: &Expr,
        left: &Pt,
        right: &Pt,
        nblevels: f64,
        entity_class: ClassId,
        attr_name: &str,
        outer: &Expr,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let l = self.go(left, opens)?;
        self.mark_unlowered(right);
        let Pt::Entity { var, .. } = right else {
            unreachable!("resolve_index_join checked the right shape");
        };
        let oc = self.expr_bounds(outer, &l.cols);
        let m = oc.members;
        let dup = match self.az.catalog.attr(entity_class, attr_name) {
            Some((aid, _)) => self.attr_max_dup(entity_class, aid),
            None => f64::INFINITY,
        };
        let hits = dup.min(self.class_rows_hi(entity_class));
        let mut cols = l.cols.clone();
        cols.push(ColInfo {
            name: var.clone(),
            ty: ResolvedType::Object(entity_class),
            members: 1.0,
        });
        let pc = self.expr_bounds(pred, &cols);
        let rows_once = Interval::up_to(mul_up(l.rows_once.hi, mul_up(m, hits)));
        let rows_total = Interval::up_to(mul_up(l.rows_total.hi, mul_up(m, hits)));
        let feats = FeatBounds {
            index: Interval::up_to(mul_up(l.rows_total.hi, mul_up(m, nblevels))),
            deref: Interval::up_to(mul_up(
                l.rows_total.hi,
                add_up(
                    oc.fetches,
                    mul_up(
                        m,
                        mul_up(hits, add_up(self.deref_cost_hi(entity_class), pc.fetches)),
                    ),
                ),
            )),
            evals: Interval::up_to(mul_up(
                l.rows_total.hi,
                add_up(oc.evals, mul_up(m, mul_up(hits, pc.evals))),
            )),
            method_units: Interval::up_to(mul_up(
                l.rows_total.hi,
                add_up(oc.units, mul_up(m, mul_up(hits, pc.units))),
            )),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            format!("EJ^idx[{pred}]"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    fn go_nl(
        &mut self,
        pt: &Pt,
        pred: &Expr,
        left: &Pt,
        right: &Pt,
        opens: Interval,
    ) -> Result<Out, PtError> {
        let l = self.go(left, opens)?;
        // Honest rescan re-opens the inner per outer row; a
        // non-rescannable inner is materialized once per own open.
        let rescan = self.pt_rescannable(right);
        let r_opens = if rescan { l.rows_total } else { opens };
        let r = self.go(right, r_opens)?;
        let pairs = l.rows_total.mul(r.rows_once);
        let mut cols = l.cols;
        cols.extend(r.cols);
        let pc = self.expr_bounds(pred, &cols);
        let rows_once = Interval::up_to(mul_up(l.rows_once.hi, r.rows_once.hi));
        let rows_total = Interval::up_to(pairs.hi);
        // A materialized (non-rescannable) inner is the join's own work:
        // it is written once per open into a page-store temporary (at
        // most one page per row), then re-scanned once per outer row —
        // page hits while resident, physical reads once the memory
        // budget spills it; `data()` bounds reads+hits so both regimes
        // sit under the same interval. Lower bounds stay 0 (a one-page
        // inner may stay resident and an empty one writes nothing):
        // spilling widens intervals, never inverts them.
        let (mat_writes, mat_rescans) = if rescan {
            (Interval::zero(), Interval::zero())
        } else {
            (
                Interval::up_to(mul_up(r.rows_once.hi, opens.hi)),
                Interval::up_to(pairs.hi),
            )
        };
        let feats = FeatBounds {
            seq: mat_rescans,
            writes: mat_writes,
            deref: Interval::up_to(mul_up(pairs.hi, pc.fetches)),
            evals: Interval::up_to(mul_up(pairs.hi, pc.evals)),
            method_units: Interval::up_to(mul_up(pairs.hi, pc.units)),
            ..FeatBounds::zero()
        };
        self.set(
            pt,
            format!("EJ[{pred}]"),
            opens,
            rows_once,
            rows_total,
            feats,
            None,
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }

    fn go_union(
        &mut self,
        pt: &Pt,
        left: &Pt,
        right: &Pt,
        opens: Interval,
    ) -> Result<Out, PtError> {
        // Both legs are fully drained per open (the right leg is opened
        // when the left exhausts); the union itself does no own work.
        let l = self.go(left, opens)?;
        let r = self.go(right, opens)?;
        let rows_once = l.rows_once.add(r.rows_once);
        let rows_total = l.rows_total.add(r.rows_total);
        self.set(
            pt,
            "Union".to_string(),
            opens,
            rows_once,
            rows_total,
            FeatBounds::zero(),
            None,
        );
        Ok(Out {
            cols: l.cols,
            rows_once,
            rows_total,
        })
    }

    /// Size of the key space of one temporary field (`∞` = unbounded).
    fn field_key_space(&self, ty: &ResolvedType) -> f64 {
        match ty {
            ResolvedType::Object(c) => self.key_space_rows(*c),
            ResolvedType::Atomic(AtomicType::Bool) => 3.0, // true, false, Null
            _ => f64::INFINITY,
        }
    }

    fn go_fix(&mut self, pt: &Pt, temp: &str, body: &Pt, opens: Interval) -> Result<Out, PtError> {
        let Pt::Union { left, right } = body else {
            return Err(PtError::FixBodyNotUnion);
        };
        let (base, rec) = if left.references_temp(temp) {
            (right.as_ref(), left.as_ref())
        } else {
            (left.as_ref(), right.as_ref())
        };
        if !rec.references_temp(temp) {
            return Err(PtError::FixNotRecursive(temp.to_string()));
        }
        // The body union is destructured by the lowering, not emitted as
        // an operator.
        let body_id = self.id_of(body);
        self.nodes[body_id] = Some(NodeBounds::zero(
            body_id,
            "(Union)".to_string(),
            body.size(),
        ));

        let fields = base.output_columns(&self.scoped_env())?;
        self.temp_fields.insert(temp.to_string(), fields.clone());

        // Finite key space: the accumulator holds *distinct* rows, so
        // its size — and the pass count — is bounded by the product of
        // the field domains.
        let mut kspace = 1.0f64;
        let mut unbounded: Option<&str> = None;
        for (n, ty) in &fields {
            let s = self.field_key_space(ty);
            if s.is_infinite() && unbounded.is_none() {
                unbounded = Some(n);
            }
            kspace = mul_up(kspace, s);
        }
        let loc = format!("Fix({temp})");
        if let Some(f) = unbounded {
            self.report.push(
                LintCode::FixKeySpaceUnbounded,
                loc.clone(),
                format!(
                    "field `{f}` ranges over an unbounded domain; the pass bound \
                     falls back to the iteration cap ({})",
                    self.az.config.max_fix_iterations
                ),
            );
        }

        let base_out = self.go(base, opens)?;
        if base_out.rows_total.hi == 0.0 {
            self.report.push(
                LintCode::FixProvablyEmpty,
                loc,
                "the base leg provably produces no rows; the fixpoint is empty".to_string(),
            );
        }
        let k_lo = if base_out.rows_once.lo >= 1.0 {
            1.0
        } else {
            0.0
        };
        let k_hi = kspace;
        // Every pass consumes a non-empty delta, and each distinct row
        // enters the delta exactly once — so passes <= k_hi. The
        // executor aborts past its cap, bounding completed runs.
        let cap = self.az.config.max_fix_iterations as f64;
        let passes = Interval::make(k_lo, cap.min(k_hi));
        self.temp_info.insert(
            temp.to_string(),
            TempInfo {
                k_hi,
                total_cap: Some(mul_up(k_hi, opens.hi)),
            },
        );
        let rec_opens = opens.mul(passes);
        let _rec_out = self.go(rec, rec_opens)?;
        if let Some(info) = self.temp_info.get_mut(temp) {
            // Outside the recursive leg the temporary scans the full
            // accumulator; the per-pass delta cap no longer applies.
            info.total_cap = None;
        }

        let rows_once = Interval::make(k_lo, k_hi);
        let rows_total = rows_once.mul(opens);
        // Each distinct row is appended to the accumulator and the delta
        // (two appends, each writing at most one page); a non-empty seed
        // writes the first page of both.
        let writes_once = Interval::make(2.0 * k_lo, mul_up(2.0, k_hi));
        // After convergence the answer streams back out of the
        // accumulator temporary: at most one fetch per distinct row per
        // open — page hits while the accumulator stayed resident,
        // physical reads once the memory budget spilled it (`data()`
        // bounds reads+hits, so both regimes sit under one interval;
        // the lower bound stays 0, so spilling widens, never inverts).
        let feats = FeatBounds {
            seq: Interval::up_to(mul_up(k_hi, opens.hi)),
            writes: writes_once.mul(opens),
            ..FeatBounds::zero()
        };
        let cols = fields
            .iter()
            .map(|(n, t)| ColInfo {
                name: n.clone(),
                ty: t.clone(),
                members: Self::members_of_field(t),
            })
            .collect();
        self.set(
            pt,
            format!("Fix({temp})"),
            opens,
            rows_once,
            rows_total,
            feats,
            Some(passes),
        );
        Ok(Out {
            cols,
            rows_once,
            rows_total,
        })
    }
}

/// Mirror of the lowering's `Sel` → `IndexSelect` resolution: the index
/// must be a selection index, the input a class-extension entity, and
/// the predicate must carry an `var.attr = literal` conjunct. Returns
/// `(nblevels, entity class, attribute name)`.
pub(crate) fn resolve_index_select(
    catalog: &Catalog,
    physical: &PhysicalSchema,
    idx: oorq_storage::IndexId,
    pred: &Expr,
    input: &Pt,
) -> Option<(f64, ClassId, String)> {
    let desc = physical.indexes().get(idx.0 as usize)?;
    let IndexKindDesc::Selection { class, attr } = desc.kind else {
        return None;
    };
    let Pt::Entity { id, var } = input else {
        return None;
    };
    let EntitySource::Class(entity_class) = physical.entity(*id).source else {
        return None;
    };
    let attr_name = catalog.attribute(class, attr).name.clone();
    eq_literal_conjunct(pred, var, &attr_name)?;
    Some((desc.stats.nblevels as f64, entity_class, attr_name))
}

/// Mirror of the lowering's `EJ` → `IndexJoin` resolution: the index
/// must be a selection index, the right input a class-extension entity,
/// and the predicate must carry an `outer = var.attr` equality conjunct
/// whose outer side does not mention `var`. Returns `(nblevels, entity
/// class, attribute name, outer expression)`.
pub(crate) fn resolve_index_join(
    catalog: &Catalog,
    physical: &PhysicalSchema,
    idx: oorq_storage::IndexId,
    pred: &Expr,
    right: &Pt,
) -> Option<(f64, ClassId, String, Expr)> {
    let desc = physical.indexes().get(idx.0 as usize)?;
    let IndexKindDesc::Selection { class, attr } = desc.kind else {
        return None;
    };
    let Pt::Entity { id, var } = right else {
        return None;
    };
    let EntitySource::Class(entity_class) = physical.entity(*id).source else {
        return None;
    };
    let attr_name = catalog.attribute(class, attr).name.clone();
    let mut outer: Option<Expr> = None;
    for c in pred.conjuncts() {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let matches_inner = |e: &Expr| {
                matches!(e, Expr::Path { base, steps }
                         if base == var && steps.len() == 1 && steps[0] == attr_name)
            };
            if matches_inner(rhs) && !lhs.vars().contains(var) {
                outer = Some((**lhs).clone());
                break;
            }
            if matches_inner(lhs) && !rhs.vars().contains(var) {
                outer = Some((**rhs).clone());
                break;
            }
        }
    }
    outer.map(|o| (desc.stats.nblevels as f64, entity_class, attr_name, o))
}
