//! The soundness contract: every observed per-operator counter must lie
//! inside its static interval. Violations are *analyzer* bugs (or a
//! stats/plan mismatch), never acceptable noise — the executor's debug
//! builds assert on them.

use oorq_lint::{LintCode, LintReport};

use crate::bounds::Analysis;

/// One executed operator's exclusive counters, keyed to the PT by
/// pre-order node id (`OpMeta::pt_node`).
#[derive(Debug, Clone)]
pub struct ObservedOp {
    /// Pre-order id of the PT node the operator lowered from.
    pub pt_node: usize,
    /// Operator label (for diagnostics only).
    pub label: String,
    /// Rows emitted.
    pub rows_out: u64,
    /// Data pages read from disk.
    pub page_reads: u64,
    /// Data pages found in the buffer.
    pub page_hits: u64,
    /// Index pages accessed.
    pub index_reads: u64,
    /// Temporary pages written.
    pub page_writes: u64,
}

/// One executed fixpoint's iteration count, keyed by pre-order node id.
#[derive(Debug, Clone)]
pub struct ObservedFix {
    /// Pre-order id of the `Fix` PT node.
    pub pt_node: usize,
    /// Observed semi-naive pass count of one open (delta-curve length
    /// minus the seed entry).
    pub iterations: u64,
}

/// Check a run's observed counters against the static bounds. An empty
/// (clean) report certifies the run; `AB001`–`AB003` errors flag escaped
/// counters, `AB007` flags nodes the analysis could not bound.
pub fn check_observed(
    analysis: &Analysis,
    ops: &[ObservedOp],
    fixes: &[ObservedFix],
) -> LintReport {
    let mut report = LintReport::new();
    for n in &analysis.nodes {
        let degenerate = n.rows_total.is_degenerate()
            || n.data().is_degenerate()
            || n.index().is_degenerate()
            || n.writes().is_degenerate()
            || n.passes.is_some_and(|p| p.is_degenerate());
        if degenerate {
            report.push(
                LintCode::DegenerateInterval,
                format!("node {} ({})", n.pt_node, n.label),
                "static bound is degenerate; observed counters cannot be certified".to_string(),
            );
        }
    }
    for op in ops {
        let loc = format!("node {} ({})", op.pt_node, op.label);
        let Some(n) = analysis.node(op.pt_node) else {
            report.push(
                LintCode::DegenerateInterval,
                loc,
                "operator has no analyzed PT node; analysis and lowering diverged".to_string(),
            );
            continue;
        };
        if !n.lowered {
            report.push(
                LintCode::DegenerateInterval,
                loc,
                format!(
                    "operator executed but the analyzer marked node {} unlowered; \
                     analysis and lowering diverged",
                    n.pt_node
                ),
            );
            continue;
        }
        if !n.rows_total.contains_count(op.rows_out) {
            report.push(
                LintCode::BoundRowsViolated,
                loc.clone(),
                format!(
                    "observed rows_out = {} escapes static bound {}",
                    op.rows_out, n.rows_total
                ),
            );
        }
        let data = op.page_reads + op.page_hits;
        if !n.data().contains_count(data) {
            report.push(
                LintCode::BoundPagesViolated,
                loc.clone(),
                format!(
                    "observed page_reads+page_hits = {} escapes static bound {}",
                    data,
                    n.data()
                ),
            );
        }
        if !n.index().contains_count(op.index_reads) {
            report.push(
                LintCode::BoundPagesViolated,
                loc.clone(),
                format!(
                    "observed index_reads = {} escapes static bound {}",
                    op.index_reads,
                    n.index()
                ),
            );
        }
        if !n.writes().contains_count(op.page_writes) {
            report.push(
                LintCode::BoundPagesViolated,
                loc,
                format!(
                    "observed page_writes = {} escapes static bound {}",
                    op.page_writes,
                    n.writes()
                ),
            );
        }
    }
    for fx in fixes {
        let loc = format!("node {} (fixpoint)", fx.pt_node);
        let Some(passes) = analysis.node(fx.pt_node).and_then(|n| n.passes) else {
            report.push(
                LintCode::DegenerateInterval,
                loc,
                "fixpoint executed at a node the analyzer did not bound as a fixpoint".to_string(),
            );
            continue;
        };
        // The lower pass bound applies per open only when the fixpoint
        // runs at all; the observed curve always exists, so only the
        // upper bound is checked against each curve.
        if (fx.iterations as f64) > passes.hi {
            report.push(
                LintCode::BoundPassesViolated,
                loc,
                format!(
                    "observed {} semi-naive passes escape static bound {}",
                    fx.iterations, passes
                ),
            );
        }
    }
    report
}
