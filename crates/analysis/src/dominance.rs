//! Provable candidate pruning: when two plans differ by exactly one
//! *result-preserving* local change (an access-method or join-algorithm
//! toggle), their executions agree everywhere outside the toggled
//! subtree — so if the candidate subtree's cost *lower* bound strictly
//! exceeds the incumbent subtree's *upper* bound, the candidate is
//! provably worse and can be discarded without estimation error.

use std::collections::HashMap;

use oorq_pt::{type_of_column_expr, AccessMethod, JoinAlgo, Pt, PtEnv};
use oorq_query::Expr;
use oorq_schema::ResolvedType;
use oorq_storage::IndexId;

use crate::bounds::{resolve_index_join, resolve_index_select, Analysis};

/// If `a` and `b` differ by exactly one safe, result-preserving toggle,
/// return the pre-order id of the diverging node; otherwise `None`.
///
/// Recognized toggles:
/// - `Sel` access method (sequential vs. index), provided a resolving
///   index probe targets a *non-collection* attribute — a collection
///   index lists an oid once per member, which would change the emitted
///   multiset versus the scan's single existential emission;
/// - `EJ` join algorithm (nested loop vs. index join), provided a
///   resolving index join probes a non-collection attribute *and* the
///   outer expression is non-collection-typed — either collection would
///   duplicate pairs.
///
/// The toggle may sit inside a fixpoint body: each semi-naive pass fully
/// drains the recursive leg before the next delta forms, so per-pass
/// delta *sets* — and hence pass counts — are order-independent.
pub fn equivalent_local_change(env: &PtEnv, a: &Pt, b: &Pt) -> Option<usize> {
    let mut state = Diff {
        env,
        next_id: 0,
        diverged: None,
    };
    if state.walk(a, b) {
        state.diverged
    } else {
        None
    }
}

struct Diff<'a, 'b> {
    env: &'b PtEnv<'a>,
    next_id: usize,
    diverged: Option<usize>,
}

impl Diff<'_, '_> {
    fn walk(&mut self, a: &Pt, b: &Pt) -> bool {
        let my_id = self.next_id;
        self.next_id += 1;
        match (a, b) {
            (
                Pt::Sel {
                    pred: p1,
                    method: m1,
                    input: i1,
                },
                Pt::Sel {
                    pred: p2,
                    method: m2,
                    input: i2,
                },
            ) if p1 == p2 => {
                if m1 == m2 {
                    return self.walk(i1, i2);
                }
                if self.diverged.is_some() || i1 != i2 {
                    return false;
                }
                if !self.sel_toggle_safe(p1, m1, i1) || !self.sel_toggle_safe(p2, m2, i2) {
                    return false;
                }
                self.diverged = Some(my_id);
                self.next_id += i1.size();
                true
            }
            (
                Pt::EJ {
                    pred: p1,
                    algo: a1,
                    left: l1,
                    right: r1,
                },
                Pt::EJ {
                    pred: p2,
                    algo: a2,
                    left: l2,
                    right: r2,
                },
            ) if p1 == p2 => {
                if a1 == a2 {
                    return self.walk(l1, l2) && self.walk(r1, r2);
                }
                if self.diverged.is_some() || l1 != l2 || r1 != r2 {
                    return false;
                }
                if !self.ej_toggle_safe(p1, a1, l1, r1) || !self.ej_toggle_safe(p2, a2, l2, r2) {
                    return false;
                }
                self.diverged = Some(my_id);
                self.next_id += l1.size() + r1.size();
                true
            }
            _ => {
                if !same_shape_here(a, b) {
                    return false;
                }
                let (ca, cb) = (a.children(), b.children());
                if ca.len() != cb.len() {
                    return false;
                }
                ca.iter().zip(cb.iter()).all(|(x, y)| self.walk(x, y))
            }
        }
    }

    /// A toggled `Sel` side is safe when it lowers to a plain filter
    /// (trivially equivalent to the scan) or to an index probe on a
    /// non-collection attribute.
    fn sel_toggle_safe(&self, pred: &Expr, method: &AccessMethod, input: &Pt) -> bool {
        let AccessMethod::Index(idx) = method else {
            return true;
        };
        match resolve_index_select(self.env.catalog, self.env.physical, *idx, pred, input) {
            None => true,
            Some((_, ec, attr_name)) => self.attr_non_collection(*idx, ec, &attr_name),
        }
    }

    /// A toggled `EJ` side is safe when it lowers to a nested loop or to
    /// an index join whose indexed attribute and outer expression are
    /// both non-collection.
    fn ej_toggle_safe(&self, pred: &Expr, algo: &JoinAlgo, left: &Pt, right: &Pt) -> bool {
        let JoinAlgo::IndexJoin(idx) = algo else {
            return true;
        };
        match resolve_index_join(self.env.catalog, self.env.physical, *idx, pred, right) {
            None => true,
            Some((_, ec, attr_name, outer)) => {
                if !self.attr_non_collection(*idx, ec, &attr_name) {
                    return false;
                }
                let Ok(cols) = left.output_columns(self.env) else {
                    return false;
                };
                let cenv: HashMap<String, ResolvedType> = cols.into_iter().collect();
                match type_of_column_expr(self.env.catalog, &outer, &cenv) {
                    Ok(ty) => !ty.is_collection(),
                    Err(_) => false,
                }
            }
        }
    }

    fn attr_non_collection(&self, _idx: IndexId, class: oorq_schema::ClassId, name: &str) -> bool {
        match self.env.catalog.attr(class, name) {
            Some((_, attr)) => !attr.ty.is_collection(),
            None => false,
        }
    }
}

/// Structural equality of two nodes' own (non-child) content.
fn same_shape_here(a: &Pt, b: &Pt) -> bool {
    match (a, b) {
        (Pt::Entity { id: i1, var: v1 }, Pt::Entity { id: i2, var: v2 }) => i1 == i2 && v1 == v2,
        (Pt::Temp { name: n1, var: v1 }, Pt::Temp { name: n2, var: v2 }) => n1 == n2 && v1 == v2,
        (
            Pt::Sel {
                pred: p1,
                method: m1,
                ..
            },
            Pt::Sel {
                pred: p2,
                method: m2,
                ..
            },
        ) => p1 == p2 && m1 == m2,
        (Pt::Proj { cols: c1, .. }, Pt::Proj { cols: c2, .. }) => c1 == c2,
        (
            Pt::IJ {
                on: o1,
                step: s1,
                out: u1,
                ..
            },
            Pt::IJ {
                on: o2,
                step: s2,
                out: u2,
                ..
            },
        ) => o1 == o2 && s1 == s2 && u1 == u2,
        (
            Pt::PIJ {
                index: i1,
                on: o1,
                outs: u1,
                ..
            },
            Pt::PIJ {
                index: i2,
                on: o2,
                outs: u2,
                ..
            },
        ) => i1 == i2 && o1 == o2 && u1 == u2,
        (
            Pt::EJ {
                pred: p1, algo: a1, ..
            },
            Pt::EJ {
                pred: p2, algo: a2, ..
            },
        ) => p1 == p2 && a1 == a2,
        (Pt::Union { .. }, Pt::Union { .. }) => true,
        (Pt::Fix { temp: t1, .. }, Pt::Fix { temp: t2, .. }) => t1 == t2,
        _ => false,
    }
}

/// Is the candidate *provably* worse than the incumbent at the diverged
/// subtree? Returns `(candidate subtree cost lower bound, incumbent
/// subtree cost upper bound)` when the intervals do not overlap —
/// outside the subtree the two plans run identically, so the subtree
/// comparison decides the whole plan.
pub fn proven_worse(
    candidate: &Analysis,
    incumbent: &Analysis,
    diverged: usize,
) -> Option<(f64, f64)> {
    let c = candidate.subtree_cost(diverged)?;
    let i = incumbent.subtree_cost(diverged)?;
    if c.is_degenerate() || i.is_degenerate() {
        return None;
    }
    if c.strictly_above(&i) {
        Some((c.lo, i.hi))
    } else {
        None
    }
}
