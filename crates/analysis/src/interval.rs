//! The interval abstract domain: non-negative `[lo, hi]` ranges over
//! `f64` with *directed rounding* — every arithmetic operation bumps the
//! lower endpoint one ulp down and the upper endpoint one ulp up, so a
//! chain of float operations can never round a true bound out of the
//! interval.
//!
//! Invariants (enforced by [`Interval::make`]):
//! - `0.0 <= lo < ∞` (a lower bound of `∞` is meaningless for counters
//!   and collapses to `0`, mirroring the cost model's CM001 clamp);
//! - `0.0 <= hi <= ∞` (NaN — unknown — widens to `∞`);
//! - `lo <= hi` (a violation downstream is reported as AB007, see
//!   [`crate::check`]).

use std::fmt;

use oorq_cost::{guard_hi, guard_lo};

/// Bump toward `+∞` by one ulp (identity on NaN and `+∞`).
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        x
    } else if x == 0.0 {
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// Bump toward `-∞` by one ulp (identity on NaN and `-∞`).
pub fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// A non-negative interval `[lo, hi]`, the abstract value of every
/// counter (rows, page accesses, passes) and cost figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Sound lower bound (finite, non-negative).
    pub lo: f64,
    /// Sound upper bound (`∞` = unbounded).
    pub hi: f64,
}

impl Interval {
    /// Build an interval, guarding both endpoints (NaN/∞/negative lower
    /// endpoints collapse to `0`, NaN upper endpoints widen to `∞`).
    pub fn make(lo: f64, hi: f64) -> Interval {
        Interval {
            lo: guard_lo(lo),
            hi: guard_hi(hi),
        }
    }

    /// The exact singleton `[x, x]`.
    pub fn exact(x: f64) -> Interval {
        Interval::make(x, x)
    }

    /// The exact singleton of an integer counter.
    pub fn exact_u64(n: u64) -> Interval {
        Interval::exact(n as f64)
    }

    /// `[0, 0]`.
    pub fn zero() -> Interval {
        Interval { lo: 0.0, hi: 0.0 }
    }

    /// `[0, ∞]`: no information.
    pub fn top() -> Interval {
        Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// `[0, hi]`.
    pub fn up_to(hi: f64) -> Interval {
        Interval::make(0.0, hi)
    }

    /// Is `lo > hi` or an endpoint NaN? (Should be impossible through
    /// [`Interval::make`]; checked defensively and surfaced as AB007.)
    pub fn is_degenerate(&self) -> bool {
        self.lo.is_nan() || self.hi.is_nan() || self.lo > self.hi
    }

    /// Does the interval contain an observed integer counter?
    pub fn contains_count(&self, n: u64) -> bool {
        let x = n as f64;
        x >= self.lo && x <= self.hi
    }

    /// Interval addition with directed rounding. (Not `std::ops::Add`:
    /// directed rounding breaks the algebraic laws callers expect of
    /// `+`, so the widening stays visible at call sites.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        Interval::make(next_down(self.lo + o.lo), next_up(self.hi + o.hi))
    }

    /// Interval multiplication with directed rounding. Both operands are
    /// non-negative, so endpoint products suffice; `0 · ∞` resolves to
    /// `0` (the supremum over *finite* values of an unbounded factor
    /// times zero is zero), not IEEE NaN.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        let lo = next_down(self.lo * o.lo);
        let hi = if self.hi == 0.0 || o.hi == 0.0 {
            0.0
        } else {
            next_up(self.hi * o.hi)
        };
        Interval::make(lo, hi)
    }

    /// Multiply by an exact non-negative scalar.
    pub fn scale(self, k: f64) -> Interval {
        self.mul(Interval::exact(k))
    }

    /// Convex hull (join): the smallest interval containing both.
    pub fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersect with a second *valid* bound for the same quantity: both
    /// are sound, so the tighter envelope is too.
    pub fn refine(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Cap the upper bound (a second, independent upper bound).
    pub fn cap_hi(self, hi: f64) -> Interval {
        Interval {
            lo: self.lo.min(guard_hi(hi)),
            hi: self.hi.min(guard_hi(hi)),
        }
    }

    /// Does `self` lie strictly above `o` (no overlap)? `true` proves
    /// every concrete value of `self` exceeds every value of `o`.
    pub fn strictly_above(&self, o: &Interval) -> bool {
        self.lo > o.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |x: f64, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if x == f64::INFINITY {
                write!(f, "inf")
            } else if x.fract() == 0.0 && x.abs() < 1e15 {
                write!(f, "{}", x as i64)
            } else {
                write!(f, "{x:.2}")
            }
        };
        write!(f, "[")?;
        side(self.lo, f)?;
        write!(f, ", ")?;
        side(self.hi, f)?;
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_bumps_are_directed() {
        assert!(next_up(1.0) > 1.0);
        assert!(next_down(1.0) < 1.0);
        assert!(next_up(0.0) > 0.0);
        assert!(next_down(0.0) < 0.0);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert!(next_up(f64::NAN).is_nan());
    }

    #[test]
    fn make_guards_endpoints() {
        let i = Interval::make(f64::NAN, f64::NAN);
        assert_eq!(i.lo, 0.0);
        assert_eq!(i.hi, f64::INFINITY);
        let j = Interval::make(-3.0, -1.0);
        assert_eq!(j.lo, 0.0);
        assert_eq!(j.hi, 0.0);
        assert!(!j.is_degenerate());
    }

    #[test]
    fn zero_times_unbounded_is_zero() {
        let z = Interval::zero();
        let t = Interval::top();
        assert_eq!(z.mul(t).hi, 0.0);
        assert_eq!(t.mul(z).hi, 0.0);
    }

    #[test]
    fn add_mul_contain_true_value() {
        let a = Interval::exact(0.1);
        let b = Interval::exact(0.2);
        let s = a.add(b);
        assert!(s.lo <= 0.3 && 0.3 <= s.hi);
        let p = a.mul(b);
        assert!(p.lo <= 0.02 && 0.02 <= p.hi);
    }

    /// The endpoint guards are the *same* functions the cost model's
    /// CM002/CM003 clamps use (`oorq_cost::guard_lo`/`guard_hi`), so
    /// the point estimator and the interval domain agree on what
    /// degenerate inputs mean.
    #[test]
    fn guards_shared_with_cost_model() {
        for x in [f64::NAN, f64::INFINITY, -7.0, 0.0, 3.5, 1e300] {
            let i = Interval::make(x, x);
            assert_eq!(i.lo, oorq_cost::guard_lo(x), "lo guard for {x}");
            assert_eq!(i.hi, oorq_cost::guard_hi(x), "hi guard for {x}");
        }
    }

    /// Monotonicity property: widening an operand can only widen (never
    /// narrow) the result of `add`/`mul`/`hull` — the soundness
    /// argument for propagating bounds through transfer functions.
    /// Driven by the in-repo deterministic PRNG over mixed magnitudes,
    /// zeros, and infinities.
    #[test]
    fn widening_inputs_never_narrows_outputs() {
        let mut rng = oorq_prng::Prng::new(0x1417_e5a1);
        let endpoint = |rng: &mut oorq_prng::Prng| -> f64 {
            match rng.below(8) {
                0 => 0.0,
                1 => f64::INFINITY,
                2 => rng.f64() * 1e-9,
                3 => rng.f64() * 1e12,
                _ => rng.f64() * 1e4,
            }
        };
        let iv = |rng: &mut oorq_prng::Prng| -> Interval {
            let (a, b) = (endpoint(rng), endpoint(rng));
            Interval::make(a.min(b), a.max(b))
        };
        let contains = |outer: &Interval, inner: &Interval| -> bool {
            outer.lo <= inner.lo && outer.hi >= inner.hi
        };
        for case in 0..2000 {
            let a = iv(&mut rng);
            let b = iv(&mut rng);
            // A strict widening of `a` (hull with a fresh interval).
            let wide = a.hull(iv(&mut rng));
            assert!(contains(&wide, &a), "hull must contain its operand");
            for (name, narrow, widened) in [
                ("add", a.add(b), wide.add(b)),
                ("mul", a.mul(b), wide.mul(b)),
                ("hull", a.hull(b), wide.hull(b)),
            ] {
                assert!(
                    contains(&widened, &narrow),
                    "case {case}: {name} narrowed under widening: \
                     {a} -> {wide}, other {b}: {narrow} vs {widened}"
                );
            }
            // Directed rounding keeps the true value inside: check
            // against exact integer arithmetic on small cases.
            let m = (rng.below(100) as f64, rng.below(100) as f64);
            let (x, y) = (Interval::exact(m.0), Interval::exact(m.1));
            assert!(x.add(y).contains_count((m.0 + m.1) as u64));
            assert!(x.mul(y).contains_count((m.0 * m.1) as u64));
        }
    }

    #[test]
    fn containment_and_dominance() {
        let i = Interval::make(2.0, 5.0);
        assert!(i.contains_count(2));
        assert!(i.contains_count(5));
        assert!(!i.contains_count(6));
        assert!(Interval::make(6.0, 9.0).strictly_above(&i));
        assert!(!Interval::make(5.0, 9.0).strictly_above(&i));
    }
}
