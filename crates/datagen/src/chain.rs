//! Synthetic join-chain databases for optimizer-scaling experiments.
//!
//! A schema of `k` stored relations `R0..R(k-1)`, each `[a: int, b:
//! int]`, joined pairwise `Ri.b = R(i+1).a` — the classic workload for
//! comparing join-enumeration strategies (exhaustive vs DP vs greedy vs
//! randomized), as in \[IC90\] and \[KZ88\].

use std::sync::Arc;

use oorq_prng::Prng;
use oorq_query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq_schema::{Catalog, Field, RelationDef, SchemaBuilder, TypeExpr};
use oorq_storage::{Database, StorageConfig, Value};

/// Configuration of the chain generator.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Number of relations in the chain.
    pub relations: usize,
    /// Rows per relation.
    pub rows: u32,
    /// Domain of the join columns (smaller domain = larger joins).
    pub domain: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            relations: 4,
            rows: 200,
            domain: 50,
            seed: 11,
        }
    }
}

/// A generated chain database.
pub struct ChainDb {
    /// The store.
    pub db: Database,
    /// Relation names, in chain order.
    pub names: Vec<String>,
    /// The configuration used.
    pub config: ChainConfig,
}

/// Like [`ChainDb::generate`] but with *skewed* relation sizes
/// (`rows * 2^i` rows in relation `Ri`), so join order genuinely
/// matters and greedy/exhaustive strategies can diverge.
pub fn generate_skewed(config: ChainConfig) -> ChainDb {
    let catalog = Arc::new(chain_catalog(config.relations));
    let mut db = Database::new(Arc::clone(&catalog), StorageConfig::default());
    let mut rng = Prng::new(config.seed);
    let mut names = Vec::new();
    for i in 0..config.relations {
        let name = format!("R{i}");
        let rel = catalog.relation_by_name(&name).expect("just built");
        let rows = config.rows << i.min(6);
        for _ in 0..rows {
            let a = rng.range_i64(0, config.domain);
            let b = rng.range_i64(0, config.domain);
            db.insert_row(rel, vec![Value::Int(a), Value::Int(b)])
                .expect("insert");
        }
        names.push(name);
    }
    ChainDb { db, names, config }
}

/// Build the chain catalog for `k` relations.
pub fn chain_catalog(k: usize) -> Catalog {
    let mut b = SchemaBuilder::new();
    for i in 0..k {
        b = b.relation(RelationDef::new(
            format!("R{i}"),
            TypeExpr::Tuple(vec![
                Field::new("a", TypeExpr::int()),
                Field::new("b", TypeExpr::int()),
            ]),
        ));
    }
    b.build().expect("chain schema must validate")
}

impl ChainDb {
    /// Generate a chain database.
    pub fn generate(config: ChainConfig) -> Self {
        let catalog = Arc::new(chain_catalog(config.relations));
        let mut db = Database::new(Arc::clone(&catalog), StorageConfig::default());
        let mut rng = Prng::new(config.seed);
        let mut names = Vec::new();
        for i in 0..config.relations {
            let name = format!("R{i}");
            let rel = catalog.relation_by_name(&name).expect("just built");
            for _ in 0..config.rows {
                let a = rng.range_i64(0, config.domain);
                let b = rng.range_i64(0, config.domain);
                db.insert_row(rel, vec![Value::Int(a), Value::Int(b)])
                    .expect("insert");
            }
            names.push(name);
        }
        ChainDb { db, names, config }
    }

    /// The k-way chain-join query:
    /// `select R0.a, R(k-1).b where Ri.b = R(i+1).a, R0.a < limit`.
    pub fn chain_query(&self, limit: i64) -> QueryGraph {
        let catalog = self.db.catalog();
        let k = self.config.relations;
        let mut inputs = Vec::new();
        for i in 0..k {
            let rel = catalog
                .relation_by_name(&format!("R{i}"))
                .expect("chain schema");
            inputs.push(QArc::new(NameRef::Relation(rel), format!("r{i}")));
        }
        let mut pred = Expr::path("r0", &["a"]).lt(Expr::int(limit));
        for i in 0..k - 1 {
            pred = pred.and(
                Expr::path(format!("r{i}"), &["b"]).eq(Expr::path(format!("r{}", i + 1), &["a"])),
            );
        }
        let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
        q.add_spj(
            NameRef::Derived("Answer".into()),
            SpjNode {
                inputs,
                pred,
                out_proj: vec![
                    ("first".into(), Expr::path("r0", &["a"])),
                    ("last".into(), Expr::path(format!("r{}", k - 1), &["b"])),
                ],
            },
        );
        q
    }
}

impl ChainDb {
    /// The chain-join query with the selective bound on the *last*
    /// relation: a syntactic (query-order) translator joins the
    /// unfiltered head relations first and drags huge intermediates down
    /// the chain, while a cost-based optimizer starts from the filtered
    /// tail.
    pub fn selective_tail_query(&self, limit: i64) -> QueryGraph {
        let catalog = self.db.catalog();
        let k = self.config.relations;
        let mut inputs = Vec::new();
        for i in 0..k {
            let rel = catalog
                .relation_by_name(&format!("R{i}"))
                .expect("chain schema");
            inputs.push(QArc::new(NameRef::Relation(rel), format!("r{i}")));
        }
        let mut pred = Expr::path(format!("r{}", k - 1), &["b"]).lt(Expr::int(limit));
        for i in 0..k - 1 {
            pred = pred.and(
                Expr::path(format!("r{i}"), &["b"]).eq(Expr::path(format!("r{}", i + 1), &["a"])),
            );
        }
        let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
        q.add_spj(
            NameRef::Derived("Answer".into()),
            SpjNode {
                inputs,
                pred,
                out_proj: vec![("first".into(), Expr::path("r0", &["a"]))],
            },
        );
        q
    }

    /// A star query: `R0` joins every other relation on `R0.a = Ri.a`,
    /// with a bound on `R0.b`. Join order matters here (the satellites
    /// have different sizes under [`generate_skewed`]).
    pub fn star_query(&self, limit: i64) -> QueryGraph {
        let catalog = self.db.catalog();
        let k = self.config.relations;
        // Satellites listed largest-first, so a non-optimizing
        // (syntactic) translator joins the big ones early.
        let mut order: Vec<usize> = (1..k).rev().collect();
        order.insert(0, 0);
        let mut inputs = Vec::new();
        for i in order {
            let rel = catalog
                .relation_by_name(&format!("R{i}"))
                .expect("chain schema");
            inputs.push(QArc::new(NameRef::Relation(rel), format!("r{i}")));
        }
        // The selective bound sits on the *last-listed* (smallest)
        // satellite: an optimizer joins it first, a syntactic translator
        // leaves it for the end.
        let mut pred = Expr::path("r1", &["b"]).lt(Expr::int(limit));
        for i in 1..k {
            pred = pred.and(Expr::path("r0", &["a"]).eq(Expr::path(format!("r{i}"), &["a"])));
        }
        let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
        q.add_spj(
            NameRef::Derived("Answer".into()),
            SpjNode {
                inputs,
                pred,
                out_proj: vec![("hub".into(), Expr::path("r0", &["a"]))],
            },
        );
        q
    }
}

/// Build the transitive-closure schema: a stored `Edge [a, b]` relation
/// plus the recursive `Path` view declaration over it.
pub fn closure_catalog() -> Catalog {
    SchemaBuilder::new()
        .relation(RelationDef::new(
            "Edge",
            TypeExpr::Tuple(vec![
                Field::new("a", TypeExpr::int()),
                Field::new("b", TypeExpr::int()),
            ]),
        ))
        .view(RelationDef::new(
            "Path",
            TypeExpr::Tuple(vec![
                Field::new("a", TypeExpr::int()),
                Field::new("b", TypeExpr::int()),
            ]),
        ))
        .build()
        .expect("closure schema must validate")
}

/// Configuration of the transitive-closure generator.
#[derive(Debug, Clone)]
pub struct ClosureConfig {
    /// Number of chain nodes; edges are `(i, i+1)` for `i <
    /// nodes-1`, so the closure holds `nodes·(nodes-1)/2` paths and
    /// the fixpoint runs `nodes-1` semi-naive passes. Scaling `nodes`
    /// scales the accumulator footprint quadratically — the knob the
    /// spill harness sweeps across the memory-budget cliff.
    pub nodes: u32,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig { nodes: 32 }
    }
}

/// A generated linear-chain closure database (deterministic; no
/// randomness — the closure cardinality is exact by construction).
pub struct ClosureDb {
    /// The store.
    pub db: Database,
    /// The configuration used.
    pub config: ClosureConfig,
}

impl ClosureDb {
    /// Generate the chain-of-`nodes` edge relation.
    pub fn generate(config: ClosureConfig) -> Self {
        let catalog = Arc::new(closure_catalog());
        let mut db = Database::new(Arc::clone(&catalog), StorageConfig::default());
        let edge = catalog.relation_by_name("Edge").expect("just built");
        for i in 0..config.nodes.saturating_sub(1) {
            db.insert_row(edge, vec![Value::Int(i as i64), Value::Int(i as i64 + 1)])
                .expect("insert edge");
        }
        ClosureDb { db, config }
    }

    /// Exact closure cardinality: every `(i, j)` with `i < j`.
    pub fn closure_rows(&self) -> u64 {
        let n = self.config.nodes as u64;
        n * n.saturating_sub(1) / 2
    }

    /// The full transitive-closure query: `Path = Edge ∪ (Path ⋈
    /// Edge on Path.b = Edge.a)`, answering every path endpoint pair.
    pub fn closure_query(&self) -> QueryGraph {
        let catalog = self.db.catalog();
        let edge = catalog.relation_by_name("Edge").expect("closure schema");
        let path = catalog.relation_by_name("Path").expect("closure schema");
        let mut reg = ViewRegistry::new();
        reg.define(
            path,
            vec![
                SpjNode {
                    inputs: vec![QArc::new(NameRef::Relation(edge), "e")],
                    pred: Expr::True,
                    out_proj: vec![
                        ("a".into(), Expr::path("e", &["a"])),
                        ("b".into(), Expr::path("e", &["b"])),
                    ],
                },
                SpjNode {
                    inputs: vec![
                        QArc::new(NameRef::Relation(path), "p"),
                        QArc::new(NameRef::Relation(edge), "e"),
                    ],
                    pred: Expr::path("p", &["b"]).eq(Expr::path("e", &["a"])),
                    out_proj: vec![
                        ("a".into(), Expr::path("p", &["a"])),
                        ("b".into(), Expr::path("e", &["b"])),
                    ],
                },
            ],
        );
        let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
        q.add_spj(
            NameRef::Derived("Answer".into()),
            SpjNode {
                inputs: vec![QArc::new(NameRef::Relation(path), "t")],
                pred: Expr::True,
                out_proj: vec![
                    ("a".into(), Expr::path("t", &["a"])),
                    ("b".into(), Expr::path("t", &["b"])),
                ],
            },
        );
        reg.expand(&mut q, catalog).expect("Path view must expand");
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_star_generates_and_validates() {
        let c = generate_skewed(ChainConfig {
            relations: 3,
            rows: 10,
            ..Default::default()
        });
        let q = c.star_query(5);
        q.validate(c.db.catalog()).unwrap();
        let r2 = c.db.catalog().relation_by_name("R2").unwrap();
        let e = c.db.physical().entities_of_relation(r2)[0];
        assert_eq!(c.db.entity_len(e), 40, "skew doubles each relation");
    }

    #[test]
    fn closure_db_generates_and_query_validates() {
        let c = ClosureDb::generate(ClosureConfig { nodes: 8 });
        assert_eq!(c.closure_rows(), 28);
        let q = c.closure_query();
        q.validate(c.db.catalog()).unwrap();
        let edge = c.db.catalog().relation_by_name("Edge").unwrap();
        let e = c.db.physical().entities_of_relation(edge)[0];
        assert_eq!(c.db.entity_len(e), 7);
    }

    #[test]
    fn chain_db_generates_and_query_validates() {
        let c = ChainDb::generate(ChainConfig {
            relations: 3,
            rows: 20,
            ..Default::default()
        });
        assert_eq!(c.names.len(), 3);
        let q = c.chain_query(10);
        q.validate(c.db.catalog()).unwrap();
        let rel = c.db.catalog().relation_by_name("R1").unwrap();
        let e = c.db.physical().entities_of_relation(rel)[0];
        assert_eq!(c.db.entity_len(e), 20);
    }
}
