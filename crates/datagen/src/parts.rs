//! Synthetic engineering (parts/sub-parts) databases — the paper's §1
//! motivation: "execute a method for each subpart (recursively) connected
//! to a given part object" (cf. the engineering-database benchmark of
//! \[CS90\]).

use std::sync::Arc;

use oorq_prng::Prng;
use oorq_schema::{
    AttrId, AttributeDef, Catalog, ClassDef, ClassId, Field, RelationDef, SchemaBuilder, TypeExpr,
};
use oorq_storage::{Database, Oid, StorageConfig, Value};

/// Build the engineering schema: a `Part` class with a recursive
/// `subparts` set, a `madeBy` scalar self-reference on assemblies'
/// primary supplier part, a computed `unit_test_cost` method, and a
/// `Contains` view declaration (the transitive sub-part relation).
pub fn parts_catalog() -> Catalog {
    SchemaBuilder::new()
        .class(
            ClassDef::new("Part")
                .attr(AttributeDef::stored("name", TypeExpr::text()))
                .attr(AttributeDef::stored("weight", TypeExpr::int()))
                .attr(AttributeDef::stored(
                    "subparts",
                    TypeExpr::set(TypeExpr::class("Part")),
                ))
                .attr(AttributeDef::stored("assembly", TypeExpr::class("Part")))
                .attr(AttributeDef::computed(
                    "unit_test_cost",
                    TypeExpr::int(),
                    5.0,
                )),
        )
        .view(RelationDef::new(
            "Contains",
            TypeExpr::Tuple(vec![
                Field::new("assembly", TypeExpr::class("Part")),
                Field::new("component", TypeExpr::class("Part")),
                Field::new("depth", TypeExpr::int()),
            ]),
        ))
        .build()
        .expect("parts schema must validate")
}

/// Configuration of the parts generator.
#[derive(Debug, Clone)]
pub struct PartsConfig {
    /// Number of root assemblies.
    pub roots: u32,
    /// Sub-parts per part (fan-out of the composition hierarchy).
    pub fanout: u32,
    /// Depth of the hierarchy below each root.
    pub depth: u32,
    /// Physical placement.
    pub clustered: bool,
    /// Buffer frames.
    pub buffer_frames: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartsConfig {
    fn default() -> Self {
        PartsConfig {
            roots: 4,
            fanout: 3,
            depth: 4,
            clustered: false,
            buffer_frames: 32,
            seed: 7,
        }
    }
}

/// A generated parts database.
pub struct PartsDb {
    /// The store.
    pub db: Database,
    /// `Part` class.
    pub part: ClassId,
    /// `subparts` attribute.
    pub subparts_attr: AttrId,
    /// `assembly` attribute (scalar self-reference: owning assembly).
    pub assembly_attr: AttrId,
    /// `name` attribute.
    pub name_attr: AttrId,
    /// Root assemblies.
    pub roots: Vec<Oid>,
    /// The configuration used.
    pub config: PartsConfig,
}

impl PartsDb {
    /// Generate a parts database.
    pub fn generate(catalog: Arc<Catalog>, config: PartsConfig) -> Self {
        let mut rng = Prng::new(config.seed);
        let mut db = Database::new(
            Arc::clone(&catalog),
            StorageConfig {
                buffer_frames: config.buffer_frames,
                ..Default::default()
            },
        );
        let part = catalog.class_by_name("Part").expect("parts schema");
        let (name_attr, _) = catalog.attr(part, "name").expect("name");
        let (subparts_attr, _) = catalog.attr(part, "subparts").expect("subparts");
        let (assembly_attr, _) = catalog.attr(part, "assembly").expect("assembly");

        let mut roots = Vec::new();
        for r in 0..config.roots {
            let root = Self::grow(
                &mut db,
                part,
                assembly_attr,
                &mut rng,
                &format!("asm{r}"),
                config.fanout,
                config.depth,
            );
            roots.push(root);
        }
        if !config.clustered {
            let e = db.physical().entities_of_class(part)[0];
            db.shuffle_entity(e, config.seed ^ 0xa55e);
        } else {
            let e = db.physical().entities_of_class(part)[0];
            db.physical_mut().set_clustered(e, subparts_attr);
        }
        PartsDb {
            db,
            part,
            subparts_attr,
            assembly_attr,
            name_attr,
            roots,
            config,
        }
    }

    /// Recursively create a part with its sub-tree (children first, so a
    /// clustered read order visits sub-parts near their owner).
    fn grow(
        db: &mut Database,
        part: ClassId,
        assembly_attr: AttrId,
        rng: &mut Prng,
        name: &str,
        fanout: u32,
        depth: u32,
    ) -> Oid {
        let mut children = Vec::new();
        if depth > 0 {
            for i in 0..fanout {
                let child = Self::grow(
                    db,
                    part,
                    assembly_attr,
                    rng,
                    &format!("{name}.{i}"),
                    fanout,
                    depth - 1,
                );
                children.push(child);
            }
        }
        let weight = rng.range_i64(1, 100);
        let me = db
            .insert_object(
                part,
                vec![
                    Value::text(name),
                    Value::Int(weight),
                    Value::Set(children.iter().copied().map(Value::Oid).collect()),
                    Value::Null, // assembly wired below
                ],
            )
            .expect("insert part");
        for c in &children {
            db.set_attr(*c, assembly_attr, Value::Oid(me))
                .expect("wire assembly");
        }
        me
    }

    /// Total number of parts.
    pub fn part_count(&self) -> u32 {
        self.db.object_count(self.part)
    }

    /// The `Contains` view declaration.
    pub fn contains_view(&self) -> oorq_schema::RelationId {
        self.db
            .catalog()
            .relation_by_name("Contains")
            .expect("parts schema")
    }
}
