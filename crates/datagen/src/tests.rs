//! Generator sanity tests.

use std::sync::Arc;

use oorq_query::paper::music_catalog;
use oorq_storage::{DbStats, Value};

use crate::*;

#[test]
fn music_db_respects_configuration() {
    let cat = Arc::new(music_catalog());
    let cfg = MusicConfig {
        chains: 3,
        chain_len: 5,
        works_per_composer: 2,
        instruments_per_work: 2,
        harpsichord_fraction: 0.5,
        ..Default::default()
    };
    let m = MusicDb::generate(Arc::clone(&cat), cfg);
    assert_eq!(m.composer_count(), 15);
    assert_eq!(m.db.object_count(m.composition), 30);
    // Bach exists and is the tail of chain 0.
    let name = m.db.read_attr_raw(m.bach, m.name_attr).unwrap();
    assert_eq!(name, Value::text("Bach"));
    // Chain statistics: max depth = chain_len - 1.
    let stats = DbStats::collect(&m.db);
    let chain = stats.chain(m.composer, m.master_attr).unwrap();
    assert_eq!(chain.max, 4);
    // Works are wired with inverse authors.
    let (author_attr, _) = cat
        .attr(cat.class_by_name("Composition").unwrap(), "author")
        .unwrap();
    let works = m.db.read_attr_raw(m.bach, m.works_attr).unwrap();
    for w in works.members() {
        let a =
            m.db.read_attr_raw(w.as_oid().unwrap(), author_attr)
                .unwrap();
        assert_eq!(a, Value::Oid(m.bach));
    }
}

#[test]
fn music_generation_is_deterministic() {
    let cat = Arc::new(music_catalog());
    let a = MusicDb::generate(Arc::clone(&cat), MusicConfig::default());
    let b = MusicDb::generate(Arc::clone(&cat), MusicConfig::default());
    let ea = a.db.physical().entities_of_class(a.composition)[0];
    let eb = b.db.physical().entities_of_class(b.composition)[0];
    let ra: Vec<_> = a.db.scan_raw(ea).into_iter().map(|r| r.values).collect();
    let rb: Vec<_> = b.db.scan_raw(eb).into_iter().map(|r| r.values).collect();
    assert_eq!(ra, rb);
}

#[test]
fn harpsichord_fraction_controlled() {
    let cat = Arc::new(music_catalog());
    let m = MusicDb::generate(
        Arc::clone(&cat),
        MusicConfig {
            chains: 10,
            chain_len: 10,
            harpsichord_fraction: 0.0,
            ..Default::default()
        },
    );
    // Nobody uses a harpsichord.
    let comp_e = m.db.physical().entities_of_class(m.composition)[0];
    for row in m.db.scan_raw(comp_e) {
        let insts = &row.values[m.instruments_attr.0 as usize];
        assert!(!insts.members().contains(&Value::Oid(m.instruments[0])));
    }
}

#[test]
fn parts_db_has_expected_shape() {
    let cat = Arc::new(parts_catalog());
    let cfg = PartsConfig {
        roots: 2,
        fanout: 2,
        depth: 3,
        ..Default::default()
    };
    let p = PartsDb::generate(Arc::clone(&cat), cfg);
    // Each root tree has 1 + 2 + 4 + 8 = 15 parts.
    assert_eq!(p.part_count(), 30);
    assert_eq!(p.roots.len(), 2);
    // Roots have fanout children; leaves have none.
    let subs = p.db.read_attr_raw(p.roots[0], p.subparts_attr).unwrap();
    assert_eq!(subs.members().len(), 2);
    // Assembly chain statistics: depth equals the configured depth.
    let stats = DbStats::collect(&p.db);
    let chain = stats.chain(p.part, p.assembly_attr).unwrap();
    assert_eq!(chain.max, 3);
}
