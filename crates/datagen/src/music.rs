//! Synthetic music databases over the Figure 1 schema.
//!
//! The generator controls exactly the statistics the optimizer's
//! decisions depend on: the number and length of master chains (fixpoint
//! iteration count), the works/instruments fan-outs (path-expression
//! cost), the harpsichord selectivity (filter selectivity), and the
//! physical placement (clustered or scattered).

use std::sync::Arc;

use oorq_prng::Prng;
use oorq_schema::{AttrId, Catalog, ClassId, ViewKind};
use oorq_storage::{Database, Oid, StorageConfig, Value};

/// Configuration of the music database generator.
#[derive(Debug, Clone)]
pub struct MusicConfig {
    /// Number of independent master chains.
    pub chains: u32,
    /// Length of each chain (composers per chain); the chain head has a
    /// null `master`.
    pub chain_len: u32,
    /// Works per composer.
    pub works_per_composer: u32,
    /// Instruments per work.
    pub instruments_per_work: u32,
    /// Size of the instrument pool (includes `harpsichord` and `flute`).
    pub instrument_pool: u32,
    /// Fraction of composers whose works include a harpsichord.
    pub harpsichord_fraction: f64,
    /// Physical placement: `true` clusters compositions/instrument refs
    /// with their owners (insertion order), `false` scatters them.
    pub clustered: bool,
    /// Buffer frames of the store.
    pub buffer_frames: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig {
            chains: 8,
            chain_len: 8,
            works_per_composer: 3,
            instruments_per_work: 2,
            instrument_pool: 12,
            harpsichord_fraction: 0.25,
            clustered: false,
            buffer_frames: 32,
            seed: 42,
        }
    }
}

/// A generated music database with the ids needed by queries and tests.
pub struct MusicDb {
    /// The store.
    pub db: Database,
    /// Class ids.
    pub composer: ClassId,
    /// `Composition` class.
    pub composition: ClassId,
    /// `Instrument` class.
    pub instrument: ClassId,
    /// Attribute ids on `Composer`.
    pub master_attr: AttrId,
    /// `works` attribute.
    pub works_attr: AttrId,
    /// `name` attribute (inherited from `Person`).
    pub name_attr: AttrId,
    /// `instruments` attribute on `Composition`.
    pub instruments_attr: AttrId,
    /// The instrument pool (index 0 = harpsichord, 1 = flute).
    pub instruments: Vec<Oid>,
    /// The composer named `Bach` (tail of the first chain).
    pub bach: Oid,
    /// All composers in creation order.
    pub composers: Vec<Oid>,
    /// The generator configuration used.
    pub config: MusicConfig,
}

impl MusicDb {
    /// Generate a database per the configuration, over the given catalog
    /// (use [`oorq_query::paper::music_catalog`]).
    pub fn generate(catalog: Arc<Catalog>, config: MusicConfig) -> Self {
        let mut rng = Prng::new(config.seed);
        let mut db = Database::new(
            Arc::clone(&catalog),
            StorageConfig {
                buffer_frames: config.buffer_frames,
                ..Default::default()
            },
        );
        let composer = catalog.class_by_name("Composer").expect("music schema");
        let composition = catalog.class_by_name("Composition").expect("music schema");
        let instrument = catalog.class_by_name("Instrument").expect("music schema");
        let (name_attr, _) = catalog.attr(composer, "name").expect("name");
        let (master_attr, _) = catalog.attr(composer, "master").expect("master");
        let (works_attr, _) = catalog.attr(composer, "works").expect("works");
        let (instruments_attr, _) = catalog.attr(composition, "instruments").expect("instr");

        // Instrument pool; 0 = harpsichord, 1 = flute.
        let mut instruments = Vec::new();
        let pool = config.instrument_pool.max(2);
        for i in 0..pool {
            let name = match i {
                0 => "harpsichord".to_string(),
                1 => "flute".to_string(),
                n => format!("instrument{n}"),
            };
            instruments.push(
                db.insert_object(instrument, vec![Value::Text(name)])
                    .expect("insert"),
            );
        }

        // Composers in chains, each with works created right after them
        // (clustered placement by construction).
        let mut composers = Vec::new();
        let mut bach = None;
        for chain in 0..config.chains {
            let mut prev: Option<Oid> = None;
            for pos in 0..config.chain_len {
                let idx = chain * config.chain_len + pos;
                let is_bach = chain == 0 && pos == config.chain_len - 1;
                let name = if is_bach {
                    "Bach".to_string()
                } else {
                    format!("composer{idx}")
                };
                let uses_harpsichord = rng.chance(config.harpsichord_fraction);
                let mut works = Vec::new();
                for w in 0..config.works_per_composer {
                    let mut insts = Vec::new();
                    if uses_harpsichord && w == 0 {
                        insts.push(Value::Oid(instruments[0]));
                    }
                    while insts.len() < config.instruments_per_work as usize {
                        // Non-harpsichord fill (never index 0, so the
                        // harpsichord fraction is exactly controlled).
                        let k = rng.range_u32(1, pool) as usize;
                        let v = Value::Oid(instruments[k]);
                        if !insts.contains(&v) {
                            insts.push(v);
                        }
                    }
                    let title = format!("op{idx}-{w}");
                    let comp = db
                        .insert_object(
                            composition,
                            vec![
                                Value::Text(title),
                                Value::Null, // author set below
                                Value::Set(insts),
                            ],
                        )
                        .expect("insert composition");
                    works.push(comp);
                }
                let birth = 1600 + rng.range_i64(0, 200);
                let c = db
                    .insert_object(
                        composer,
                        vec![
                            Value::Text(name),
                            Value::Int(birth),
                            prev.map(Value::Oid).unwrap_or(Value::Null),
                            Value::Set(works.iter().copied().map(Value::Oid).collect()),
                        ],
                    )
                    .expect("insert composer");
                // Wire the inverse `author` attribute.
                let (author_attr, _) = catalog.attr(composition, "author").expect("author");
                for w in &works {
                    db.set_attr(*w, author_attr, Value::Oid(c))
                        .expect("set author");
                }
                if is_bach {
                    bach = Some(c);
                }
                composers.push(c);
                prev = Some(c);
            }
        }

        // The Play relation: each composer plays the instruments of his
        // own works (deterministic, derived from the data).
        let play = catalog.relation_by_name("Play").expect("music schema");
        for c in &composers {
            let (works_a, _) = catalog.attr(composer, "works").expect("works");
            let wv = db.read_attr_raw(*c, works_a).expect("read works");
            if let Some(Value::Oid(w)) = wv.members().first() {
                let iv = db
                    .read_attr_raw(*w, instruments_attr)
                    .expect("read instruments");
                if let Some(Value::Oid(i)) = iv.members().first() {
                    db.insert_row(play, vec![Value::Oid(*c), Value::Oid(*i)])
                        .expect("insert play");
                }
            }
        }

        // Physical placement.
        if config.clustered {
            let composer_e = db.physical().entities_of_class(composer)[0];
            let (works_attr_c, _) = catalog.attr(composer, "works").expect("works");
            db.physical_mut().set_clustered(composer_e, works_attr_c);
            let composition_e = db.physical().entities_of_class(composition)[0];
            db.physical_mut()
                .set_clustered(composition_e, instruments_attr);
        } else {
            let composition_e = db.physical().entities_of_class(composition)[0];
            let instrument_e = db.physical().entities_of_class(instrument)[0];
            db.shuffle_entity(composition_e, config.seed ^ 0x5eed);
            db.shuffle_entity(instrument_e, config.seed ^ 0xfeed);
        }

        MusicDb {
            db,
            composer,
            composition,
            instrument,
            master_attr,
            works_attr,
            name_attr,
            instruments_attr,
            instruments,
            bach: bach.expect("chains >= 1 and chain_len >= 1"),
            composers,
            config,
        }
    }

    /// The relation id of the `Influencer` view declaration.
    pub fn influencer(&self) -> oorq_schema::RelationId {
        self.db
            .catalog()
            .relation_by_name("Influencer")
            .expect("music schema")
    }

    /// Total number of composers.
    pub fn composer_count(&self) -> u32 {
        self.db.object_count(self.composer)
    }

    /// Shape of the `Influencer` temporary (its relation fields).
    pub fn influencer_fields(&self) -> Vec<(String, oorq_schema::ResolvedType)> {
        let rel = self.influencer();
        debug_assert_eq!(self.db.catalog().relation(rel).kind, ViewKind::View);
        self.db.catalog().relation(rel).fields.clone()
    }
}
