//! Deterministic synthetic data generators for the paper's workloads:
//! the Figure 1 music schema (master chains, nested works/instruments)
//! and an engineering parts hierarchy (the \[CS90\] motivation).
//!
//! Every generator is seeded and parameterizes exactly the statistics
//! the cost-controlled optimizer's decisions depend on: chain depth
//! (fixpoint iterations), fan-outs (path-expression cost), selectivities
//! and physical placement (clustering).

pub mod chain;
pub mod music;
pub mod parts;

pub use chain::{
    chain_catalog, closure_catalog, generate_skewed, ChainConfig, ChainDb, ClosureConfig, ClosureDb,
};
pub use music::{MusicConfig, MusicDb};
pub use parts::{parts_catalog, PartsConfig, PartsDb};

#[cfg(test)]
mod tests;
