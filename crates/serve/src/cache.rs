//! The fingerprint-keyed, capacity-bounded LRU plan cache.
//!
//! The lookup key is the framed FNV-1a hash ([`oorq_pt::Fnv64`]) of a
//! query's canonical text — the hash the whole serving layer trusts, so
//! it must not alias. Two defences stack: the hash input is framed
//! (length-prefixed fields, see `oorq_pt::fingerprint`), and every hit
//! re-verifies the stored canonical text before handing the plan out,
//! so even a genuine 64-bit collision degrades to a cache miss, never a
//! wrong plan. Each entry also carries its *plan* fingerprint
//! ([`oorq_pt::Pt::fingerprint`]) — the identity used by traces,
//! metrics and invalidation diagnostics.

use std::sync::Arc;

use oorq_cost::NodeCost;
use oorq_pt::{ParallelSpec, Pt};

/// An optimized plan as the cache stores it: everything a session needs
/// to execute without re-entering the optimizer.
#[derive(Debug)]
pub struct CachedPlan {
    /// The chosen execution plan.
    pub pt: Pt,
    /// Its output column names.
    pub out_cols: Vec<String>,
    /// Optimizer-chosen per-node parallelism (empty = serial).
    pub parallel: ParallelSpec,
    /// The optimizer's final per-node cost breakdown — the predicted
    /// side of the CX drift join that drives invalidation.
    pub breakdown: Vec<NodeCost>,
    /// Structural fingerprint of `pt` (`Pt::fingerprint`).
    pub plan_fingerprint: u64,
}

/// What the cache did for one lookup (reported per answer and
/// aggregated into the `serve.cache.*` series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The plan came from the cache.
    Hit,
    /// The query was optimized and the plan inserted.
    Miss,
}

#[derive(Debug)]
struct Entry {
    key: u64,
    /// Canonical query text, compared verbatim on every hit.
    text: String,
    plan: Arc<CachedPlan>,
    /// Recency stamp (monotone clock value of the last touch).
    stamp: u64,
    hits: u64,
}

/// Capacity-bounded LRU map from query-text fingerprint to optimized
/// plan. Linear scans are deliberate: serving caches hold tens of
/// plans, not thousands, and a `Vec` keeps eviction order exact and
/// the code obviously correct.
#[derive(Debug)]
pub struct PlanCache {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
        }
    }

    /// Look up a plan by key, verifying the canonical text. A key match
    /// with different text (a 64-bit collision) is treated as a miss.
    pub fn get(&mut self, key: u64, text: &str) -> Option<Arc<CachedPlan>> {
        self.clock += 1;
        let clock = self.clock;
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.text == text)?;
        e.stamp = clock;
        e.hits += 1;
        Some(Arc::clone(&e.plan))
    }

    /// Insert a plan, evicting the least recently used entry when full.
    /// Returns the plan fingerprint of the evicted entry, if any.
    pub fn insert(&mut self, key: u64, text: String, plan: Arc<CachedPlan>) -> Option<u64> {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            // Same key re-optimized (post-invalidation, or a collision's
            // text now claims the slot): replace in place.
            e.text = text;
            e.plan = plan;
            e.stamp = self.clock;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            evicted = Some(self.entries.swap_remove(lru).plan.plan_fingerprint);
        }
        self.entries.push(Entry {
            key,
            text,
            plan,
            stamp: self.clock,
            hits: 0,
        });
        evicted
    }

    /// Drop the entry with this key (stale-statistics invalidation).
    /// Returns true if an entry was removed.
    pub fn invalidate(&mut self, key: u64) -> bool {
        match self.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Drop every entry (bulk invalidation after recalibration).
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(fp: u64) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            pt: Pt::temp("T", "t"),
            out_cols: vec!["t".into()],
            parallel: ParallelSpec::new(),
            breakdown: Vec::new(),
            plan_fingerprint: fp,
        })
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = PlanCache::new(2);
        assert!(c.insert(1, "q1".into(), plan(0xa)).is_none());
        assert!(c.insert(2, "q2".into(), plan(0xb)).is_none());
        // Touch q1 so q2 is the LRU.
        assert!(c.get(1, "q1").is_some());
        let evicted = c.insert(3, "q3".into(), plan(0xc));
        assert_eq!(evicted, Some(0xb));
        assert!(c.get(2, "q2").is_none());
        assert!(c.get(1, "q1").is_some());
        assert!(c.get(3, "q3").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn hit_requires_exact_text_match() {
        let mut c = PlanCache::new(4);
        c.insert(7, "select a".into(), plan(0x1));
        // Same key, different text: a collision must read as a miss.
        assert!(c.get(7, "select b").is_none());
        assert!(c.get(7, "select a").is_some());
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = PlanCache::new(4);
        c.insert(1, "q".into(), plan(0x1));
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert!(c.get(1, "q").is_none());
        c.insert(1, "q".into(), plan(0x2));
        c.insert(2, "r".into(), plan(0x3));
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }
}
