//! Serving-layer tests: cache hit/miss patterns, concurrent-session
//! byte-identity, and drift-lint invalidation.

use oorq_datagen::{ChainConfig, ChainDb};
use oorq_exec::MethodRegistry;
use oorq_index::IndexSet;
use oorq_storage::{DbStats, Value};

use crate::*;

fn chain_server(rows: u32) -> Server {
    let chain = ChainDb::generate(ChainConfig {
        relations: 3,
        rows,
        domain: 16,
        seed: 7,
    });
    Server::new(
        chain.db,
        IndexSet::new(),
        MethodRegistry::new(),
        ServerConfig::default(),
    )
}

fn chain_graph(server: &Server, limit: i64) -> oorq_query::QueryGraph {
    // Rebuild the query against the server's catalog (the ChainDb was
    // consumed by the server).
    let chain = ChainDb {
        db: server.database().snapshot(),
        names: (0..3).map(|i| format!("R{i}")).collect(),
        config: ChainConfig {
            relations: 3,
            rows: 0,
            domain: 16,
            seed: 7,
        },
    };
    chain.chain_query(limit)
}

/// Render an answer's rows for byte-comparison.
fn rendered(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn warm_cold_cache_pattern_and_counters() {
    let server = chain_server(60);
    let q = chain_graph(&server, 8);
    let mut s = server.session();

    let a1 = s.execute(&q).unwrap();
    assert_eq!(a1.cache, CacheOutcome::Miss);
    assert!(!a1.invalidated, "fresh statistics must not drift");
    let a2 = s.execute(&q).unwrap();
    assert_eq!(a2.cache, CacheOutcome::Hit);
    let a3 = s.execute(&q).unwrap();
    assert_eq!(a3.cache, CacheOutcome::Hit);

    // Same plan, identical answers, coherent counters.
    assert_eq!(a1.plan_fingerprint, a2.plan_fingerprint);
    assert_eq!(rendered(&a1.batch.rows), rendered(&a2.batch.rows));
    assert_eq!(rendered(&a1.batch.rows), rendered(&a3.batch.rows));
    let m = server.metrics();
    assert_eq!(m.counter("serve.cache.misses").get(), 1);
    assert_eq!(m.counter("serve.cache.hits").get(), 2);
    assert_eq!(m.counter("serve.queries").get(), 3);
    assert_eq!(m.counter("serve.cache.evictions").get(), 0);
    assert_eq!(server.cached_plans(), 1);
    assert_eq!(m.histogram("serve.query.wall_ns").count(), 3);
}

#[test]
fn prepared_queries_share_the_cache() {
    let server = chain_server(40);
    let q = chain_graph(&server, 6);

    let mut s1 = server.session();
    let mut s2 = server.session();
    s1.prepare_graph("chain", q.clone());
    s2.prepare_graph("chain", q.clone());

    let a1 = s1.execute_prepared("chain").unwrap();
    assert_eq!(a1.cache, CacheOutcome::Miss);
    // The second session hits the plan the first one optimized, and an
    // ad-hoc execution of the same graph maps to the same key.
    let a2 = s2.execute_prepared("chain").unwrap();
    assert_eq!(a2.cache, CacheOutcome::Hit);
    let a3 = s2.execute(&q).unwrap();
    assert_eq!(a3.cache, CacheOutcome::Hit);
    assert_eq!(rendered(&a1.batch.rows), rendered(&a2.batch.rows));
    assert_eq!(rendered(&a1.batch.rows), rendered(&a3.batch.rows));

    assert!(matches!(
        s1.execute_prepared("nope"),
        Err(ServeError::UnknownPrepared(_))
    ));
}

#[test]
fn concurrent_sessions_match_single_session_replay() {
    let server = chain_server(80);
    let queries: Vec<_> = [3, 6, 9, 12]
        .iter()
        .map(|&l| chain_graph(&server, l))
        .collect();

    // Single-session reference replay.
    let reference: Vec<Vec<String>> = {
        let mut s = server.session();
        queries
            .iter()
            .map(|q| rendered(&s.execute(q).unwrap().batch.rows))
            .collect()
    };

    // Four concurrent sessions, each replaying the whole mix twice.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut s = server.session();
                for _round in 0..2 {
                    for (q, want) in queries.iter().zip(&reference) {
                        let got = s.execute(q).unwrap();
                        assert_eq!(
                            &rendered(&got.batch.rows),
                            want,
                            "answers must be byte-identical across sessions"
                        );
                    }
                }
            });
        }
    });

    let m = server.metrics();
    // 4 reference queries + 4 sessions * 2 rounds * 4 queries.
    assert_eq!(m.counter("serve.queries").get(), 4 + 32);
    // Every distinct query optimized at most once... unless two sessions
    // raced the same cold key, which the cache resolves by replacement.
    assert!(m.counter("serve.cache.misses").get() >= 4);
    assert!(m.counter("serve.cache.hits").get() >= 28);
    assert_eq!(m.counter("serve.sessions").get(), 5);
}

#[test]
fn stale_statistics_invalidate_evict_and_recalibrate() {
    // Data: a real chain. Statistics: collected from a near-empty twin,
    // then installed — the stale-checkpoint bootstrap case. The first
    // execution's observed counters dwarf the predictions, the CX drift
    // lints fire, the entry is evicted and statistics recalibrated; the
    // re-optimized plan is then clean and cacheable.
    let server = chain_server(120);
    let tiny = ChainDb::generate(ChainConfig {
        relations: 3,
        rows: 2,
        domain: 16,
        seed: 7,
    });
    server.install_stats(DbStats::collect(&tiny.db));

    let q = chain_graph(&server, 12);
    let mut s = server.session();

    let a1 = s.execute(&q).unwrap();
    assert_eq!(a1.cache, CacheOutcome::Miss);
    assert!(a1.invalidated, "stale statistics must trip the drift lints");
    assert_eq!(server.cached_plans(), 0, "stale entry must be evicted");
    let m = server.metrics();
    assert_eq!(m.counter("serve.cache.invalidations").get(), 1);
    assert_eq!(m.counter("serve.recalibrations").get(), 1);

    // Recalibrated: the next request re-optimizes and stays cached.
    let a2 = s.execute(&q).unwrap();
    assert_eq!(a2.cache, CacheOutcome::Miss);
    assert!(!a2.invalidated, "fresh statistics must be clean");
    assert_eq!(server.cached_plans(), 1);
    let a3 = s.execute(&q).unwrap();
    assert_eq!(a3.cache, CacheOutcome::Hit);
    assert!(!a3.invalidated);

    // Same answers throughout: invalidation is about cost honesty, not
    // correctness.
    assert_eq!(rendered(&a1.batch.rows), rendered(&a2.batch.rows));
    assert_eq!(rendered(&a1.batch.rows), rendered(&a3.batch.rows));
}

#[test]
fn lru_capacity_bounds_the_cache() {
    let chain = ChainDb::generate(ChainConfig {
        relations: 3,
        rows: 30,
        domain: 16,
        seed: 7,
    });
    let server = Server::new(
        chain.db,
        IndexSet::new(),
        MethodRegistry::new(),
        ServerConfig {
            plan_cache_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let mut s = server.session();
    for limit in [1, 2, 3, 4] {
        s.execute(&chain_graph(&server, limit)).unwrap();
    }
    assert_eq!(server.cached_plans(), 2);
    assert_eq!(server.metrics().counter("serve.cache.evictions").get(), 2);
    // The most recent plan is still warm.
    let a = s.execute(&chain_graph(&server, 4)).unwrap();
    assert_eq!(a.cache, CacheOutcome::Hit);
}
