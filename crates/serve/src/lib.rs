//! The multi-session serving layer: concurrent read sessions over
//! copy-on-write database snapshots, prepared queries, and a
//! fingerprint-keyed LRU plan cache invalidated by the CX00x drift
//! lints.
//!
//! This is the amortization layer the paper's premise asks for:
//! cost-controlled optimization is worth its price when an optimized
//! plan is reused across many requests. [`Server`] holds the shared
//! state (database, indexes, statistics, plan cache, `serve.*`
//! metrics); [`Session`] is one client's view — a private snapshot
//! with private buffer accounting, so N sessions return byte-identical
//! answers to a single-session replay while sharing every cached plan.

mod cache;
mod server;

pub use cache::{CacheOutcome, CachedPlan, PlanCache};
pub use server::{canonical_text, query_key, Answer, ServeError, Server, ServerConfig, Session};

#[cfg(test)]
mod tests;
