//! The multi-session serving layer.
//!
//! A [`Server`] owns the authoritative [`Database`] plus the shared
//! machinery every query needs — indexes, method registry, statistics,
//! the [`PlanCache`] and the `serve.*` metric series. Each concurrent
//! client gets a [`Session`]: an independent copy-on-write snapshot of
//! the database ([`Database::snapshot`]) with its own buffer manager,
//! breaker temporaries ([`ExecState`]) and execution configuration, so
//! sessions share all base data but account I/O and spend memory
//! budgets independently — and return byte-identical answers to a
//! single-session replay.
//!
//! Plans flow through the cache: a query's canonical text is hashed
//! with the framed FNV-1a fingerprint, a hit skips the optimizer
//! entirely (the stored text is re-verified, so a hash collision can
//! only cost a miss, never serve a wrong plan), and a miss optimizes
//! once and publishes the plan for every session. Invalidation is
//! driven by the CX00x drift lints: after each execution the cached
//! plan's predicted per-node breakdown is joined against the observed
//! operator counters; when the drift lints fire, the entry is evicted,
//! the server's statistics are recalibrated from the live data, and the
//! next request re-optimizes under the fresh statistics.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use oorq_cost::{CostModel, CostParams};
use oorq_exec::{Batch, ExecConfig, ExecError, ExecState, Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_lint::{lint_drift, DriftTolerance, LintCode, ObservedOp};
use oorq_obs::MetricsRegistry;
use oorq_pt::{Fnv64, Pt};
use oorq_query::{parse_query, ParseError, QueryGraph};
use oorq_storage::{Database, DbStats};

use crate::cache::{CacheOutcome, CachedPlan, PlanCache};

/// PT node ids inside fix recursion: each `Fix` node itself plus the
/// recursive leg of its union body. Cost-breakdown lines for these
/// nodes accumulate the model's *predicted iteration count*, so their
/// cardinality cannot be compared against observed counters without
/// re-deriving that multiplier — the drift-invalidation join skips
/// them (the same distinction the calibration harness draws).
fn fix_recursive_nodes(pt: &Pt) -> std::collections::HashSet<usize> {
    let ids = oorq_pt::node_ids(pt);
    let mut out = std::collections::HashSet::new();
    pt.visit(&mut |n| {
        if let Pt::Fix { temp, body } = n {
            if let Some(&id) = ids.get(&(n as *const Pt)) {
                out.insert(id);
            }
            if let Pt::Union { left, right } = body.as_ref() {
                let rec = if left.references_temp(temp) {
                    left.as_ref()
                } else {
                    right.as_ref()
                };
                rec.visit(&mut |r| {
                    if let Some(&id) = ids.get(&(r as *const Pt)) {
                        out.insert(id);
                    }
                });
            }
        }
    });
    out
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum plans the cache holds before LRU eviction.
    pub plan_cache_capacity: usize,
    /// Optimizer strategy used on cache misses.
    pub optimizer: oorq_core::OptimizerConfig,
    /// Cost parameters for the optimizer's model.
    pub cost_params: CostParams,
    /// Default per-session execution configuration (sessions may
    /// override theirs with [`Session::set_exec_config`]).
    pub exec: ExecConfig,
    /// Drift tolerance for the CX00x invalidation check.
    pub drift: DriftTolerance,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            plan_cache_capacity: 64,
            optimizer: oorq_core::OptimizerConfig::cost_controlled(),
            cost_params: CostParams::default(),
            exec: ExecConfig::default(),
            drift: DriftTolerance::default(),
        }
    }
}

/// Errors surfaced to serving clients.
#[derive(Debug)]
pub enum ServeError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The optimizer rejected the query.
    Optimize(oorq_core::OptError),
    /// Execution failed.
    Exec(ExecError),
    /// `execute_prepared` named an unknown prepared query.
    UnknownPrepared(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::Optimize(e) => write!(f, "optimization failed: {e}"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::UnknownPrepared(name) => write!(f, "unknown prepared query `{name}`"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered query.
#[derive(Debug)]
pub struct Answer {
    /// The result rows (deduplicated, in plan order).
    pub batch: Batch,
    /// Whether the plan came from the cache.
    pub cache: CacheOutcome,
    /// Structural fingerprint of the executed plan.
    pub plan_fingerprint: u64,
    /// Whether this execution's drift check fired and evicted the plan.
    pub invalidated: bool,
    /// Wall time of the whole request (lookup + optimize + execute).
    pub wall_ns: u64,
}

/// The shared serving state. Construct once, then open one
/// [`Session`] per concurrent client with [`Server::session`].
pub struct Server {
    db: Database,
    indexes: IndexSet,
    methods: MethodRegistry,
    stats: RwLock<DbStats>,
    cache: Mutex<PlanCache>,
    metrics: MetricsRegistry,
    config: ServerConfig,
    next_session: AtomicU64,
}

impl Server {
    /// Stand up a server over a loaded database. Statistics are
    /// collected once here; the drift-lint invalidation path
    /// recalibrates them when they go stale.
    pub fn new(
        db: Database,
        indexes: IndexSet,
        methods: MethodRegistry,
        config: ServerConfig,
    ) -> Self {
        let stats = DbStats::collect(&db);
        let cache = PlanCache::new(config.plan_cache_capacity);
        Server {
            db,
            indexes,
            methods,
            stats: RwLock::new(stats),
            cache: Mutex::new(cache),
            metrics: MetricsRegistry::new(),
            config,
            next_session: AtomicU64::new(0),
        }
    }

    /// Open a session: an independent snapshot of the database with its
    /// own buffer accounting and breaker temporaries.
    pub fn session(&self) -> Session<'_> {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.metrics.counter("serve.sessions").inc();
        let db = self.db.snapshot();
        db.set_metrics(&self.metrics);
        Session {
            server: self,
            id,
            db,
            state: ExecState::default(),
            prepared: HashMap::new(),
            exec: self.config.exec.clone(),
        }
    }

    /// The shared metric registry (`serve.*`, plus the `exec.*` and
    /// `storage.*` series of every session).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The authoritative database (sessions hold snapshots of it).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Install externally supplied statistics — e.g. restored from a
    /// persisted checkpoint that may be stale relative to the live
    /// data. Serving stays correct either way: if the statistics
    /// mislead the optimizer, the CX drift lints catch the divergence
    /// on the first execution and trigger eviction + recalibration.
    pub fn install_stats(&self, stats: DbStats) {
        *self.stats.write().unwrap() = stats;
    }

    /// Re-collect statistics from the live data (the stale-statistics
    /// half of the invalidation contract; the eviction half happens at
    /// the cache).
    pub fn recalibrate(&self) {
        let fresh = DbStats::collect(&self.db);
        *self.stats.write().unwrap() = fresh;
        self.metrics.counter("serve.recalibrations").inc();
    }

    /// Optimize a query under the current statistics and package the
    /// result for the cache.
    fn optimize(&self, graph: &QueryGraph) -> Result<Arc<CachedPlan>, ServeError> {
        let stats = self.stats.read().unwrap();
        let model = CostModel::new(
            self.db.catalog(),
            self.db.physical(),
            &stats,
            self.config.cost_params.clone(),
        );
        let optimized = oorq_core::Optimizer::new(model, self.config.optimizer.clone())
            .optimize(graph)
            .map_err(ServeError::Optimize)?;
        let plan_fingerprint = optimized.pt.fingerprint();
        Ok(Arc::new(CachedPlan {
            pt: optimized.pt,
            out_cols: optimized.out_cols,
            parallel: optimized.parallel,
            breakdown: optimized.trace.final_breakdown,
            plan_fingerprint,
        }))
    }
}

/// The canonical text of a query graph: the derived `Debug` rendering,
/// which is injective over the graph's structure. This is what the
/// cache key hashes and what hit verification compares.
pub fn canonical_text(graph: &QueryGraph) -> String {
    format!("{graph:?}")
}

/// The cache key of a canonical query text: framed FNV-1a.
pub fn query_key(text: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_tag(b'Q');
    h.write_str(text);
    h.finish()
}

/// A prepared query: translated (parsed and canonicalized) once,
/// executed many times by key.
#[derive(Debug, Clone)]
struct PreparedQuery {
    graph: Arc<QueryGraph>,
    text: Arc<str>,
    key: u64,
}

/// One client's connection to a [`Server`]: a private database
/// snapshot, private breaker temporaries, private execution
/// configuration — and the shared plan cache.
pub struct Session<'s> {
    server: &'s Server,
    id: u64,
    db: Database,
    state: ExecState,
    prepared: HashMap<String, PreparedQuery>,
    exec: ExecConfig,
}

impl<'s> Session<'s> {
    /// This session's id (dense, in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Override this session's execution configuration (threads,
    /// breaker memory budget, fixpoint iteration cap).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Parse, translate and register a query under a name; subsequent
    /// [`Session::execute_prepared`] calls skip parsing and
    /// canonicalization entirely.
    pub fn prepare(&mut self, name: &str, src: &str) -> Result<(), ServeError> {
        let graph = parse_query(self.db.catalog(), src).map_err(ServeError::Parse)?;
        self.prepare_graph(name, graph);
        Ok(())
    }

    /// Register an already-built query graph under a name (the
    /// programmatic twin of [`Session::prepare`]).
    pub fn prepare_graph(&mut self, name: &str, graph: QueryGraph) {
        let text = canonical_text(&graph);
        let key = query_key(&text);
        self.prepared.insert(
            name.to_string(),
            PreparedQuery {
                graph: Arc::new(graph),
                text: text.into(),
                key,
            },
        );
    }

    /// Execute a previously prepared query.
    pub fn execute_prepared(&mut self, name: &str) -> Result<Answer, ServeError> {
        let p = self
            .prepared
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownPrepared(name.to_string()))?;
        self.run(p.key, &p.text, &p.graph)
    }

    /// Execute a query given as source text (parsed per call; prefer
    /// [`Session::prepare`] for repeated queries).
    pub fn execute_text(&mut self, src: &str) -> Result<Answer, ServeError> {
        let graph = parse_query(self.db.catalog(), src).map_err(ServeError::Parse)?;
        self.execute(&graph)
    }

    /// Execute an already-built query graph.
    pub fn execute(&mut self, graph: &QueryGraph) -> Result<Answer, ServeError> {
        let text = canonical_text(graph);
        let key = query_key(&text);
        self.run(key, &text, graph)
    }

    /// The full request path: cache lookup → (optimize on miss) →
    /// execute on this session's snapshot → drift-check the cached
    /// prediction against the observed counters.
    fn run(&mut self, key: u64, text: &str, graph: &QueryGraph) -> Result<Answer, ServeError> {
        let metrics = &self.server.metrics;
        let wall0 = Instant::now();

        // Plan: shared cache first, optimizer on miss. The optimizer
        // runs outside the cache lock — two sessions missing the same
        // key may both optimize, and the second insert wins; that is
        // wasted work, never a wrong answer.
        let (plan, outcome) = {
            let hit = self.server.cache.lock().unwrap().get(key, text);
            match hit {
                Some(plan) => {
                    metrics.counter("serve.cache.hits").inc();
                    (plan, CacheOutcome::Hit)
                }
                None => {
                    let plan = self.server.optimize(graph)?;
                    let evicted = self.server.cache.lock().unwrap().insert(
                        key,
                        text.to_string(),
                        Arc::clone(&plan),
                    );
                    if evicted.is_some() {
                        metrics.counter("serve.cache.evictions").inc();
                    }
                    metrics.counter("serve.cache.misses").inc();
                    (plan, CacheOutcome::Miss)
                }
            }
        };

        // Execute on this session's snapshot, reusing the session's
        // breaker temporaries across queries.
        let state = std::mem::take(&mut self.state);
        let mut ex = Executor::new(&mut self.db, &self.server.indexes, &self.server.methods)
            .with_config(self.exec.clone())
            .with_parallel(plan.parallel.clone())
            .with_state(state);
        let res = ex.run(&plan.pt);
        let report = ex.report();
        self.state = ex.into_state();
        let batch = res.map_err(ServeError::Exec)?;

        // Drift check on the validation (cache-miss) run: the fresh
        // plan's predicted breakdown against this execution's observed
        // counters. Hit executions skip the check — their plan already
        // validated when it entered the cache.
        //
        // The check must separate stale *statistics* from honest model
        // error, so it keys on the one signal the statistics determine
        // directly: base-relation scan cardinality (CX003 on
        // `OpKind::Scan` lines), plus fixpoint-shape drift
        // (CX005/CX006). Interior nodes fold in the model's selectivity
        // assumptions, and observed page/eval traffic depends on buffer
        // residency and rescan counts — none of those can tell stale
        // statistics from a warm cache, so they never evict.
        //
        // Predicted and observed scan rows follow different accumulation
        // conventions depending on context: the model prices a
        // nested-loop inner's rescans at the join node (its scan line
        // predicts one pass) while the executor's `rows_out` totals
        // across every re-open, and lines inside fix recursion fold in
        // the model's predicted iteration count (see
        // [`fix_recursive_nodes`]). So the join (a) skips lines inside
        // fix recursion, and (b) judges a scan line drifted only when
        // it disagrees under *both* readings of the observed counters —
        // per-open (`rows_out / opens`) and total — which stale
        // statistics skew together and execution shape skews apart.
        let invalidated = outcome == CacheOutcome::Miss && {
            let recursive = fix_recursive_nodes(&plan.pt);
            let scan_lines: Vec<oorq_cost::NodeCost> = plan
                .breakdown
                .iter()
                .filter(|n| {
                    n.kind == oorq_cost::OpKind::Scan
                        && n.node.is_some_and(|id| !recursive.contains(&id))
                })
                .cloned()
                .collect();
            let mut per_node: BTreeMap<usize, (String, u64, u64, u64, u64)> = BTreeMap::new();
            for o in &report.ops {
                let e = per_node
                    .entry(o.pt_node)
                    .or_insert_with(|| (o.label.clone(), 0, 0, 0, 0));
                e.1 += o.rows_out;
                e.2 += o.opens;
                e.3 += o.page_reads + o.index_reads + o.page_writes;
                e.4 += o.evals + o.method_calls;
            }
            let observe = |per_open: bool| -> Vec<ObservedOp> {
                per_node
                    .iter()
                    .map(|(&node, (label, rows, opens, io, cpu))| ObservedOp {
                        pt_node: node,
                        label: label.clone(),
                        io: *io as f64,
                        cpu: *cpu as f64,
                        rows: if per_open {
                            *rows as f64 / (*opens).max(1) as f64
                        } else {
                            *rows as f64
                        },
                    })
                    .collect()
            };
            let tol = self.server.config.drift;
            let drift_per_open = lint_drift(&scan_lines, &observe(true), tol);
            let drift_total = lint_drift(&scan_lines, &observe(false), tol);
            // CX003 is a warning by design (a drifted estimate is not an
            // invalid plan), so invalidation keys on the code itself,
            // not on error-level cleanliness.
            drift_per_open.has(LintCode::RowsDrift) && drift_total.has(LintCode::RowsDrift)
        };
        if invalidated {
            // Stale statistics: evict the plan and recalibrate, so the
            // next request re-optimizes under fresh statistics.
            if self.server.cache.lock().unwrap().invalidate(key) {
                metrics.counter("serve.cache.invalidations").inc();
            }
            self.server.recalibrate();
        }

        let wall_ns = wall0.elapsed().as_nanos() as u64;
        metrics.counter("serve.queries").inc();
        metrics.histogram("serve.query.wall_ns").record(wall_ns);
        metrics
            .histogram("serve.query.rows")
            .record(batch.rows.len() as u64);
        Ok(Answer {
            batch,
            cache: outcome,
            plan_fingerprint: plan.plan_fingerprint,
            invalidated,
            wall_ns,
        })
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("prepared", &self.prepared.len())
            .finish()
    }
}
