//! The quantitative search-space table: aggregates the optimizer's
//! `candidate` events into per-step counts (enumerated / pruned /
//! costed / accepted / rejected) and lists the rejected candidate plans
//! with their estimated costs and rejection reasons — Figure 6 of the
//! paper, but quantitative.
//!
//! Candidate-event convention (cat `optimizer`, name `candidate`):
//! - `step`: which §4 step enumerated it (`generatePT`, `transformPT`,
//!   `push-decision`, …)
//! - `fingerprint`: hex structural fingerprint of the candidate PT
//! - `cost`: estimated total cost of the candidate
//! - `incumbent` / `incumbent_cost`: what it was compared against
//! - `outcome`: `accept` | `reject` | `prune`
//! - `reason`: why (e.g. `cheaper than incumbent`, `uphill move`,
//!   `beyond keep-per-arc beam`, `verifier rejected`). A `prune` whose
//!   reason starts with `pruned-proven` was discarded by the static
//!   analyzer's non-overlapping cost intervals (a proof, not a
//!   heuristic) and is tallied in its own column.

use crate::recorder::{FieldValue, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct StepAgg {
    enumerated: usize,
    pruned: usize,
    proven: usize,
    costed: usize,
    accepted: usize,
    rejected: usize,
}

/// Render the search-space table from a trace's `candidate` events.
/// Returns a markdown-style table plus a rejected-candidates listing;
/// empty string when the trace carries no candidate events.
pub fn search_space_table(trace: &Trace) -> String {
    let mut steps: BTreeMap<String, StepAgg> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    struct Rejected {
        step: String,
        fingerprint: String,
        cost: Option<f64>,
        incumbent_cost: Option<f64>,
        reason: String,
    }
    let mut rejected: Vec<Rejected> = Vec::new();
    let mut proven: Vec<String> = Vec::new();

    for e in trace.events_named("candidate") {
        let step = e
            .field("step")
            .and_then(FieldValue::as_str)
            .unwrap_or("?")
            .to_string();
        if !steps.contains_key(&step) {
            order.push(step.clone());
        }
        let agg = steps.entry(step.clone()).or_default();
        agg.enumerated += 1;
        if e.field("cost").and_then(FieldValue::as_num).is_some() {
            agg.costed += 1;
        }
        let outcome = e
            .field("outcome")
            .and_then(FieldValue::as_str)
            .unwrap_or("?");
        let reason = e
            .field("reason")
            .and_then(FieldValue::as_str)
            .unwrap_or("?")
            .to_string();
        match outcome {
            "accept" => agg.accepted += 1,
            "prune" if reason.starts_with("pruned-proven") => {
                agg.proven += 1;
                proven.push(format!(
                    "- [{}] pt {} — {}",
                    step,
                    e.field("fingerprint")
                        .and_then(FieldValue::as_str)
                        .unwrap_or("?"),
                    reason
                ));
            }
            "prune" => agg.pruned += 1,
            "reject" => {
                agg.rejected += 1;
                rejected.push(Rejected {
                    step,
                    fingerprint: e
                        .field("fingerprint")
                        .and_then(FieldValue::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    cost: e.field("cost").and_then(FieldValue::as_num),
                    incumbent_cost: e.field("incumbent_cost").and_then(FieldValue::as_num),
                    reason,
                });
            }
            _ => {}
        }
    }

    if steps.is_empty() {
        return String::new();
    }

    let mut out = String::new();
    out.push_str("## Search space\n\n");
    out.push_str("| step | enumerated | costed | pruned | pruned-proven | rejected | accepted |\n");
    out.push_str("|------|-----------:|-------:|-------:|--------------:|---------:|---------:|\n");
    let mut totals = StepAgg::default();
    for step in &order {
        let a = &steps[step];
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            step, a.enumerated, a.costed, a.pruned, a.proven, a.rejected, a.accepted
        );
        totals.enumerated += a.enumerated;
        totals.costed += a.costed;
        totals.pruned += a.pruned;
        totals.proven += a.proven;
        totals.rejected += a.rejected;
        totals.accepted += a.accepted;
    }
    let _ = writeln!(
        out,
        "| total | {} | {} | {} | {} | {} | {} |",
        totals.enumerated,
        totals.costed,
        totals.pruned,
        totals.proven,
        totals.rejected,
        totals.accepted
    );

    if !proven.is_empty() {
        out.push_str("\n### Provably pruned candidates\n\n");
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut lines: Vec<String> = Vec::new();
        for line in proven {
            match counts.entry(line.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(1);
                    lines.push(line);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => *e.get_mut() += 1,
            }
        }
        for line in &lines {
            let n = counts[line];
            if n > 1 {
                let _ = writeln!(out, "{line} (×{n})");
            } else {
                let _ = writeln!(out, "{line}");
            }
        }
    }

    if !rejected.is_empty() {
        // A randomized walk can reject the same move many times; list
        // each distinct (step, plan, reason) once with a ×N count.
        out.push_str("\n### Rejected candidates\n\n");
        let mut lines: Vec<String> = Vec::new();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for r in &rejected {
            let cost = r
                .cost
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "?".into());
            let vs = r
                .incumbent_cost
                .map(|c| format!(" vs incumbent {c:.1}"))
                .unwrap_or_default();
            let line = format!(
                "- [{}] pt {} cost {}{} — {}",
                r.step, r.fingerprint, cost, vs, r.reason
            );
            match counts.entry(line.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(1);
                    lines.push(line);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => *e.get_mut() += 1,
            }
        }
        for line in &lines {
            let n = counts[line];
            if n > 1 {
                let _ = writeln!(out, "{line} (×{n})");
            } else {
                let _ = writeln!(out, "{line}");
            }
        }
    }
    out
}
