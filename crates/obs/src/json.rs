//! A minimal JSON value, writer and parser — enough for the trace
//! sinks and the in-repo Chrome-trace checker, with no external
//! dependencies (the workspace builds offline).
//!
//! Numbers are `f64`; integral values render without a fractional part
//! and Rust's shortest-round-trip `f64` display is used otherwise, so
//! write → parse → write is a fixed point.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a single JSON value (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; clamp to null (the parsers we feed
        // would reject the bare tokens).
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence: track back to the char
                    // boundary and push the whole char.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{s}`")))
    }
}
