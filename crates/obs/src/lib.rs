//! Structured tracing for the whole stack: hierarchical spans, runtime
//! events, and a counters registry, with offline exporters.
//!
//! The paper's contribution is a *cost-controlled* decision; this crate
//! is the window into how that decision was reached. The optimizer
//! records one span per §4 step and one structured `candidate` event
//! per enumerated plan (fingerprint, estimated cost, the incumbent it
//! was compared against, accept/reject reason); the executor records
//! one span per physical operator carrying its observed counters plus
//! per-fixpoint-iteration events with delta sizes; the buffer manager
//! records page hit/miss/eviction events; the lint engine records
//! violations with their stable codes. Everything lands in one
//! [`Trace`], exportable as:
//!
//! - **JSONL** ([`Trace::to_jsonl`] / [`Trace::from_jsonl`]) — one
//!   schema-versioned JSON object per line, the durable machine-readable
//!   stream downstream tooling (calibration, cardinality feedback)
//!   consumes. Round-trips exactly.
//! - **Chrome trace-event JSON** ([`Trace::to_chrome`]) — loadable in
//!   Perfetto / `chrome://tracing`; stack spans become balanced `B`/`E`
//!   pairs, synthesized operator spans get one named track each, the
//!   counters registry becomes `C` samples. [`check_chrome_trace`] is
//!   the in-repo validity checker CI runs (balanced `B`/`E`, monotone
//!   `ts`, schema fields present) — no network, no external tools.
//! - **Folded stacks** ([`Trace::to_folded`]) — `a;b;c <ns>` lines for
//!   flamegraph tooling, weighted by exclusive wall time.
//!
//! The recorder is a cheap cloneable handle; [`Recorder::disabled`]
//! (the default everywhere) reduces every call to one branch, so
//! instrumented hot paths cost nothing when tracing is off. No external
//! dependencies; the JSON reader/writer is in [`json`].

mod chrome;
mod folded;
pub mod json;
mod jsonl;
pub mod metrics;
mod recorder;
mod search;

pub use chrome::{check_chrome_trace, ChromeSummary};
pub use metrics::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{
    Event, FieldValue, Fields, Recorder, Span, SpanId, Trace, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use search::search_space_table;

#[cfg(test)]
mod tests;
