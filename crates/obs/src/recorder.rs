//! The span/event recorder and the [`Trace`] it accumulates.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// JSONL schema identifier (the header line's `schema` field).
pub const SCHEMA_NAME: &str = "oorq-trace";
/// JSONL schema version; bump on any incompatible layout change.
pub const SCHEMA_VERSION: u64 = 1;

/// A span identifier: 1-based index into [`Trace::spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// A field value attached to a span or event. Numbers are `f64`
/// (exact for counters up to 2^53; fingerprints travel as strings).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Num(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Num(v as f64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Num(v as f64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Num(v as f64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Num(v as f64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            FieldValue::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Named fields of a span or event, in insertion order.
pub type Fields = Vec<(String, FieldValue)>;

/// A recorded span: a named interval with a parent, a layer category
/// (`optimizer`, `exec`, `storage`, `lint`) and attached fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Layer category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder's epoch (`None` while open;
    /// [`Recorder::finish`] closes stragglers).
    pub end_ns: Option<u64>,
    /// Attached fields.
    pub fields: Fields,
}

impl Span {
    /// Duration in nanoseconds (0 while open).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns
            .map(|e| e.saturating_sub(self.start_ns))
            .unwrap_or(0)
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A recorded point event, scoped to the innermost open span at the
/// time it fired.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp, nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// The innermost open span when the event fired.
    pub span: Option<SpanId>,
    /// Layer category.
    pub cat: String,
    /// Event name (e.g. `candidate`, `fix-iteration`, `page-miss`).
    pub name: String,
    /// Structured payload.
    pub fields: Fields,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Everything one recorder accumulated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in creation order (`SpanId(n)` is `spans[n-1]`).
    pub spans: Vec<Span>,
    /// All events, in firing order.
    pub events: Vec<Event>,
    /// The counters registry: monotonically accumulated named totals.
    pub counters: BTreeMap<String, f64>,
}

impl Trace {
    /// The span behind an id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.get((id.0 as usize).checked_sub(1)?)
    }

    /// Spans whose parent is `parent` (`None`: roots), in order.
    pub fn children_of(&self, parent: Option<SpanId>) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// Events with the given name, in order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.name == name)
    }
}

#[derive(Debug)]
struct Inner {
    t0: Instant,
    spans: Vec<Span>,
    events: Vec<Event>,
    counters: BTreeMap<String, f64>,
    /// Stack of open (strictly nested) spans; the top scopes new events
    /// and parents new spans.
    stack: Vec<SpanId>,
}

/// Take the recorder's lock; a poisoned lock (a worker panicked while
/// recording) still yields the data — traces are diagnostics, not
/// invariants.
fn lock(inner: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// The recorder handle: cheap to clone, shared by every layer — and
/// across worker threads (the state sits behind an `Arc<Mutex<_>>`, so
/// exchange workers can record spans and buffer events concurrently).
/// [`Recorder::disabled`] (also `Default`) makes every call a no-op
/// behind a single branch.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<Inner>>>);

impl Recorder {
    /// An enabled recorder with its epoch at "now".
    pub fn new() -> Self {
        Recorder(Some(Arc::new(Mutex::new(Inner {
            t0: Instant::now(),
            spans: Vec::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            stack: Vec::new(),
        }))))
    }

    /// The no-op recorder.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the recorder's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(inner) => lock(inner).t0.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Open a span as a child of the innermost open span. Returns `None`
    /// when disabled.
    pub fn begin(&self, cat: &str, name: &str) -> Option<SpanId> {
        let inner = self.0.as_ref()?;
        let mut r = lock(inner);
        let start_ns = r.t0.elapsed().as_nanos() as u64;
        let id = SpanId(r.spans.len() as u64 + 1);
        let parent = r.stack.last().copied();
        r.spans.push(Span {
            id,
            parent,
            cat: cat.to_string(),
            name: name.to_string(),
            start_ns,
            end_ns: None,
            fields: Vec::new(),
        });
        r.stack.push(id);
        Some(id)
    }

    /// Close a span opened with [`Recorder::begin`]. Any span opened
    /// after it and still open is closed too (stack discipline).
    pub fn end(&self, id: Option<SpanId>) {
        let (Some(inner), Some(id)) = (&self.0, id) else {
            return;
        };
        let mut r = lock(inner);
        let now = r.t0.elapsed().as_nanos() as u64;
        let Some(pos) = r.stack.iter().rposition(|&s| s == id) else {
            return;
        };
        let to_close: Vec<SpanId> = r.stack.drain(pos..).collect();
        for s in to_close {
            let span = &mut r.spans[s.0 as usize - 1];
            if span.end_ns.is_none() {
                span.end_ns = Some(now);
            }
        }
    }

    /// Attach fields to a span (open or closed).
    pub fn span_fields(&self, id: Option<SpanId>, fields: Fields) {
        let (Some(inner), Some(id)) = (&self.0, id) else {
            return;
        };
        let mut r = lock(inner);
        if let Some(span) = r.spans.get_mut(id.0 as usize - 1) {
            span.fields.extend(fields);
        }
    }

    /// Record a span with explicit timing (synthesized after the fact,
    /// e.g. the executor's per-operator spans). Not placed on the stack.
    pub fn add_span(
        &self,
        cat: &str,
        name: &str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        fields: Fields,
    ) -> Option<SpanId> {
        let inner = self.0.as_ref()?;
        let mut r = lock(inner);
        let id = SpanId(r.spans.len() as u64 + 1);
        r.spans.push(Span {
            id,
            parent,
            cat: cat.to_string(),
            name: name.to_string(),
            start_ns,
            end_ns: Some(end_ns),
            fields,
        });
        Some(id)
    }

    /// Fire an event scoped to the innermost open span.
    pub fn event(&self, cat: &str, name: &str, fields: Fields) {
        let Some(inner) = &self.0 else { return };
        let mut r = lock(inner);
        let ts_ns = r.t0.elapsed().as_nanos() as u64;
        let span = r.stack.last().copied();
        r.events.push(Event {
            ts_ns,
            span,
            cat: cat.to_string(),
            name: name.to_string(),
            fields,
        });
    }

    /// Bump a named counter in the registry.
    pub fn counter_add(&self, name: &str, delta: f64) {
        let Some(inner) = &self.0 else { return };
        *lock(inner).counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Close any still-open spans and return the accumulated trace.
    pub fn finish(&self) -> Trace {
        let Some(inner) = &self.0 else {
            return Trace::default();
        };
        let mut r = lock(inner);
        let now = r.t0.elapsed().as_nanos() as u64;
        let open: Vec<SpanId> = r.stack.drain(..).collect();
        for s in open {
            let span = &mut r.spans[s.0 as usize - 1];
            if span.end_ns.is_none() {
                span.end_ns = Some(now);
            }
        }
        Trace {
            spans: r.spans.clone(),
            events: r.events.clone(),
            counters: r.counters.clone(),
        }
    }
}
