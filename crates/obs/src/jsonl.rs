//! JSONL sink: one schema-versioned JSON object per line, and the
//! parser that round-trips it back into a [`Trace`].
//!
//! Line kinds, discriminated by the `t` field (the first line is the
//! header and has no `t`):
//!
//! ```text
//! {"schema":"oorq-trace","version":1,"counters":{...}}
//! {"t":"span","id":1,"parent":null,"cat":"optimizer","name":"optimize","start_ns":0,"end_ns":12,"fields":{...}}
//! {"t":"event","ts_ns":5,"span":1,"cat":"optimizer","name":"candidate","fields":{...}}
//! ```
//!
//! Field maps preserve insertion order; numbers are `f64` (exact up to
//! 2^53 — u64 fingerprints travel as hex *strings* for this reason).

use crate::json::{Json, JsonError};
use crate::recorder::{
    Event, FieldValue, Fields, Span, SpanId, Trace, SCHEMA_NAME, SCHEMA_VERSION,
};

fn fields_to_json(fields: &Fields) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    FieldValue::Str(s) => Json::Str(s.clone()),
                    FieldValue::Num(n) => Json::Num(*n),
                    FieldValue::Bool(b) => Json::Bool(*b),
                };
                (k.clone(), jv)
            })
            .collect(),
    )
}

fn fields_from_json(v: &Json) -> Result<Fields, String> {
    let Json::Obj(members) = v else {
        return Err("fields must be an object".into());
    };
    members
        .iter()
        .map(|(k, v)| {
            let fv = match v {
                Json::Str(s) => FieldValue::Str(s.clone()),
                Json::Num(n) => FieldValue::Num(*n),
                Json::Bool(b) => FieldValue::Bool(*b),
                _ => return Err(format!("field `{k}` has unsupported type")),
            };
            Ok((k.clone(), fv))
        })
        .collect()
}

fn num_field(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

impl Trace {
    /// Serialize as JSONL: a header line followed by one line per span
    /// and per event (in recording order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA_NAME.into())),
            ("version".into(), Json::Num(SCHEMA_VERSION as f64)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&header.render());
        out.push('\n');
        for s in &self.spans {
            let line = Json::Obj(vec![
                ("t".into(), Json::Str("span".into())),
                ("id".into(), Json::Num(s.id.0 as f64)),
                (
                    "parent".into(),
                    match s.parent {
                        Some(p) => Json::Num(p.0 as f64),
                        None => Json::Null,
                    },
                ),
                ("cat".into(), Json::Str(s.cat.clone())),
                ("name".into(), Json::Str(s.name.clone())),
                ("start_ns".into(), Json::Num(s.start_ns as f64)),
                (
                    "end_ns".into(),
                    match s.end_ns {
                        Some(e) => Json::Num(e as f64),
                        None => Json::Null,
                    },
                ),
                ("fields".into(), fields_to_json(&s.fields)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for e in &self.events {
            let line = Json::Obj(vec![
                ("t".into(), Json::Str("event".into())),
                ("ts_ns".into(), Json::Num(e.ts_ns as f64)),
                (
                    "span".into(),
                    match e.span {
                        Some(s) => Json::Num(s.0 as f64),
                        None => Json::Null,
                    },
                ),
                ("cat".into(), Json::Str(e.cat.clone())),
                ("name".into(), Json::Str(e.name.clone())),
                ("fields".into(), fields_to_json(&e.fields)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL dump produced by [`Trace::to_jsonl`]. Rejects
    /// unknown schemas/versions so downstream tooling fails loudly on
    /// drift instead of misreading lines.
    pub fn from_jsonl(src: &str) -> Result<Trace, String> {
        let mut lines = src
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((_, header_line)) = lines.next() else {
            return Err("empty trace: missing header line".into());
        };
        let header = parse_line(0, header_line)?;
        let schema = str_field(&header, "schema").map_err(|e| format!("header: {e}"))?;
        if schema != SCHEMA_NAME {
            return Err(format!(
                "unknown schema `{schema}` (expected `{SCHEMA_NAME}`)"
            ));
        }
        let version = num_field(&header, "version").map_err(|e| format!("header: {e}"))?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "unsupported schema version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let mut trace = Trace::default();
        if let Some(Json::Obj(members)) = header.get("counters") {
            for (k, v) in members {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("header: counter `{k}` is not a number"))?;
                trace.counters.insert(k.clone(), n);
            }
        }
        for (lineno, line) in lines {
            let obj = parse_line(lineno, line)?;
            let kind = str_field(&obj, "t").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ctx = |e: String| format!("line {}: {e}", lineno + 1);
            match kind.as_str() {
                "span" => {
                    let parent = match obj.get("parent") {
                        Some(Json::Num(p)) => Some(SpanId(*p as u64)),
                        Some(Json::Null) | None => None,
                        _ => return Err(ctx("`parent` must be number or null".into())),
                    };
                    let end_ns = match obj.get("end_ns") {
                        Some(Json::Num(e)) => Some(*e as u64),
                        Some(Json::Null) | None => None,
                        _ => return Err(ctx("`end_ns` must be number or null".into())),
                    };
                    trace.spans.push(Span {
                        id: SpanId(num_field(&obj, "id").map_err(ctx)? as u64),
                        parent,
                        cat: str_field(&obj, "cat").map_err(ctx)?,
                        name: str_field(&obj, "name").map_err(ctx)?,
                        start_ns: num_field(&obj, "start_ns").map_err(ctx)? as u64,
                        end_ns,
                        fields: obj
                            .get("fields")
                            .map(fields_from_json)
                            .transpose()
                            .map_err(ctx)?
                            .unwrap_or_default(),
                    });
                }
                "event" => {
                    let span = match obj.get("span") {
                        Some(Json::Num(s)) => Some(SpanId(*s as u64)),
                        Some(Json::Null) | None => None,
                        _ => return Err(ctx("`span` must be number or null".into())),
                    };
                    trace.events.push(Event {
                        ts_ns: num_field(&obj, "ts_ns").map_err(ctx)? as u64,
                        span,
                        cat: str_field(&obj, "cat").map_err(ctx)?,
                        name: str_field(&obj, "name").map_err(ctx)?,
                        fields: obj
                            .get("fields")
                            .map(fields_from_json)
                            .transpose()
                            .map_err(ctx)?
                            .unwrap_or_default(),
                    });
                }
                other => return Err(ctx(format!("unknown line kind `{other}`"))),
            }
        }
        Ok(trace)
    }
}

fn parse_line(lineno: usize, line: &str) -> Result<Json, String> {
    Json::parse(line).map_err(|e: JsonError| format!("line {}: {e}", lineno + 1))
}
