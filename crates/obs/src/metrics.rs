//! Always-on query metrics: atomic counters/gauges, log-bucketed
//! histograms, and the [`MetricsRegistry`] aggregating them across
//! queries under stable series names.
//!
//! The tracing recorder ([`crate::Recorder`]) answers "what happened in
//! *this* run"; this module answers "what has been happening across
//! *all* runs" — the aggregation layer a serving harness reports p50/p99
//! from. Everything is dependency-free and lock-free on the hot path:
//!
//! - [`Counter`]/[`Gauge`] are single relaxed atomics;
//! - [`Histogram`] is a fixed array of atomic bucket counts over
//!   log-spaced bounds (powers of ~1.3 covering 1 ns to minutes), plus
//!   exact `count`/`sum`/`max` atomics. Recording is two relaxed
//!   atomic adds, a relaxed max, and a binary search over a static
//!   bound table; percentile extraction returns the *upper bound* of
//!   the bucket holding the requested rank (≤ ~30 % relative error by
//!   construction) and the exact maximum for the top rank. Histograms
//!   merge bucket-wise, so parallel worker lanes can each fill a
//!   private registry that folds into the shared one at join.
//! - [`MetricsRegistry`] is a cheap cloneable handle in the
//!   [`crate::Recorder`] mold: [`MetricsRegistry::disabled`] (the
//!   default everywhere) hands out empty handles whose every probe is
//!   one branch, so instrumented hot paths cost nothing when metrics
//!   are off. Series are interned once (at attach time, not per
//!   increment) and named `layer.noun[.qualifier]` — see the registry
//!   table in `DESIGN.md` §14; `reproduce metrics-gate` pins the names.
//!
//! Exports: a human table ([`MetricsRegistry::render_table`]) with
//! p50/p90/p99/max per histogram, a Prometheus-style text exposition
//! ([`MetricsRegistry::render_prometheus`]), and a bridge into the
//! trace counter registry ([`MetricsRegistry::publish_to_recorder`])
//! so `reproduce trace` JSONL/Chrome exports carry the series without
//! any schema change.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::recorder::Recorder;

/// Growth factor between consecutive histogram bucket bounds.
const GROWTH: f64 = 1.3;
/// Highest finite bucket bound: 10 minutes in nanoseconds. Values above
/// land in the overflow bucket (whose percentile is the exact max).
const MAX_BOUND: u64 = 600_000_000_000;

/// The log-spaced bucket upper bounds (inclusive), shared by every
/// histogram: 1, 2, 3, 4, 6, 8, 11, … — each bound is the previous one
/// times ~1.3, rounded up (and forced strictly increasing, so the small
/// bounds are exact consecutive integers until the geometric step
/// exceeds 1).
pub fn bucket_bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = Vec::with_capacity(96);
        let mut b: u64 = 1;
        while b <= MAX_BOUND {
            bounds.push(b);
            b = (b + 1).max((b as f64 * GROWTH).ceil() as u64);
        }
        bounds
    })
}

/// Bucket index of a value: the first bound `>= v`, or the overflow
/// bucket (`bucket_bounds().len()`) for values beyond the last bound.
fn bucket_index(v: u64) -> usize {
    bucket_bounds().partition_point(|&b| b < v)
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add a delta.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a signed level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of `u64` samples (nanoseconds, rows, …).
#[derive(Debug)]
pub struct Histogram {
    /// One count per bound in [`bucket_bounds`], plus the overflow
    /// bucket at the end.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Saturating sum of all samples.
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let n = bucket_bounds().len() + 1;
        Histogram {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample. Two relaxed adds, one relaxed max, one binary
    /// search over the static bound table; never panics (values past the
    /// last bound — up to `u64::MAX` — land in the overflow bucket, and
    /// the running sum saturates instead of wrapping).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // `fetch_update` with saturation: a sum wrap would silently reset
        // long-lived latency totals.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q <= 1`): the upper bound of the bucket
    /// holding the sample of rank `ceil(q·count)`. Ranks landing in the
    /// overflow bucket — and `q = 1` generally — report the exact
    /// maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        let bounds = bucket_bounds();
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return match bounds.get(i) {
                    // The true sample is <= the bucket bound; never
                    // report past the exact observed maximum.
                    Some(&bound) => bound.min(self.max()),
                    None => self.max(), // overflow bucket
                };
            }
        }
        self.max()
    }

    /// Fold another histogram's samples into this one (worker-lane
    /// registry merge). Bucket layouts are identical by construction.
    pub fn merge_from(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(other.sum.load(Ordering::Relaxed)))
            });
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A plain-data snapshot (for rendering and per-query deltas).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }

    /// Non-empty `(upper_bound, cumulative_count)` pairs in bound order
    /// (the overflow bucket's bound is `u64::MAX`), for expositions.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let bounds = bucket_bounds();
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bounds.get(i).copied().unwrap_or(u64::MAX), cum));
            }
        }
        out
    }
}

/// Plain-data summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// A counter handle: one branch when detached (disabled registry), one
/// relaxed atomic add when live.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// Add one.
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Add a delta.
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.add(delta);
        }
    }

    /// Current total (0 when detached).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.get()).unwrap_or(0)
    }
}

/// A gauge handle (see [`CounterHandle`]).
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// Set the level.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Move the level by a delta.
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.add(delta);
        }
    }

    /// Current level (0 when detached).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map(|g| g.get()).unwrap_or(0)
    }
}

/// A histogram handle (see [`CounterHandle`]).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Samples recorded (0 when detached).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map(|h| h.count()).unwrap_or(0)
    }
}

/// The named series of one registry. Series are created on first
/// request and never removed, so a name observed once stays in every
/// subsequent export (stable across queries).
#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Everything one registry holds, as plain data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The metrics registry handle: cheap to clone, shared by every layer,
/// thread-safe (interning takes a mutex; recording is handle-local
/// atomics). [`MetricsRegistry::disabled`] (also `Default`) hands out
/// detached handles whose every probe is one branch.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry(Option<Arc<Mutex<RegistryInner>>>);

/// Take the registry's lock; a poisoned lock (a worker panicked while
/// interning) still yields the data — metrics are diagnostics.
fn lock(inner: &Mutex<RegistryInner>) -> std::sync::MutexGuard<'_, RegistryInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry(Some(Arc::new(Mutex::new(RegistryInner::default()))))
    }

    /// The no-op registry: every handle it hands out is detached.
    pub fn disabled() -> Self {
        MetricsRegistry(None)
    }

    /// Whether this handle aggregates anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Intern (or look up) a counter series.
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle(
            self.0
                .as_ref()
                .map(|inner| Arc::clone(lock(inner).counters.entry(name.to_string()).or_default())),
        )
    }

    /// Intern (or look up) a gauge series.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle(
            self.0
                .as_ref()
                .map(|inner| Arc::clone(lock(inner).gauges.entry(name.to_string()).or_default())),
        )
    }

    /// Intern (or look up) a histogram series.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(
            self.0.as_ref().map(|inner| {
                Arc::clone(lock(inner).histograms.entry(name.to_string()).or_default())
            }),
        )
    }

    /// A private registry for a worker lane: enabled iff this one is.
    /// The lane records into its fork contention-free and the fork is
    /// folded back with [`MetricsRegistry::merge_from`] at join.
    pub fn fork(&self) -> MetricsRegistry {
        if self.enabled() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        }
    }

    /// Fold another registry's series into this one: counters and gauges
    /// add, histograms merge bucket-wise. Series missing here are
    /// created. A disabled side (either) is a no-op.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let Some(oinner) = &other.0 else { return };
        if !self.enabled() {
            return;
        }
        let o = lock(oinner);
        for (name, c) in &o.counters {
            self.counter(name).add(c.get());
        }
        for (name, g) in &o.gauges {
            self.gauge(name).add(g.get());
        }
        for (name, h) in &o.histograms {
            if let Some(mine) = self.histogram(name).0 {
                mine.merge_from(h);
            }
        }
    }

    /// Every series name, sorted — counters, gauges, then histograms
    /// (the name-stability gate's subject matter).
    pub fn names(&self) -> Vec<String> {
        let Some(inner) = &self.0 else {
            return Vec::new();
        };
        let r = lock(inner);
        let mut names: Vec<String> = r
            .counters
            .keys()
            .chain(r.gauges.keys())
            .chain(r.histograms.keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Plain-data snapshot of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else {
            return MetricsSnapshot::default();
        };
        let r = lock(inner);
        MetricsSnapshot {
            counters: r
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: r.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: r
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// The human table: one counters/gauges section, one histogram
    /// section with count, p50/p90/p99, max and mean.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let snap = self.snapshot();
        let mut out = String::new();
        if !snap.counters.is_empty() || !snap.gauges.is_empty() {
            out.push_str("| counter | total |\n|---|---|\n");
            for (name, v) in &snap.counters {
                let _ = writeln!(out, "| {name} | {v} |");
            }
            for (name, v) in &snap.gauges {
                let _ = writeln!(out, "| {name} (gauge) | {v} |");
            }
        }
        if !snap.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(
                "| histogram | count | p50 | p90 | p99 | max | mean |\n|---|---|---|---|---|---|---|\n",
            );
            for (name, h) in &snap.histograms {
                let mean = if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "| {name} | {} | {} | {} | {} | {} | {mean:.1} |",
                    h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        out
    }

    /// Prometheus-style text exposition: `# TYPE` lines, `oorq_`-prefixed
    /// sanitized names, cumulative `_bucket{le=…}` samples (non-empty
    /// buckets plus `+Inf`), `_sum` and `_count` per histogram.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let r = lock(inner);
        let mut out = String::new();
        for (name, c) in &r.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter\n{p} {}", c.get());
        }
        for (name, g) in &r.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge\n{p} {}", g.get());
        }
        for (name, h) in &r.histograms {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            for (bound, cum) in h.cumulative_buckets() {
                if bound == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{p}_bucket{{le=\"{bound}\"}} {cum}");
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{p}_sum {}\n{p}_count {}", h.sum(), h.count());
        }
        out
    }

    /// Publish every series into a trace recorder's counter registry
    /// under a `metrics.` prefix — histograms as their percentile
    /// summaries — so the existing schema-v1 JSONL header and the Chrome
    /// `C` counter samples carry the series with no schema change.
    pub fn publish_to_recorder(&self, rec: &Recorder) {
        if !self.enabled() || !rec.enabled() {
            return;
        }
        let snap = self.snapshot();
        for (name, v) in &snap.counters {
            rec.counter_add(&format!("metrics.{name}"), *v as f64);
        }
        for (name, v) in &snap.gauges {
            rec.counter_add(&format!("metrics.{name}"), *v as f64);
        }
        for (name, h) in &snap.histograms {
            for (stat, v) in [
                ("count", h.count),
                ("p50", h.p50),
                ("p90", h.p90),
                ("p99", h.p99),
                ("max", h.max),
            ] {
                rec.counter_add(&format!("metrics.{name}.{stat}"), v as f64);
            }
        }
    }
}

/// Sanitize a series name into the Prometheus grammar:
/// `oorq_` prefix, `[a-zA-Z0-9_]` body.
fn prom_name(name: &str) -> String {
    let body: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("oorq_{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_increasing_powers() {
        let bounds = bucket_bounds();
        assert_eq!(bounds[0], 1);
        for w in bounds.windows(2) {
            assert!(w[1] > w[0], "strictly increasing: {} -> {}", w[0], w[1]);
            // Each step is the geometric growth (rounded up), floored at
            // +1 while the step is sub-integral.
            let geo = (w[0] as f64 * GROWTH).ceil() as u64;
            assert_eq!(w[1], geo.max(w[0] + 1), "bound after {}", w[0]);
        }
        let last = *bounds.last().unwrap();
        assert!(last > MAX_BOUND / 2 && last <= MAX_BOUND.saturating_mul(2));
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let bounds = bucket_bounds();
        for (i, &b) in bounds.iter().enumerate().take(20) {
            assert_eq!(bucket_index(b), i, "bound {b} lands in its own bucket");
            assert_eq!(bucket_index(b + 1), i + 1, "bound+1 lands one up");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
    }

    #[test]
    fn u64_extremes_saturate_into_overflow_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates, no wrap
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX, "overflow bucket reports max");
        assert_eq!(bucket_index(u64::MAX), bucket_bounds().len());
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::default();
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
        assert_eq!(h.max(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        // Rank 50's true value is 50; its bucket bound is the first
        // bound >= 50.
        let expect = *bucket_bounds().iter().find(|&&b| b >= 50).unwrap();
        assert_eq!(p50, expect);
        assert_eq!(h.percentile(1.0), 100, "top rank is the exact max");
        assert!(h.percentile(0.99) <= h.max());
        // The bound never exceeds the exact observed maximum.
        let one = Histogram::default();
        one.record(5);
        assert_eq!(one.percentile(0.5), 5);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(10);
        b.record(10);
        b.record(1_000_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1_000_020);
        assert_eq!(a.max(), 1_000_000);
        let bound_of_10 = *bucket_bounds().iter().find(|&&b| b >= 10).unwrap();
        assert_eq!(a.percentile(0.5), bound_of_10);
    }

    #[test]
    fn registry_interns_and_merges() {
        let m = MetricsRegistry::new();
        m.counter("a.hits").add(3);
        m.counter("a.hits").add(2); // same series
        m.gauge("a.level").set(7);
        m.histogram("a.wall").record(42);

        let lane = m.fork();
        assert!(lane.enabled());
        lane.counter("a.hits").inc();
        lane.counter("b.new").inc();
        lane.histogram("a.wall").record(58);
        m.merge_from(&lane);

        let snap = m.snapshot();
        assert_eq!(snap.counters["a.hits"], 6);
        assert_eq!(snap.counters["b.new"], 1);
        assert_eq!(snap.gauges["a.level"], 7);
        assert_eq!(snap.histograms["a.wall"].count, 2);
        assert_eq!(
            m.names(),
            vec!["a.hits", "a.level", "a.wall", "b.new"],
            "sorted stable names"
        );
    }

    #[test]
    fn disabled_registry_hands_out_detached_handles() {
        let m = MetricsRegistry::disabled();
        assert!(!m.enabled());
        assert!(!m.fork().enabled());
        let c = m.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        m.histogram("y").record(9);
        m.gauge("z").set(1);
        assert!(m.names().is_empty());
        assert!(m.snapshot().counters.is_empty());
        assert!(m.render_table().is_empty());
        assert!(m.render_prometheus().is_empty());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = MetricsRegistry::new();
        m.counter("storage.page_hits").add(12);
        let h = m.histogram("exec.query.wall_ns");
        h.record(100);
        h.record(2000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE oorq_storage_page_hits counter"));
        assert!(text.contains("oorq_storage_page_hits 12"));
        assert!(text.contains("# TYPE oorq_exec_query_wall_ns histogram"));
        assert!(text.contains("oorq_exec_query_wall_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("oorq_exec_query_wall_ns_sum 2100"));
        assert!(text.contains("oorq_exec_query_wall_ns_count 2"));
        // Cumulative bucket counts are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "monotone cumulative counts: {line}");
            last = v;
        }
    }

    #[test]
    fn publish_to_recorder_lands_in_trace_counters() {
        let m = MetricsRegistry::new();
        m.counter("exec.queries").add(4);
        m.histogram("exec.query.wall_ns").record(1234);
        let rec = Recorder::new();
        m.publish_to_recorder(&rec);
        let trace = rec.finish();
        assert_eq!(trace.counters["metrics.exec.queries"], 4.0);
        assert_eq!(trace.counters["metrics.exec.query.wall_ns.count"], 1.0);
        assert!(trace
            .counters
            .contains_key("metrics.exec.query.wall_ns.p99"));
        assert_eq!(trace.counters["metrics.exec.query.wall_ns.max"], 1234.0);
    }

    #[test]
    fn render_table_has_percentile_columns() {
        let m = MetricsRegistry::new();
        m.counter("c").inc();
        m.histogram("h").record(10);
        let t = m.render_table();
        assert!(t.contains("| counter | total |"));
        assert!(t.contains("| histogram | count | p50 | p90 | p99 | max | mean |"));
        assert!(t.contains("| h | 1 | 10 | 10 | 10 | 10 | 10.0 |"));
    }
}
