use crate::json::Json;
use crate::{check_chrome_trace, search_space_table, FieldValue, Recorder, SpanId, Trace};

fn sample_trace() -> Trace {
    let rec = Recorder::new();
    let root = rec.begin("optimizer", "optimize");
    rec.event(
        "optimizer",
        "candidate",
        vec![
            ("step".into(), "generatePT".into()),
            ("fingerprint".into(), "0xdeadbeef".into()),
            ("cost".into(), FieldValue::Num(42.5)),
            ("incumbent".into(), "0xcafe".into()),
            ("incumbent_cost".into(), FieldValue::Num(40.0)),
            ("outcome".into(), "reject".into()),
            ("reason".into(), "costlier than incumbent".into()),
        ],
    );
    let child = rec.begin("optimizer", "generatePT");
    rec.counter_add("optimizer.candidates", 3.0);
    rec.end(child);
    rec.end(root);
    // A synthesized operator span with explicit timestamps.
    rec.add_span(
        "exec",
        "Scan",
        root,
        10,
        500,
        vec![
            ("track".into(), "op.Scan#0".into()),
            ("rows_out".into(), FieldValue::Num(12.0)),
        ],
    );
    rec.counter_add("exec.io.page_reads", 7.0);
    rec.finish()
}

#[test]
fn recorder_nesting_and_scoping() {
    let rec = Recorder::new();
    let a = rec.begin("x", "a");
    let b = rec.begin("x", "b");
    rec.event("x", "ev", vec![]);
    // Ending `a` closes the straggler `b` too (stack discipline).
    rec.end(a);
    let t = rec.finish();
    assert_eq!(t.spans.len(), 2);
    assert_eq!(t.spans[0].parent, None);
    assert_eq!(t.spans[1].parent, Some(SpanId(1)));
    assert!(t.spans.iter().all(|s| s.end_ns.is_some()));
    assert_eq!(t.events[0].span, Some(b.unwrap()));
    // Child interval inside parent interval.
    assert!(t.spans[1].start_ns >= t.spans[0].start_ns);
    assert!(t.spans[1].end_ns.unwrap() <= t.spans[0].end_ns.unwrap());
}

#[test]
fn disabled_recorder_is_inert() {
    let rec = Recorder::disabled();
    assert!(!rec.enabled());
    assert_eq!(rec.begin("x", "a"), None);
    rec.event("x", "ev", vec![]);
    rec.counter_add("c", 1.0);
    let t = rec.finish();
    assert_eq!(t, Trace::default());
}

#[test]
fn jsonl_round_trip_is_exact() {
    let trace = sample_trace();
    let jsonl = trace.to_jsonl();
    let back = Trace::from_jsonl(&jsonl).expect("parse back");
    assert_eq!(trace, back);
    // Serialize → parse → serialize is a fixed point.
    assert_eq!(jsonl, back.to_jsonl());
    // Header carries the schema tag.
    let first = jsonl.lines().next().unwrap();
    assert!(first.contains("\"schema\":\"oorq-trace\""));
    assert!(first.contains("\"version\":1"));
}

#[test]
fn jsonl_rejects_schema_drift() {
    let trace = sample_trace();
    let jsonl = trace.to_jsonl();
    let drifted = jsonl.replacen("\"version\":1", "\"version\":999", 1);
    assert!(Trace::from_jsonl(&drifted).is_err());
    let wrong = jsonl.replacen("oorq-trace", "other-schema", 1);
    assert!(Trace::from_jsonl(&wrong).is_err());
    assert!(Trace::from_jsonl("").is_err());
}

#[test]
fn jsonl_preserves_string_escapes() {
    let rec = Recorder::new();
    let s = rec.begin("x", "weird \"name\"\nwith\tescapes");
    rec.span_fields(
        s,
        vec![(
            "note".into(),
            FieldValue::Str("π ≈ 3.14159; cost < ∞".into()),
        )],
    );
    rec.end(s);
    let trace = rec.finish();
    let back = Trace::from_jsonl(&trace.to_jsonl()).expect("parse back");
    assert_eq!(trace, back);
}

#[test]
fn chrome_trace_is_valid_and_balanced() {
    let trace = sample_trace();
    let chrome = trace.to_chrome();
    let summary = check_chrome_trace(&chrome).expect("valid chrome trace");
    // 2 stack spans → 2 B/E pairs; 1 synthesized span → 1 X event.
    assert_eq!(summary.duration_pairs, 2);
    assert_eq!(summary.complete_events, 1);
    assert_eq!(summary.counter_samples, 2);
    assert_eq!(summary.instant_events, 1);
}

#[test]
fn chrome_checker_catches_violations() {
    // Unbalanced: B without E.
    let bad = r#"{"traceEvents":[{"name":"a","cat":"x","ph":"B","ts":0,"pid":1,"tid":1}],"otherData":{"schema":"oorq-trace","version":1}}"#;
    assert!(check_chrome_trace(bad)
        .unwrap_err()
        .contains("never closed"));
    // E without B.
    let bad = r#"{"traceEvents":[{"ph":"E","ts":0,"pid":1,"tid":1}],"otherData":{"schema":"oorq-trace","version":1}}"#;
    assert!(check_chrome_trace(bad).unwrap_err().contains("no open"));
    // Non-monotone ts.
    let bad = r#"{"traceEvents":[{"name":"a","cat":"x","ph":"B","ts":5,"pid":1,"tid":1},{"ph":"E","ts":3,"pid":1,"tid":1}],"otherData":{"schema":"oorq-trace","version":1}}"#;
    assert!(check_chrome_trace(bad)
        .unwrap_err()
        .contains("non-monotone"));
    // Schema drift.
    let bad = r#"{"traceEvents":[],"otherData":{"schema":"oorq-trace","version":2}}"#;
    assert!(check_chrome_trace(bad).unwrap_err().contains("drift"));
    // Not JSON at all.
    assert!(check_chrome_trace("not json").is_err());
}

#[test]
fn folded_stacks_weight_exclusive_time() {
    let trace = sample_trace();
    let folded = trace.to_folded();
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("path weight");
        assert!(!path.is_empty());
        assert!(weight.parse::<u64>().expect("numeric weight") > 0);
    }
    // The root frame appears as a path prefix.
    assert!(folded.contains("optimizer:optimize"));
}

#[test]
fn search_table_lists_rejections() {
    let trace = sample_trace();
    let table = search_space_table(&trace);
    assert!(table.contains("| generatePT | 1 | 1 | 0 | 0 | 1 | 0 |"));
    assert!(table.contains("Rejected candidates"));
    assert!(table.contains("0xdeadbeef"));
    assert!(table.contains("costlier than incumbent"));
    // No candidate events → empty table.
    assert_eq!(search_space_table(&Trace::default()), "");
}

#[test]
fn json_parser_round_trips() {
    for src in [
        r#"{"a":1,"b":[true,false,null],"c":"x\ny","d":-2.5,"e":{}}"#,
        r#"[1e3,0.25,"é😀"]"#,
        "42",
        r#""""#,
    ] {
        let v = Json::parse(src).expect("parse");
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).expect("reparse"), v);
    }
    assert!(Json::parse("{").is_err());
    assert!(Json::parse("1 2").is_err());
    assert!(Json::parse("'single'").is_err());
}
