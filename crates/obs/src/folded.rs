//! Folded-stacks sink: `root;child;grandchild <weight>` lines, one per
//! distinct span path, weighted by *exclusive* wall time in nanoseconds
//! — the input format of Brendan Gregg's `flamegraph.pl` and compatible
//! tools (e.g. `inferno`).

use crate::recorder::{Span, Trace};
use std::collections::BTreeMap;

impl Trace {
    /// Render the span tree as folded stacks. Paths with zero exclusive
    /// time are omitted; duplicate paths (e.g. the same operator opened
    /// in several fixpoint iterations) are summed.
    pub fn to_folded(&self) -> String {
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        for root in self.children_of(None) {
            self.fold_into(root, String::new(), &mut acc, &mut order);
        }
        let mut out = String::new();
        for path in order {
            let w = acc[&path];
            if w > 0 {
                out.push_str(&path);
                out.push(' ');
                out.push_str(&w.to_string());
                out.push('\n');
            }
        }
        out
    }

    fn fold_into(
        &self,
        span: &Span,
        prefix: String,
        acc: &mut BTreeMap<String, u64>,
        order: &mut Vec<String>,
    ) {
        let path = if prefix.is_empty() {
            frame_name(span)
        } else {
            format!("{prefix};{}", frame_name(span))
        };
        let children = self.children_of(Some(span.id));
        let child_sum: u64 = children.iter().map(|c| c.dur_ns()).sum();
        // Child brackets are subintervals of the parent's, so this only
        // saturates on clock pathologies.
        let exclusive = span.dur_ns().saturating_sub(child_sum);
        if !acc.contains_key(&path) {
            order.push(path.clone());
        }
        *acc.entry(path.clone()).or_insert(0) += exclusive;
        for child in children {
            self.fold_into(child, path.clone(), acc, order);
        }
    }
}

/// Frame label: `cat:name`, with `;` (the path separator) and spaces
/// (the weight separator) made safe.
fn frame_name(span: &Span) -> String {
    format!("{}:{}", span.cat, span.name)
        .replace(';', ",")
        .replace(' ', "_")
}
