//! Chrome trace-event sink (`trace.json`, loadable in Perfetto or
//! `chrome://tracing`) and the in-repo validity checker CI runs on it.
//!
//! Mapping:
//! - stack-disciplined spans (opened via [`Recorder::begin`]) become
//!   balanced `B`/`E` pairs on tid 1 — they are strictly nested by
//!   construction, which the trace-event stack model requires;
//! - synthesized spans (explicit timestamps via [`Recorder::add_span`],
//!   e.g. per-operator executor spans whose brackets interleave) become
//!   `X` complete events, one tid per span so overlapping siblings
//!   never violate `B`/`E` nesting;
//! - the counters registry becomes one `C` sample per counter;
//! - thread names are emitted as `M` metadata so Perfetto labels the
//!   per-operator tracks.
//!
//! [`Recorder::begin`]: crate::Recorder::begin
//! [`Recorder::add_span`]: crate::Recorder::add_span

use crate::json::Json;
use crate::recorder::{FieldValue, Span, Trace};
use std::collections::BTreeMap;

/// Process id used for every emitted trace event.
const PID: u64 = 1;
/// Thread id carrying the stack-disciplined spans.
const MAIN_TID: u64 = 1;
/// First tid handed to synthesized (per-operator) spans.
const SYNTH_TID_BASE: u64 = 100;

fn args_json(fields: &[(String, FieldValue)]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    FieldValue::Str(s) => Json::Str(s.clone()),
                    FieldValue::Num(n) => Json::Num(*n),
                    FieldValue::Bool(b) => Json::Bool(*b),
                };
                (k.clone(), jv)
            })
            .collect(),
    )
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Whether a span was opened on the recorder stack (strictly nested) or
/// synthesized with explicit timestamps. Stack spans have ids assigned
/// in open order interleaved with their children; we tell them apart by
/// the recording convention: synthesized spans carry a `track` field.
fn is_synth(span: &Span) -> bool {
    span.field("track").is_some()
}

impl Trace {
    /// Render the trace as a Chrome trace-event JSON document.
    pub fn to_chrome(&self) -> String {
        let mut events: Vec<Json> = Vec::new();
        let mut meta: Vec<Json> = Vec::new();

        meta.push(thread_name_meta(MAIN_TID, "main"));

        // Stack spans: B/E pairs on the main tid. Stack discipline means
        // ids are assigned in open order and the spans open when a new
        // span begins are exactly its ancestors, so replaying spans in id
        // order with a stack reconstructs the exact execution
        // interleaving — balanced and properly nested by construction,
        // with no timestamp tie-breaking hazards.
        let emit_e = |span: &Span| {
            Json::Obj(vec![
                ("ph".into(), Json::Str("E".into())),
                (
                    "ts".into(),
                    Json::Num(us(span.end_ns.unwrap_or(span.start_ns))),
                ),
                ("pid".into(), Json::Num(PID as f64)),
                ("tid".into(), Json::Num(MAIN_TID as f64)),
            ])
        };
        let mut open: Vec<&Span> = Vec::new();
        for span in self.spans.iter().filter(|s| !is_synth(s)) {
            // Close spans until the top of the stack is this span's
            // parent (or the stack is empty for a root span).
            while open.last().map(|t| t.id) != span.parent {
                match open.pop() {
                    Some(t) => events.push(emit_e(t)),
                    None => break, // parent not on stack: treat as root
                }
            }
            let mut b_fields = vec![
                ("name".into(), Json::Str(span.name.clone())),
                ("cat".into(), Json::Str(span.cat.clone())),
                ("ph".into(), Json::Str("B".into())),
                ("ts".into(), Json::Num(us(span.start_ns))),
                ("pid".into(), Json::Num(PID as f64)),
                ("tid".into(), Json::Num(MAIN_TID as f64)),
            ];
            if !span.fields.is_empty() {
                b_fields.push(("args".into(), args_json(&span.fields)));
            }
            events.push(Json::Obj(b_fields));
            open.push(span);
        }
        while let Some(t) = open.pop() {
            events.push(emit_e(t));
        }

        // Synthesized spans: one X complete event per span, one tid per
        // track name so interleaved operator brackets never collide.
        let mut track_tids: BTreeMap<String, u64> = BTreeMap::new();
        for span in self.spans.iter().filter(|s| is_synth(s)) {
            let track = span
                .field("track")
                .and_then(FieldValue::as_str)
                .unwrap_or("synth")
                .to_string();
            let next_tid = SYNTH_TID_BASE + track_tids.len() as u64;
            let tid = *track_tids.entry(track.clone()).or_insert(next_tid);
            let end_ns = span.end_ns.unwrap_or(span.start_ns);
            let mut x_fields = vec![
                ("name".into(), Json::Str(span.name.clone())),
                ("cat".into(), Json::Str(span.cat.clone())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Num(us(span.start_ns))),
                (
                    "dur".into(),
                    Json::Num(us(end_ns.saturating_sub(span.start_ns))),
                ),
                ("pid".into(), Json::Num(PID as f64)),
                ("tid".into(), Json::Num(tid as f64)),
            ];
            if !span.fields.is_empty() {
                x_fields.push(("args".into(), args_json(&span.fields)));
            }
            events.push(Json::Obj(x_fields));
        }
        for (track, tid) in &track_tids {
            meta.push(thread_name_meta(*tid, track));
        }

        // Counters: one C sample each at the end of the trace so the
        // totals are visible as counter tracks.
        let t_end = self
            .spans
            .iter()
            .filter_map(|s| s.end_ns)
            .chain(self.events.iter().map(|e| e.ts_ns))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("ph".into(), Json::Str("C".into())),
                ("ts".into(), Json::Num(us(t_end))),
                ("pid".into(), Json::Num(PID as f64)),
                (
                    "args".into(),
                    Json::Obj(vec![("value".into(), Json::Num(*value))]),
                ),
            ]));
        }

        // Point events become instant ('i') events on the main track.
        for e in &self.events {
            let mut i_fields = vec![
                ("name".into(), Json::Str(e.name.clone())),
                ("cat".into(), Json::Str(e.cat.clone())),
                ("ph".into(), Json::Str("i".into())),
                ("ts".into(), Json::Num(us(e.ts_ns))),
                ("pid".into(), Json::Num(PID as f64)),
                ("tid".into(), Json::Num(MAIN_TID as f64)),
                ("s".into(), Json::Str("t".into())),
            ];
            if !e.fields.is_empty() {
                i_fields.push(("args".into(), args_json(&e.fields)));
            }
            events.push(Json::Obj(i_fields));
        }

        let mut all = meta;
        all.extend(events);
        let doc = Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(all)),
            ("displayTimeUnit".into(), Json::Str("ns".into())),
            (
                "otherData".into(),
                Json::Obj(vec![
                    ("schema".into(), Json::Str(crate::SCHEMA_NAME.into())),
                    ("version".into(), Json::Num(crate::SCHEMA_VERSION as f64)),
                ]),
            ),
        ]);
        doc.render()
    }
}

fn thread_name_meta(tid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str("thread_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(PID as f64)),
        ("tid".into(), Json::Num(tid as f64)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(name.into()))]),
        ),
    ])
}

/// What [`check_chrome_trace`] verified, for reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeSummary {
    /// Total trace events in the document.
    pub total_events: usize,
    /// `B`/`E` pairs validated (count of `B` events).
    pub duration_pairs: usize,
    /// `X` complete events.
    pub complete_events: usize,
    /// `C` counter samples.
    pub counter_samples: usize,
    /// `i`/`I` instant events.
    pub instant_events: usize,
}

/// Validate a Chrome trace-event JSON document: parses, has a
/// `traceEvents` array, every `B` has a matching `E` on the same
/// pid/tid (balanced, properly nested), timestamps within each tid's
/// duration-event stream are monotone, `X` events have non-negative
/// `dur`, and the schema tag matches this crate. Returns a summary of
/// what was checked or the first violation found.
pub fn check_chrome_trace(src: &str) -> Result<ChromeSummary, String> {
    let doc = Json::parse(src).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    let schema = doc
        .get("otherData")
        .and_then(|o| o.get("schema"))
        .and_then(Json::as_str)
        .ok_or("missing `otherData.schema` tag")?;
    if schema != crate::SCHEMA_NAME {
        return Err(format!(
            "schema drift: `{schema}` != `{}`",
            crate::SCHEMA_NAME
        ));
    }
    let version = doc
        .get("otherData")
        .and_then(|o| o.get("version"))
        .and_then(Json::as_num)
        .ok_or("missing `otherData.version` tag")?;
    if version != crate::SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: version {version} != {}",
            crate::SCHEMA_VERSION
        ));
    }

    let mut summary = ChromeSummary {
        total_events: events.len(),
        ..Default::default()
    };
    // Per-(pid,tid): open B stack and last duration-event timestamp.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        let pid = ev.get("pid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let key = (pid, tid);
        let ts = ev.get("ts").and_then(Json::as_num);

        match ph {
            "B" => {
                let ts = ts.ok_or_else(|| format!("event {i}: `B` missing `ts`"))?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts {ts}"));
                }
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: non-monotone ts on tid {tid}: {ts} < {prev}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: `B` missing `name`"))?;
                stacks.entry(key).or_default().push(name.to_string());
                summary.duration_pairs += 1;
            }
            "E" => {
                let ts = ts.ok_or_else(|| format!("event {i}: `E` missing `ts`"))?;
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: non-monotone ts on tid {tid}: {ts} < {prev}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
                let stack = stacks.entry(key).or_default();
                if stack.pop().is_none() {
                    return Err(format!("event {i}: `E` with no open `B` on tid {tid}"));
                }
            }
            "X" => {
                let ts = ts.ok_or_else(|| format!("event {i}: `X` missing `ts`"))?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts {ts}"));
                }
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: `X` missing `dur`"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
                summary.complete_events += 1;
            }
            "C" => {
                ts.ok_or_else(|| format!("event {i}: `C` missing `ts`"))?;
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: `C` missing args.value"))?;
                summary.counter_samples += 1;
            }
            "i" | "I" => {
                ts.ok_or_else(|| format!("event {i}: instant missing `ts`"))?;
                summary.instant_events += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }

    for ((_, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unbalanced trace: `B` for `{open}` on tid {tid} never closed"
            ));
        }
    }
    Ok(summary)
}
