//! Conceptual schema model for object-oriented recursive queries.
//!
//! This crate implements Section 2.1 of Lanzelotte, Valduriez & Zaït
//! (SIGMOD 1992): a conceptual model of *classes* (whose instances are
//! objects with identity) and *relations* (whose instances are values),
//! with types built from atomic types and the tuple/set/list constructors.
//! Classes support single inheritance (`isa`), *inverse* attribute pairs
//! (e.g. `Composition.author` inverse of `Composer.works`) and methods as
//! *computed attributes* carrying an evaluation-cost hint used by the cost
//! model.
//!
//! The central artifact is the [`Catalog`]: a validated, name-resolved view
//! of a schema in which every class has a flattened attribute layout
//! (inherited attributes first) so that the storage layer can lay objects
//! out as attribute vectors.

mod catalog;
mod error;
mod types;

pub use catalog::{
    AttrId, Attribute, AttributeKind, Catalog, ClassCat, ClassId, RelationCat, RelationId,
    SchemaBuilder, ViewKind,
};
pub use error::SchemaError;
pub use types::{
    AtomicType, AttributeDef, AttributeDefKind, ClassDef, Field, RelationDef, ResolvedType,
    TypeExpr,
};

#[cfg(test)]
mod tests;
