//! Unit tests for the conceptual schema (Figure 1 of the paper).

use crate::*;

/// Build the paper's Figure 1 schema: Person, Composer isa Person,
/// Composition, Instrument, and the Play relation, plus the Influencer
/// view declaration of §2.3.
pub(crate) fn music_catalog() -> Catalog {
    SchemaBuilder::new()
        .class(
            ClassDef::new("Person")
                .attr(AttributeDef::stored("name", TypeExpr::text()))
                .attr(AttributeDef::stored("birth_year", TypeExpr::int()))
                .attr(AttributeDef::computed("age", TypeExpr::int(), 2.0)),
        )
        .class(
            ClassDef::new("Composer")
                .isa("Person")
                .attr(AttributeDef::stored("master", TypeExpr::class("Composer")))
                .attr(AttributeDef::stored(
                    "works",
                    TypeExpr::set(TypeExpr::class("Composition")),
                )),
        )
        .class(
            ClassDef::new("Composition")
                .attr(AttributeDef::stored("title", TypeExpr::text()))
                .attr(
                    AttributeDef::stored("author", TypeExpr::class("Composer"))
                        .inverse_of("Composer", "works"),
                )
                .attr(AttributeDef::stored(
                    "instruments",
                    TypeExpr::set(TypeExpr::class("Instrument")),
                )),
        )
        .class(ClassDef::new("Instrument").attr(AttributeDef::stored("name", TypeExpr::text())))
        .relation(RelationDef::new(
            "Play",
            TypeExpr::Tuple(vec![
                Field::new("who", TypeExpr::class("Person")),
                Field::new("instrument", TypeExpr::class("Instrument")),
            ]),
        ))
        .view(RelationDef::new(
            "Influencer",
            TypeExpr::Tuple(vec![
                Field::new("master", TypeExpr::class("Composer")),
                Field::new("disciple", TypeExpr::class("Composer")),
                Field::new("gen", TypeExpr::int()),
            ]),
        ))
        .build()
        .expect("figure 1 schema must validate")
}

#[test]
fn figure1_schema_builds() {
    let cat = music_catalog();
    assert_eq!(cat.classes().len(), 4);
    assert_eq!(cat.relations().len(), 2);
}

#[test]
fn inheritance_flattens_attributes() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let names: Vec<_> = cat
        .class(composer)
        .attrs
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    // Inherited (Person) attributes first, then own.
    assert_eq!(names, ["name", "birth_year", "age", "master", "works"]);
    let person = cat.class_by_name("Person").unwrap();
    assert!(cat.is_subclass_of(composer, person));
    assert!(!cat.is_subclass_of(person, composer));
}

#[test]
fn computed_attribute_carries_cost() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let (_, age) = cat.attr(composer, "age").unwrap();
    assert_eq!(age.kind, AttributeKind::Computed { eval_cost: 2.0 });
    let person = cat.class_by_name("Person").unwrap();
    assert_eq!(age.declared_in, person);
}

#[test]
fn inverse_pair_is_wired_both_ways() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let composition = cat.class_by_name("Composition").unwrap();
    let (works_id, works) = cat.attr(composer, "works").unwrap();
    let (author_id, author) = cat.attr(composition, "author").unwrap();
    assert_eq!(works.inverse, Some((composition, author_id)));
    assert_eq!(author.inverse, Some((composer, works_id)));
}

#[test]
fn referenced_class_sees_through_collections() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let composition = cat.class_by_name("Composition").unwrap();
    let (_, works) = cat.attr(composer, "works").unwrap();
    assert_eq!(works.ty.referenced_class(), Some(composition));
    assert!(works.ty.is_collection());
    let (_, master) = cat.attr(composer, "master").unwrap();
    assert_eq!(master.ty.referenced_class(), Some(composer));
    assert!(!master.ty.is_collection());
}

#[test]
fn view_kind_is_recorded() {
    let cat = music_catalog();
    let play = cat.relation_by_name("Play").unwrap();
    let inf = cat.relation_by_name("Influencer").unwrap();
    assert_eq!(cat.relation(play).kind, ViewKind::Stored);
    assert_eq!(cat.relation(inf).kind, ViewKind::View);
    assert_eq!(cat.relation(inf).field_index("gen"), Some(2));
}

#[test]
fn duplicate_class_name_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A"))
        .class(ClassDef::new("A"))
        .build()
        .unwrap_err();
    assert_eq!(err, SchemaError::DuplicateName("A".into()));
}

#[test]
fn class_relation_name_clash_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A"))
        .relation(RelationDef::new("A", TypeExpr::Tuple(vec![])))
        .build()
        .unwrap_err();
    assert_eq!(err, SchemaError::DuplicateName("A".into()));
}

#[test]
fn inheritance_cycle_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A").isa("B"))
        .class(ClassDef::new("B").isa("A"))
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::InheritanceCycle(_)));
}

#[test]
fn unknown_superclass_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A").isa("Nope"))
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::UnknownSuperclass { .. }));
}

#[test]
fn unknown_class_in_attribute_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A").attr(AttributeDef::stored("x", TypeExpr::class("Nope"))))
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::UnknownClass { .. }));
}

#[test]
fn shadowing_inherited_attribute_rejected() {
    let err = SchemaBuilder::new()
        .class(ClassDef::new("A").attr(AttributeDef::stored("x", TypeExpr::int())))
        .class(
            ClassDef::new("B")
                .isa("A")
                .attr(AttributeDef::stored("x", TypeExpr::int())),
        )
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::DuplicateAttribute { .. }));
}

#[test]
fn relation_must_be_tuple() {
    let err = SchemaBuilder::new()
        .relation(RelationDef::new("R", TypeExpr::int()))
        .build()
        .unwrap_err();
    assert_eq!(err, SchemaError::RelationNotTuple("R".into()));
}

#[test]
fn bad_inverse_rejected() {
    let err = SchemaBuilder::new()
        .class(
            ClassDef::new("A")
                .attr(AttributeDef::stored("x", TypeExpr::class("A")).inverse_of("A", "missing")),
        )
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::BadInverse { .. }));
}

#[test]
fn inverse_type_mismatch_rejected() {
    // A.x : A declared inverse of A.y : int — y references no class.
    let err = SchemaBuilder::new()
        .class(
            ClassDef::new("A")
                .attr(AttributeDef::stored("x", TypeExpr::class("A")).inverse_of("A", "y"))
                .attr(AttributeDef::stored("y", TypeExpr::int())),
        )
        .build()
        .unwrap_err();
    assert!(matches!(err, SchemaError::InverseTypeMismatch { .. }));
}

#[test]
fn type_display_matches_paper_notation() {
    let t = TypeExpr::Tuple(vec![
        Field::new("title", TypeExpr::text()),
        Field::new("instruments", TypeExpr::set(TypeExpr::class("Instrument"))),
        Field::new("movements", TypeExpr::list(TypeExpr::int())),
    ]);
    assert_eq!(
        t.to_string(),
        "[title: string, instruments: {Instrument}, movements: <int>]"
    );
}

#[test]
fn subclasses_of_includes_self_and_descendants() {
    let cat = music_catalog();
    let person = cat.class_by_name("Person").unwrap();
    let composer = cat.class_by_name("Composer").unwrap();
    let subs = cat.subclasses_of(person);
    assert!(subs.contains(&person) && subs.contains(&composer));
    assert_eq!(cat.subclasses_of(composer), vec![composer]);
}

#[test]
fn error_display_is_informative() {
    let e = SchemaError::UnknownSuperclass {
        class: "B".into(),
        superclass: "A".into(),
    };
    assert!(e.to_string().contains("unknown superclass"));
    let e = SchemaError::NotFound("X".into());
    assert!(e.to_string().contains("X"));
}
