//! Schema validation errors.

use std::fmt;

/// Errors raised while building or validating a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two classes/relations/views share a name.
    DuplicateName(String),
    /// A class references an unknown superclass.
    UnknownSuperclass { class: String, superclass: String },
    /// The `isa` hierarchy contains a cycle.
    InheritanceCycle(String),
    /// A type expression references an unknown class.
    UnknownClass { context: String, class: String },
    /// Two attributes of the same (flattened) class share a name.
    DuplicateAttribute { class: String, attr: String },
    /// An inverse declaration points at a missing class or attribute.
    BadInverse {
        class: String,
        attr: String,
        detail: String,
    },
    /// The two sides of an inverse pair have incompatible types.
    InverseTypeMismatch { class: String, attr: String },
    /// A relation's type is not a tuple.
    RelationNotTuple(String),
    /// A name was looked up but does not exist.
    NotFound(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateName(n) => write!(f, "duplicate schema name `{n}`"),
            SchemaError::UnknownSuperclass { class, superclass } => {
                write!(f, "class `{class}`: unknown superclass `{superclass}`")
            }
            SchemaError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            SchemaError::UnknownClass { context, class } => {
                write!(f, "{context}: unknown class `{class}`")
            }
            SchemaError::DuplicateAttribute { class, attr } => {
                write!(f, "class `{class}`: duplicate attribute `{attr}`")
            }
            SchemaError::BadInverse {
                class,
                attr,
                detail,
            } => {
                write!(f, "inverse on `{class}.{attr}`: {detail}")
            }
            SchemaError::InverseTypeMismatch { class, attr } => {
                write!(
                    f,
                    "inverse on `{class}.{attr}`: type mismatch with its partner"
                )
            }
            SchemaError::RelationNotTuple(r) => {
                write!(f, "relation `{r}` must have a tuple type")
            }
            SchemaError::NotFound(n) => write!(f, "schema name `{n}` not found"),
        }
    }
}

impl std::error::Error for SchemaError {}
