//! The validated, name-resolved schema catalog.

use std::collections::HashMap;
use std::fmt;

use crate::error::SchemaError;
use crate::types::{AttributeDefKind, ClassDef, RelationDef, ResolvedType, TypeExpr};

/// Identifier of a class in a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifier of a relation (or view) in a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

/// Index of an attribute within a class's *flattened* layout
/// (inherited attributes first, in declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Whether a relation name denotes stored facts or a (possibly recursive)
/// view whose definition lives in the query layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Stored extension.
    Stored,
    /// Derived: defined by a query (e.g. the paper's `Influencer`).
    View,
}

/// How an attribute is realized (resolved form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeKind {
    /// A stored attribute.
    Stored,
    /// A method seen as a computed attribute, with its invocation cost.
    Computed {
        /// Estimated CPU cost of one invocation.
        eval_cost: f64,
    },
}

/// A resolved attribute of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Resolved type.
    pub ty: ResolvedType,
    /// Stored or computed.
    pub kind: AttributeKind,
    /// The class that *declared* this attribute (may be a superclass of
    /// the class whose layout contains it).
    pub declared_in: ClassId,
    /// The other side of an inverse pair, if any.
    pub inverse: Option<(ClassId, AttrId)>,
}

/// A resolved class with its flattened attribute layout.
#[derive(Debug, Clone)]
pub struct ClassCat {
    /// Class name.
    pub name: String,
    /// Direct superclass, if any.
    pub isa: Option<ClassId>,
    /// Flattened attributes: inherited first, then own.
    pub attrs: Vec<Attribute>,
}

/// A resolved relation or view.
#[derive(Debug, Clone)]
pub struct RelationCat {
    /// Relation name.
    pub name: String,
    /// Row type (always a tuple).
    pub fields: Vec<(String, ResolvedType)>,
    /// Stored or view.
    pub kind: ViewKind,
}

impl RelationCat {
    /// Index of the named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }
}

/// A validated conceptual schema.
#[derive(Debug, Clone)]
pub struct Catalog {
    classes: Vec<ClassCat>,
    relations: Vec<RelationCat>,
    class_names: HashMap<String, ClassId>,
    relation_names: HashMap<String, RelationId>,
}

impl Catalog {
    /// All classes, in id order.
    pub fn classes(&self) -> &[ClassCat] {
        &self.classes
    }

    /// All relations (and views), in id order.
    pub fn relations(&self) -> &[RelationCat] {
        &self.relations
    }

    /// Class by id. Panics on an id from another catalog.
    pub fn class(&self, id: ClassId) -> &ClassCat {
        &self.classes[id.0 as usize]
    }

    /// Relation by id. Panics on an id from another catalog.
    pub fn relation(&self, id: RelationId) -> &RelationCat {
        &self.relations[id.0 as usize]
    }

    /// Look a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// Look a relation up by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_names.get(name).copied()
    }

    /// Resolve an attribute by name in a class's flattened layout.
    pub fn attr(&self, class: ClassId, name: &str) -> Option<(AttrId, &Attribute)> {
        self.class(class)
            .attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| (AttrId(i as u16), &self.class(class).attrs[i]))
    }

    /// Attribute by id.
    pub fn attribute(&self, class: ClassId, attr: AttrId) -> &Attribute {
        &self.class(class).attrs[attr.0 as usize]
    }

    /// True iff `sub` equals `sup` or is a (transitive) subclass of it.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).isa;
        }
        false
    }

    /// All classes that are `cls` or a transitive subclass of it.
    pub fn subclasses_of(&self, cls: ClassId) -> Vec<ClassId> {
        (0..self.classes.len() as u32)
            .map(ClassId)
            .filter(|&c| self.is_subclass_of(c, cls))
            .collect()
    }
}

/// Builder assembling and validating a [`Catalog`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    classes: Vec<ClassDef>,
    relations: Vec<(RelationDef, ViewKind)>,
}

impl SchemaBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a class definition.
    pub fn class(mut self, def: ClassDef) -> Self {
        self.classes.push(def);
        self
    }

    /// Add a stored relation definition.
    pub fn relation(mut self, def: RelationDef) -> Self {
        self.relations.push((def, ViewKind::Stored));
        self
    }

    /// Declare a (possibly recursive) view with the given row type. The
    /// view's defining query lives in the query layer; the catalog only
    /// knows its name and type (e.g. the paper's `Influencer`).
    pub fn view(mut self, def: RelationDef) -> Self {
        self.relations.push((def, ViewKind::View));
        self
    }

    /// Validate and build the catalog.
    pub fn build(self) -> Result<Catalog, SchemaError> {
        // 1. Register names, checking global uniqueness.
        let mut class_names = HashMap::new();
        for (i, c) in self.classes.iter().enumerate() {
            if class_names
                .insert(c.name.clone(), ClassId(i as u32))
                .is_some()
            {
                return Err(SchemaError::DuplicateName(c.name.clone()));
            }
        }
        let mut relation_names = HashMap::new();
        for (i, (r, _)) in self.relations.iter().enumerate() {
            if class_names.contains_key(&r.name)
                || relation_names
                    .insert(r.name.clone(), RelationId(i as u32))
                    .is_some()
            {
                return Err(SchemaError::DuplicateName(r.name.clone()));
            }
        }

        // 2. Resolve superclasses and detect cycles.
        let mut isa: Vec<Option<ClassId>> = Vec::with_capacity(self.classes.len());
        for c in &self.classes {
            match &c.isa {
                None => isa.push(None),
                Some(p) => match class_names.get(p) {
                    Some(&pid) => isa.push(Some(pid)),
                    None => {
                        return Err(SchemaError::UnknownSuperclass {
                            class: c.name.clone(),
                            superclass: p.clone(),
                        })
                    }
                },
            }
        }
        for (i, c) in self.classes.iter().enumerate() {
            let mut seen = vec![false; self.classes.len()];
            let mut cur = Some(ClassId(i as u32));
            while let Some(id) = cur {
                if seen[id.0 as usize] {
                    return Err(SchemaError::InheritanceCycle(c.name.clone()));
                }
                seen[id.0 as usize] = true;
                cur = isa[id.0 as usize];
            }
        }

        let resolve = |ctx: &str, ty: &TypeExpr| -> Result<ResolvedType, SchemaError> {
            resolve_type(ctx, ty, &class_names)
        };

        // 3. Flatten attribute layouts, parent chain first.
        let mut classes: Vec<ClassCat> = Vec::with_capacity(self.classes.len());
        for (i, c) in self.classes.iter().enumerate() {
            let id = ClassId(i as u32);
            // Collect chain root-first.
            let mut chain = Vec::new();
            let mut cur = Some(id);
            while let Some(cid) = cur {
                chain.push(cid);
                cur = isa[cid.0 as usize];
            }
            chain.reverse();
            let mut attrs: Vec<Attribute> = Vec::new();
            for cid in chain {
                let def = &self.classes[cid.0 as usize];
                for a in &def.attributes {
                    if attrs.iter().any(|x| x.name == a.name) {
                        return Err(SchemaError::DuplicateAttribute {
                            class: c.name.clone(),
                            attr: a.name.clone(),
                        });
                    }
                    attrs.push(Attribute {
                        name: a.name.clone(),
                        ty: resolve(&format!("class `{}`", c.name), &a.ty)?,
                        kind: match a.kind {
                            AttributeDefKind::Stored => AttributeKind::Stored,
                            AttributeDefKind::Computed { eval_cost } => {
                                AttributeKind::Computed { eval_cost }
                            }
                        },
                        declared_in: cid,
                        inverse: None,
                    });
                }
            }
            classes.push(ClassCat {
                name: c.name.clone(),
                isa: isa[i],
                attrs,
            });
        }

        // 4. Relations.
        let mut relations = Vec::with_capacity(self.relations.len());
        for (r, kind) in &self.relations {
            let fields = match &r.ty {
                TypeExpr::Tuple(fs) => fs
                    .iter()
                    .map(|f| {
                        Ok((
                            f.name.clone(),
                            resolve(&format!("relation `{}`", r.name), &f.ty)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SchemaError>>()?,
                _ => return Err(SchemaError::RelationNotTuple(r.name.clone())),
            };
            relations.push(RelationCat {
                name: r.name.clone(),
                fields,
                kind: *kind,
            });
        }

        let mut catalog = Catalog {
            classes,
            relations,
            class_names,
            relation_names,
        };

        // 5. Wire up inverse pairs (declared on either side).
        let mut links: Vec<((ClassId, AttrId), (ClassId, AttrId))> = Vec::new();
        for (i, cdef) in self.classes.iter().enumerate() {
            let cid = ClassId(i as u32);
            for a in &cdef.attributes {
                if let Some((tc, ta)) = &a.inverse_of {
                    let (aid, _) = catalog.attr(cid, &a.name).expect("attr just built");
                    let tcid =
                        catalog
                            .class_by_name(tc)
                            .ok_or_else(|| SchemaError::BadInverse {
                                class: cdef.name.clone(),
                                attr: a.name.clone(),
                                detail: format!("unknown class `{tc}`"),
                            })?;
                    let (taid, tattr) =
                        catalog
                            .attr(tcid, ta)
                            .ok_or_else(|| SchemaError::BadInverse {
                                class: cdef.name.clone(),
                                attr: a.name.clone(),
                                detail: format!("unknown attribute `{tc}.{ta}`"),
                            })?;
                    // Type compatibility: each side must reference the other's
                    // class (modulo subclassing).
                    let this_attr = catalog.attribute(cid, aid);
                    let this_ref = this_attr.ty.referenced_class();
                    let that_ref = tattr.ty.referenced_class();
                    let ok = match (this_ref, that_ref) {
                        (Some(a_ref), Some(b_ref)) => {
                            (catalog.is_subclass_of(a_ref, tcid)
                                || catalog.is_subclass_of(tcid, a_ref))
                                && (catalog.is_subclass_of(b_ref, cid)
                                    || catalog.is_subclass_of(cid, b_ref))
                        }
                        _ => false,
                    };
                    if !ok {
                        return Err(SchemaError::InverseTypeMismatch {
                            class: cdef.name.clone(),
                            attr: a.name.clone(),
                        });
                    }
                    links.push(((cid, aid), (tcid, taid)));
                }
            }
        }
        for ((c1, a1), (c2, a2)) in links {
            catalog.classes[c1.0 as usize].attrs[a1.0 as usize].inverse = Some((c2, a2));
            catalog.classes[c2.0 as usize].attrs[a2.0 as usize].inverse = Some((c1, a1));
        }

        Ok(catalog)
    }
}

fn resolve_type(
    ctx: &str,
    ty: &TypeExpr,
    class_names: &HashMap<String, ClassId>,
) -> Result<ResolvedType, SchemaError> {
    Ok(match ty {
        TypeExpr::Atomic(a) => ResolvedType::Atomic(*a),
        TypeExpr::Class(name) => ResolvedType::Object(*class_names.get(name).ok_or_else(|| {
            SchemaError::UnknownClass {
                context: ctx.to_string(),
                class: name.clone(),
            }
        })?),
        TypeExpr::Tuple(fs) => ResolvedType::Tuple(
            fs.iter()
                .map(|f| Ok((f.name.clone(), resolve_type(ctx, &f.ty, class_names)?)))
                .collect::<Result<Vec<_>, SchemaError>>()?,
        ),
        TypeExpr::Set(e) => ResolvedType::Set(Box::new(resolve_type(ctx, e, class_names)?)),
        TypeExpr::List(e) => ResolvedType::List(Box::new(resolve_type(ctx, e, class_names)?)),
    })
}
