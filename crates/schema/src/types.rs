//! Type expressions of the conceptual model.

use std::fmt;

use crate::catalog::ClassId;

/// Atomic (printable, non-object) types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicType::Int => write!(f, "int"),
            AtomicType::Float => write!(f, "float"),
            AtomicType::Text => write!(f, "string"),
            AtomicType::Bool => write!(f, "bool"),
        }
    }
}

/// A named field of a tuple type.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: TypeExpr) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An *unresolved* type expression, as written in schema definitions.
///
/// Class references are by name and resolved by [`crate::SchemaBuilder`].
/// Following the paper, types are built from atomic types and the tuple
/// (`[]`), set (`{}`) and list (`<>`) constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// An atomic type.
    Atomic(AtomicType),
    /// A reference to a class by name; instances are object identifiers.
    Class(String),
    /// A tuple `[f1: T1, ..., fn: Tn]`.
    Tuple(Vec<Field>),
    /// A set `{T}`.
    Set(Box<TypeExpr>),
    /// A list `<T>`.
    List(Box<TypeExpr>),
}

impl TypeExpr {
    /// Shorthand for `TypeExpr::Atomic(AtomicType::Int)`.
    pub fn int() -> Self {
        TypeExpr::Atomic(AtomicType::Int)
    }
    /// Shorthand for `TypeExpr::Atomic(AtomicType::Float)`.
    pub fn float() -> Self {
        TypeExpr::Atomic(AtomicType::Float)
    }
    /// Shorthand for `TypeExpr::Atomic(AtomicType::Text)`.
    pub fn text() -> Self {
        TypeExpr::Atomic(AtomicType::Text)
    }
    /// Shorthand for `TypeExpr::Atomic(AtomicType::Bool)`.
    pub fn bool() -> Self {
        TypeExpr::Atomic(AtomicType::Bool)
    }
    /// Shorthand for a class reference.
    pub fn class(name: impl Into<String>) -> Self {
        TypeExpr::Class(name.into())
    }
    /// Shorthand for a set of the given element type.
    pub fn set(elem: TypeExpr) -> Self {
        TypeExpr::Set(Box::new(elem))
    }
    /// Shorthand for a list of the given element type.
    pub fn list(elem: TypeExpr) -> Self {
        TypeExpr::List(Box::new(elem))
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Atomic(a) => write!(f, "{a}"),
            TypeExpr::Class(c) => write!(f, "{c}"),
            TypeExpr::Tuple(fs) => {
                write!(f, "[")?;
                for (i, fd) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", fd.name, fd.ty)?;
                }
                write!(f, "]")
            }
            TypeExpr::Set(e) => write!(f, "{{{e}}}"),
            TypeExpr::List(e) => write!(f, "<{e}>"),
        }
    }
}

/// A *resolved* type: class names replaced by [`ClassId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ResolvedType {
    /// An atomic type.
    Atomic(AtomicType),
    /// An object of the given class (stored as an oid).
    Object(ClassId),
    /// A tuple of named fields.
    Tuple(Vec<(String, ResolvedType)>),
    /// A set.
    Set(Box<ResolvedType>),
    /// A list.
    List(Box<ResolvedType>),
}

impl ResolvedType {
    /// True when this type is atomic (no object references anywhere is a
    /// stronger property; this asks only about the top-level constructor).
    pub fn is_atomic(&self) -> bool {
        matches!(self, ResolvedType::Atomic(_))
    }

    /// If the type is an object or a collection of objects, return the
    /// referenced class. This is the notion of "attribute implemented by a
    /// class" used by the paper's `translateArc` action (the cases `Att: C`,
    /// `Att: {C}` and `Att: <C>`).
    pub fn referenced_class(&self) -> Option<ClassId> {
        match self {
            ResolvedType::Object(c) => Some(*c),
            ResolvedType::Set(inner) | ResolvedType::List(inner) => inner.referenced_class(),
            _ => None,
        }
    }

    /// True when the attribute is collection-valued (set or list).
    pub fn is_collection(&self) -> bool {
        matches!(self, ResolvedType::Set(_) | ResolvedType::List(_))
    }
}

/// How an attribute is realized.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeDefKind {
    /// A stored attribute.
    Stored,
    /// A method seen as a *computed attribute* (paper §2.1: "Methods are
    /// considered as computed attributes"). `eval_cost` is the estimated
    /// CPU cost of one invocation, in the same unit as predicate
    /// evaluation cost; it feeds the cost model.
    Computed {
        /// Estimated cost of one invocation.
        eval_cost: f64,
    },
}

/// Declaration of one attribute of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute name (unique within the class hierarchy).
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Stored or computed.
    pub kind: AttributeDefKind,
    /// `Some((class, attr))` when this attribute is declared
    /// `inverse of class.attr`.
    pub inverse_of: Option<(String, String)>,
}

impl AttributeDef {
    /// A stored attribute.
    pub fn stored(name: impl Into<String>, ty: TypeExpr) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
            kind: AttributeDefKind::Stored,
            inverse_of: None,
        }
    }

    /// A computed attribute (method) with an evaluation-cost hint.
    pub fn computed(name: impl Into<String>, ty: TypeExpr, eval_cost: f64) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
            kind: AttributeDefKind::Computed { eval_cost },
            inverse_of: None,
        }
    }

    /// Mark this attribute as the inverse of `class.attr`.
    pub fn inverse_of(mut self, class: impl Into<String>, attr: impl Into<String>) -> Self {
        self.inverse_of = Some((class.into(), attr.into()));
        self
    }
}

/// Declaration of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Optional superclass (`isa`).
    pub isa: Option<String>,
    /// Own (non-inherited) attributes.
    pub attributes: Vec<AttributeDef>,
}

impl ClassDef {
    /// A new class with no superclass and no attributes.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            isa: None,
            attributes: Vec::new(),
        }
    }

    /// Set the superclass.
    pub fn isa(mut self, parent: impl Into<String>) -> Self {
        self.isa = Some(parent.into());
        self
    }

    /// Add an attribute.
    pub fn attr(mut self, attr: AttributeDef) -> Self {
        self.attributes.push(attr);
        self
    }
}

/// Declaration of a relation (instances are values, not objects).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDef {
    /// Relation name.
    pub name: String,
    /// Row type; must be a tuple type.
    pub ty: TypeExpr,
}

impl RelationDef {
    /// A new relation with the given tuple type.
    pub fn new(name: impl Into<String>, ty: TypeExpr) -> Self {
        RelationDef {
            name: name.into(),
            ty,
        }
    }
}
