//! The optimizer pipeline of §4.1:
//!
//! ```text
//! optimize(Q) {
//!   rewrite(Q);
//!   for each (N, tree) of Q              translate(N, tree);
//!   for each SPJ(In, pred, out) of Q
//!     | (∀ N ∈ In) isaPT(N)             Q := ... ∪ {N ← generatePT(...)};
//!   repeat transformPT(Q) until saturation;
//! }
//! ```
//!
//! The condition `(∀ N ∈ In) isaPT(N)` forces bottom-up processing of
//! the query graph (so every cost is computable); `transformPT` is
//! postponed until a complete solution PT exists — a two-pass search
//! strategy \[IC90\] — so the decision of pushing selective operations
//! through recursion is taken in the presence of the cost model.

use std::collections::{BTreeSet, HashMap};

use oorq_cost::{CostModel, ParallelParams, PlanCost};
use oorq_pt::{ParallelSpec, PhysOp, Pt};
use oorq_query::{Expr, GraphTerm, NameRef, QArc, QueryGraph, SpjNode, TreeLabel};
use oorq_schema::{ResolvedType, ViewKind};

use crate::error::OptError;
use crate::generate::{generate_pt, SpjStrategy};
use crate::rewrite::rewrite;
use crate::trace::{OptTrace, Step, StrategyKind};
use crate::transform::{
    can_push, filter_action, neighbours, propagated_columns, push_join_action, rand_optimize_with,
    FixInfo, PushStrategy, RandConfig,
};
use crate::translate::{translate_arc, ArcChain, BasePlan};

/// When the static verifier (the `oorq-lint` passes) runs inside the
/// optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// Never.
    Off,
    /// In debug builds only (the default): every transformation result
    /// is checked, release builds pay nothing.
    #[default]
    Debug,
    /// Always, also in release builds.
    Strict,
}

impl VerifyLevel {
    /// Whether verification is active in this build.
    pub fn active(&self) -> bool {
        match self {
            VerifyLevel::Off => false,
            VerifyLevel::Debug => cfg!(debug_assertions),
            VerifyLevel::Strict => true,
        }
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Join-enumeration strategy for predicate nodes.
    pub spj_strategy: SpjStrategy,
    /// How pushing through recursion is decided.
    pub push: PushStrategy,
    /// Randomized re-optimization of the final plan, if any.
    pub rand: Option<RandConfig>,
    /// Cap on translated alternatives per arc.
    pub max_arc_alternatives: usize,
    /// Static verification of intermediate plans.
    pub verify: VerifyLevel,
    /// Worker-pool size available to the executor. `0` (the default)
    /// disables the parallel-placement pass entirely: the spec stays
    /// empty and every plan is fully serial. `>= 2` lets the optimizer
    /// choose a per-subtree degree of parallelism up to this cap.
    pub threads: u32,
    /// Overhead constants of the parallel cost term.
    pub parallel: ParallelParams,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            spj_strategy: SpjStrategy::Dp,
            push: PushStrategy::CostControlled,
            rand: Some(RandConfig::default()),
            max_arc_alternatives: 12,
            verify: VerifyLevel::default(),
            threads: 0,
            parallel: ParallelParams::default(),
        }
    }
}

impl OptimizerConfig {
    /// The paper's configuration (cost-controlled pushing, DP spj's,
    /// iterative-improvement re-optimization). The randomized phase
    /// runs with the explicitly seeded [`RandConfig::default`], so the
    /// strategy is deterministic.
    pub fn cost_controlled() -> Self {
        Self::default()
    }

    /// The deductive-DB baseline: always push when legal (rewriting
    /// heuristic, no cost comparison). No randomized phase — the
    /// baseline measures the heuristic alone, deterministically.
    pub fn deductive_heuristic() -> Self {
        OptimizerConfig {
            push: PushStrategy::AlwaysPush,
            rand: None,
            ..Self::default()
        }
    }

    /// Never push through recursion. No randomized phase.
    pub fn never_push() -> Self {
        OptimizerConfig {
            push: PushStrategy::NeverPush,
            rand: None,
            ..Self::default()
        }
    }

    /// The exhaustive \[KZ88\] baseline. No randomized phase.
    pub fn exhaustive() -> Self {
        OptimizerConfig {
            spj_strategy: SpjStrategy::Exhaustive,
            rand: None,
            ..Self::default()
        }
    }
}

/// One subtree the parallel-placement pass chose to parallelize.
#[derive(Debug, Clone)]
pub struct ParallelChoice {
    /// Pre-order PT node id of the subtree root (the
    /// [`oorq_pt::ParallelSpec`] key).
    pub pt_node: usize,
    /// Label of the subtree's physical root operator.
    pub label: String,
    /// Chosen degree of parallelism (number of workers, or Merge legs).
    pub workers: usize,
    /// Estimated serial cost of the subtree (abstract time units).
    pub serial_cost: f64,
    /// Predicted cost at the chosen DOP.
    pub parallel_cost: f64,
}

impl ParallelChoice {
    /// Predicted speedup of this subtree (serial over parallel cost).
    pub fn predicted_speedup(&self) -> f64 {
        if self.parallel_cost > 0.0 {
            self.serial_cost / self.parallel_cost
        } else {
            1.0
        }
    }
}

/// The result of an optimization.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen execution plan.
    pub pt: Pt,
    /// Its output column names.
    pub out_cols: Vec<String>,
    /// Its estimated cost (with per-node breakdown).
    pub cost: PlanCost,
    /// Per-PT-node degrees of parallelism (empty when
    /// [`OptimizerConfig::threads`] is below 2 or nothing pays);
    /// hand to the executor's `with_parallel`.
    pub parallel: ParallelSpec,
    /// The placement decisions behind `parallel`, with predicted costs
    /// (the predicted-vs-observed join key for the parallel report).
    pub parallel_choices: Vec<ParallelChoice>,
    /// The optimization trace (Figure 6 material).
    pub trace: OptTrace,
}

/// Arc-index → pushed replacement plan (with its typed output columns).
type PluggedOverrides = HashMap<usize, (Pt, Vec<(String, ResolvedType)>)>;

/// A planned name node.
#[derive(Debug, Clone)]
struct Planned {
    pt: Pt,
    out_cols: Vec<(String, ResolvedType)>,
    fix: Option<FixInfo>,
}

/// The cost-controlled optimizer.
pub struct Optimizer<'a> {
    /// The cost model (owned so temp shapes can be registered).
    pub model: CostModel<'a>,
    /// Configuration.
    pub config: OptimizerConfig,
    /// Structured-tracing recorder (disabled by default: every probe is
    /// one branch).
    pub obs: oorq_obs::Recorder,
    /// Aggregated metric series, pre-resolved at attach time (detached
    /// by default: every bump is one branch).
    metrics: crate::metrics::OptimizerMetrics,
    fresh: usize,
}

impl<'a> Optimizer<'a> {
    /// New optimizer over a cost model.
    pub fn new(model: CostModel<'a>, config: OptimizerConfig) -> Self {
        Optimizer {
            model,
            config,
            obs: oorq_obs::Recorder::disabled(),
            metrics: crate::metrics::OptimizerMetrics::default(),
            fresh: 0,
        }
    }

    /// Attach a structured-tracing recorder: spans per §4 step, one
    /// `candidate` event per enumerated plan, lint violations as events.
    pub fn with_recorder(mut self, obs: oorq_obs::Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Attach a metrics registry: every optimization publishes its wall
    /// time (`optimizer.optimize_ns`), and each enumerated candidate —
    /// arc beam, push decision, randomized-walk move — lands in one
    /// `optimizer.candidates.*` outcome bucket.
    pub fn with_metrics(mut self, registry: &oorq_obs::MetricsRegistry) -> Self {
        self.metrics = crate::metrics::OptimizerMetrics::resolve(registry);
        self
    }

    /// Optimize a query graph into an execution plan.
    pub fn optimize(&mut self, graph: &QueryGraph) -> Result<Optimized, OptError> {
        let catalog = self.model.catalog;
        let sp_opt = self.obs.begin("optimizer", "optimize");
        let wall0 = std::time::Instant::now();
        let result = self.optimize_inner(graph);
        if result.is_ok() {
            self.metrics.queries.inc();
            self.metrics
                .optimize_ns
                .record(wall0.elapsed().as_nanos() as u64);
        }
        if let Ok(plan) = &result {
            self.obs.span_fields(
                sp_opt,
                vec![
                    (
                        "fingerprint".into(),
                        format!("{:016x}", plan.pt.fingerprint()).into(),
                    ),
                    ("cost".into(), plan.cost.total(&self.model.params).into()),
                ],
            );
        }
        self.obs.end(sp_opt);
        let _ = catalog;
        result
    }

    fn optimize_inner(&mut self, graph: &QueryGraph) -> Result<Optimized, OptError> {
        let catalog = self.model.catalog;
        let mut g = graph.clone();
        g.normalize(catalog)?;
        g.validate(catalog)?;
        let mut trace = OptTrace::default();
        self.verify_graph(&g, "normalize (query graph)")?;

        // Step 1: rewrite (irrevocable).
        let sp = self.obs.begin("optimizer", "rewrite");
        rewrite(&mut g, &mut trace);
        self.obs.end(sp);
        self.verify_graph(&g, "rewrite (query graph)")?;

        // Steps 2+3: translate + generatePT, bottom-up over the graph.
        let mut planned: HashMap<NameRef, Planned> = HashMap::new();
        let mut remaining: Vec<(NameRef, GraphTerm)> = g.nodes.clone();
        while !remaining.is_empty() {
            let idx = remaining
                .iter()
                .position(|(name, term)| self.ready(name, term, &planned))
                .ok_or(OptError::CyclicGraph)?;
            let (name, term) = remaining.remove(idx);
            let p = self.plan_term(&g, &name, &term, &planned, &mut trace)?;
            self.verify_stage(
                &p.pt,
                &format!("generatePT({})", name.display(catalog)),
                &mut trace,
            )?;
            planned.insert(name, p);
        }

        let answer = planned
            .get(&g.answer)
            .ok_or_else(|| OptError::Unplannable("answer".into()))?
            .clone();

        // Step 4: transformPT — randomized re-optimization of the final
        // plan (the push decisions were taken, cost-compared, while
        // assembling consumers of fixpoints; see `plan_spj`). Under
        // verification every candidate move is checked before it can be
        // accepted; rejected moves are recorded in the trace.
        let final_pt = match &self.config.rand {
            Some(rc) => {
                let t = trace.record(
                    Step::TransformPt,
                    "the entire query (PT)",
                    StrategyKind::CostBasedTransformational,
                );
                t.note(format!("randomized strategy: {:?}", rc.kind));
                let sp = self.obs.begin("optimizer", "transformPT");
                self.obs.span_fields(
                    sp,
                    vec![("phase".into(), format!("randomized {:?}", rc.kind).into())],
                );
                let outcome = rand_optimize_with(
                    &self.model,
                    answer.pt.clone(),
                    rc,
                    &neighbours,
                    self.config.verify.active(),
                    Some(&mut trace),
                    &self.obs,
                    &self.metrics.candidates,
                );
                self.obs.end(sp);
                outcome.pt
            }
            None => answer.pt.clone(),
        };
        self.verify_stage(&final_pt, "transformPT (final plan)", &mut trace)?;

        let cost = self.model.cost(&final_pt)?;
        trace.record_breakdown(&cost.breakdown);

        // Step 5: parallel placement — choose a degree of parallelism
        // per maximal partitionable subtree, cost-controlled like every
        // other decision: a subtree is parallelized only when the
        // predicted parallel cost (startup + merge overhead against the
        // effective-worker speedup) beats its serial cost.
        let (parallel, parallel_choices) = if self.config.threads >= 2 {
            self.plan_parallel(&final_pt, &cost, &mut trace)?
        } else {
            (ParallelSpec::new(), Vec::new())
        };

        let out_cols = answer.out_cols.iter().map(|(n, _)| n.clone()).collect();
        Ok(Optimized {
            pt: final_pt,
            out_cols,
            cost,
            parallel,
            parallel_choices,
            trace,
        })
    }

    /// The parallel-placement pass: lower the final plan serially, walk
    /// the physical tree top-down for maximal parallelizable subtrees
    /// (`exchange_eligible` pipelines; unions whose legs can each run as
    /// a `Merge` leg), cost each candidate from the plan-cost breakdown
    /// (per-PT-node lines summed over the subtree), and keep a choice
    /// only when the parallel term is cheaper. The resulting spec is
    /// advisory to `lower_with`, so a decision here can relax but never
    /// break plan semantics.
    fn plan_parallel(
        &mut self,
        pt: &Pt,
        cost: &PlanCost,
        trace: &mut OptTrace,
    ) -> Result<(ParallelSpec, Vec<ParallelChoice>), OptError> {
        let env = self.lint_env();
        let plan = oorq_pt::lower(&env, pt)
            .map_err(|e| OptError::Unplannable(format!("parallel lowering: {e}")))?;
        // Per-PT-node cost and row lines (pre-order ids shared with
        // `OpMeta::pt_node`).
        let mut node_cost: HashMap<usize, f64> = HashMap::new();
        let mut node_rows: HashMap<usize, f64> = HashMap::new();
        for nc in &cost.breakdown {
            if let Some(n) = nc.node {
                *node_cost.entry(n).or_insert(0.0) += nc.cost.total(&self.model.params);
                node_rows.insert(n, nc.rows);
            }
        }
        let subtree_cost = |op: &PhysOp| -> f64 {
            let mut nodes: BTreeSet<usize> = BTreeSet::new();
            op.visit(&mut |o| {
                nodes.insert(o.meta().pt_node);
            });
            nodes
                .iter()
                .map(|n| node_cost.get(n).copied().unwrap_or(0.0))
                .sum()
        };

        let max_workers = self.config.threads as usize;
        let params = self.config.parallel;
        let mut spec = ParallelSpec::new();
        let mut choices: Vec<ParallelChoice> = Vec::new();
        let mut consider = |op: &PhysOp, workers: usize, serial: f64, par: f64| {
            spec.insert(op.meta().pt_node, workers);
            choices.push(ParallelChoice {
                pt_node: op.meta().pt_node,
                label: op.meta().label.clone(),
                workers,
                serial_cost: serial,
                parallel_cost: par,
            });
        };

        // Top-down: the root of an eligible spine is the maximal
        // candidate (sub-spines cost strictly less, so a rejected root
        // rejects its fragments too); only descend past ineligible
        // operators.
        fn walk(
            op: &PhysOp,
            max_workers: usize,
            params: &ParallelParams,
            subtree_cost: &dyn Fn(&PhysOp) -> f64,
            node_rows: &HashMap<usize, f64>,
            consider: &mut dyn FnMut(&PhysOp, usize, f64, f64),
        ) {
            if let PhysOp::UnionAll {
                meta, left, right, ..
            } = op
            {
                if oorq_pt::merge_leg_ok(left) && oorq_pt::merge_leg_ok(right) {
                    let legs = [subtree_cost(left), subtree_cost(right)];
                    let serial = legs[0] + legs[1];
                    let rows = node_rows.get(&meta.pt_node).copied().unwrap_or(0.0);
                    let par = oorq_cost::merge_cost(&legs, rows, params);
                    if par < serial && max_workers >= 2 {
                        // The Merge subsumes its legs: lowering rejects
                        // nested parallel operators inside a leg, so do
                        // not descend.
                        consider(op, 2, serial, par);
                        return;
                    }
                }
            } else if oorq_pt::exchange_eligible(op) {
                let serial = subtree_cost(op);
                let rows = node_rows.get(&op.meta().pt_node).copied().unwrap_or(0.0);
                let (dop, par) = oorq_cost::choose_dop(serial, rows, max_workers, params);
                if dop >= 2 {
                    consider(op, dop, serial, par);
                }
                // Eligible spine: wrapped or not, its interior is never
                // a better candidate than its root.
                return;
            }
            for c in op.children() {
                walk(c, max_workers, params, subtree_cost, node_rows, consider);
            }
        }
        walk(
            &plan.root,
            max_workers,
            &params,
            &subtree_cost,
            &node_rows,
            &mut consider,
        );

        if !choices.is_empty() {
            let t = trace.record(
                Step::TransformPt,
                "parallel placement (PT)",
                StrategyKind::CostBasedTransformational,
            );
            for c in &choices {
                t.note(format!(
                    "{} (node {}): dop {} — serial {:.1} vs parallel {:.1} \
                     (predicted speedup {:.2}x)",
                    c.label,
                    c.pt_node,
                    c.workers,
                    c.serial_cost,
                    c.parallel_cost,
                    c.predicted_speedup()
                ));
                self.obs.event(
                    "optimizer",
                    "parallel-choice",
                    vec![
                        ("node".into(), c.pt_node.into()),
                        ("label".into(), c.label.as_str().into()),
                        ("workers".into(), c.workers.into()),
                        ("serial_cost".into(), c.serial_cost.into()),
                        ("parallel_cost".into(), c.parallel_cost.into()),
                    ],
                );
            }
            self.obs
                .counter_add("optimizer.parallel_choices", choices.len() as f64);
        }
        self.metrics.parallel_choices.add(choices.len() as u64);
        Ok((spec, choices))
    }

    /// The environment the lint passes see: the model's catalog,
    /// physical schema and currently registered temporaries.
    fn lint_env(&self) -> oorq_pt::PtEnv<'a> {
        oorq_pt::PtEnv {
            catalog: self.model.catalog,
            physical: self.model.physical,
            temp_fields: self.model.temp_fields.clone(),
        }
    }

    /// Run the plan verifier on an intermediate PT (when configured):
    /// errors abort the optimization and are recorded in the trace.
    fn verify_stage(&self, pt: &Pt, stage: &str, trace: &mut OptTrace) -> Result<(), OptError> {
        if !self.config.verify.active() {
            return Ok(());
        }
        let report = oorq_lint::verify_pt(&self.lint_env(), pt);
        oorq_lint::record_report(&self.obs, stage, &report);
        if report.is_clean() {
            return Ok(());
        }
        let errors: String = report.errors().map(|d| format!("{d}\n")).collect();
        let t = trace.record(
            Step::TransformPt,
            format!("verification after {stage}"),
            StrategyKind::Irrevocable,
        );
        for d in report.errors() {
            t.note(format!("{d}"));
        }
        Err(OptError::Lint {
            stage: stage.into(),
            errors,
        })
    }

    /// Run the graph lint pass (when configured): errors abort.
    fn verify_graph(&self, g: &QueryGraph, stage: &str) -> Result<(), OptError> {
        if !self.config.verify.active() {
            return Ok(());
        }
        let report = oorq_lint::lint_graph(self.model.catalog, g);
        oorq_lint::record_report(&self.obs, stage, &report);
        if report.is_clean() {
            return Ok(());
        }
        let errors: String = report.errors().map(|d| format!("{d}\n")).collect();
        Err(OptError::Lint {
            stage: stage.into(),
            errors,
        })
    }

    fn ready(
        &self,
        self_name: &NameRef,
        term: &GraphTerm,
        planned: &HashMap<NameRef, Planned>,
    ) -> bool {
        let catalog = self.model.catalog;
        term.consumed_names().iter().all(|n| {
            if *n == self_name {
                return true; // recursive occurrence, resolved as a temp
            }
            match n {
                NameRef::Class(_) => true,
                NameRef::Relation(r) => {
                    catalog.relation(*r).kind == ViewKind::Stored || planned.contains_key(n)
                }
                NameRef::Derived(_) => planned.contains_key(n),
            }
        })
    }

    #[allow(clippy::only_used_in_recursion)]
    fn plan_term(
        &mut self,
        g: &QueryGraph,
        name: &NameRef,
        term: &GraphTerm,
        planned: &HashMap<NameRef, Planned>,
        trace: &mut OptTrace,
    ) -> Result<Planned, OptError> {
        match term {
            GraphTerm::Spj(spj) => {
                let (pt, out_cols, _) = self.plan_spj(g, spj, None, planned, trace, None)?;
                Ok(Planned {
                    pt,
                    out_cols,
                    fix: None,
                })
            }
            GraphTerm::Union(l, r) => {
                let lp = self.plan_term(g, name, l, planned, trace)?;
                let rp = self.plan_term(g, name, r, planned, trace)?;
                Ok(Planned {
                    pt: Pt::union(lp.pt, rp.pt),
                    out_cols: lp.out_cols,
                    fix: None,
                })
            }
            GraphTerm::Fix(fname, body) => self.plan_fix(g, fname, body, planned, trace),
        }
    }

    fn plan_fix(
        &mut self,
        g: &QueryGraph,
        fname: &NameRef,
        body: &GraphTerm,
        planned: &HashMap<NameRef, Planned>,
        trace: &mut OptTrace,
    ) -> Result<Planned, OptError> {
        let catalog = self.model.catalog;
        let GraphTerm::Union(l, r) = body else {
            // A fixpoint over a single SPJ (no base): not computable.
            return Err(OptError::Unplannable("Fix body must be a Union".into()));
        };
        let references = |t: &GraphTerm| {
            t.spjs()
                .iter()
                .any(|s| s.inputs.iter().any(|a| a.name == *fname))
        };
        let (base_term, rec_term) = if references(l) {
            (r.as_ref(), l.as_ref())
        } else {
            (l.as_ref(), r.as_ref())
        };
        let GraphTerm::Spj(base_spj) = base_term else {
            return Err(OptError::Unplannable("nested non-spj fix base".into()));
        };
        let GraphTerm::Spj(rec_spj) = rec_term else {
            return Err(OptError::Unplannable("nested non-spj fix recursion".into()));
        };

        // The temporary: named after the view/derived name; its fields
        // come from the declared relation type (or the base projection).
        let temp = format!("{}", fname.display(catalog));
        let fields: Vec<(String, ResolvedType)> = match g.type_of(catalog, fname)? {
            ResolvedType::Tuple(fs) => fs,
            other => vec![("value".to_string(), other)],
        };
        self.model.temp_fields.insert(temp.clone(), fields.clone());

        // Plan the base, model the fixpoint's per-iteration delta curve
        // (profile-informed when a fitted FixProfile exists, flat-delta
        // fallback otherwise), then plan the recursive side with the
        // curve's mean delta as the temp's cardinality hint.
        let (base_pt, base_cols, _) = self.plan_spj(g, base_spj, None, planned, trace, None)?;
        let base_col_names: Vec<String> = base_cols.iter().map(|(n, _)| n.clone()).collect();
        let base_rows = self.model.cost(&base_pt)?.rows;
        let curve = self.model.fix_delta_curve(&temp, base_rows);
        let hint = (curve.mass() / curve.iterations.max(1.0)).max(1.0);
        self.obs.event(
            "optimizer",
            "fix-curve",
            vec![
                ("temp".into(), temp.as_str().into()),
                ("profiled".into(), u64::from(curve.profiled).into()),
                ("iterations".into(), curve.iterations.into()),
                (
                    "seed_delta".into(),
                    curve.deltas.first().copied().unwrap_or(0.0).into(),
                ),
                ("total_rows".into(), curve.total_rows.into()),
                ("delta_hint".into(), hint.into()),
            ],
        );
        self.model.hint_temp_rows(temp.clone(), hint);
        let (rec_pt, _, _) =
            self.plan_spj(g, rec_spj, Some((fname, &temp)), planned, trace, None)?;

        let fix_pt = Pt::fix(temp.clone(), Pt::union(base_pt, rec_pt));
        let propagated = propagated_columns(&fix_pt);
        let info = FixInfo {
            temp,
            out_cols: base_col_names,
            fields,
            propagated,
        };
        Ok(Planned {
            pt: fix_pt,
            out_cols: base_cols,
            fix: Some(info),
        })
    }

    /// Plan one predicate node. `self_fix` marks the name whose arcs are
    /// the recursive occurrence (bound to the temporary). `pred_override`
    /// replaces the node's predicate (used by the push replanning).
    #[allow(clippy::type_complexity)]
    fn plan_spj(
        &mut self,
        g: &QueryGraph,
        spj: &SpjNode,
        self_fix: Option<(&NameRef, &str)>,
        planned: &HashMap<NameRef, Planned>,
        trace: &mut OptTrace,
        pred_override: Option<(&Expr, &PluggedOverrides)>,
    ) -> Result<(Pt, Vec<(String, ResolvedType)>, f64), OptError> {
        let catalog = self.model.catalog;
        let physical = self.model.physical;
        // Effective predicate node: on a push replanning, the pushed
        // conjuncts are removed and tree-label branches that no longer
        // bind any used variable are pruned (their implicit joins moved
        // inside the fixpoint).
        let effective_spj = match pred_override {
            Some((pred, _)) => {
                let mut s = spj.clone();
                s.pred = pred.clone();
                let mut used: std::collections::BTreeSet<String> = s.pred.vars();
                for (_, e) in &s.out_proj {
                    used.extend(e.vars());
                }
                for arc in &mut s.inputs {
                    arc.label = prune_label(&arc.label, &used);
                }
                s
            }
            None => spj.clone(),
        };
        // Translate every arc.
        let mut chains: Vec<Vec<ArcChain>> = Vec::new();
        {
            let sp = self.obs.begin("optimizer", "translate");
            let t = trace.record(Step::Translate, "one arc", StrategyKind::CostBased);
            for (i, arc) in effective_spj.inputs.iter().enumerate() {
                let base = self.base_plan(g, arc, self_fix, planned, pred_override, i)?;
                let mut counter = self.fresh;
                let mut fresh = || {
                    counter += 1;
                    format!("_o{counter}")
                };
                let alts = translate_arc(
                    catalog,
                    physical,
                    arc,
                    base,
                    &mut fresh,
                    self.config.max_arc_alternatives,
                )?;
                self.fresh = counter;
                for a in &alts {
                    for op in &a.ops {
                        t.generated(match op {
                            crate::translate::ChainOp::Ij { .. } => "IJ",
                            crate::translate::ChainOp::Pij { .. } => "PIJ",
                        });
                    }
                }
                chains.push(alts);
            }
            self.obs
                .span_fields(sp, vec![("arcs".into(), effective_spj.inputs.len().into())]);
            self.obs.end(sp);
        }

        // generatePT for the predicate node.
        let (pt, out_cols, cost) = {
            let sp = self.obs.begin("optimizer", "generatePT");
            let t = trace.record(
                Step::GeneratePt,
                "one predicate node",
                StrategyKind::CostBasedGenerative,
            );
            let r = generate_pt(
                &self.model,
                &effective_spj,
                &chains,
                self.config.spj_strategy,
                &self.obs,
                &self.metrics.candidates,
            );
            self.obs.end(sp);
            let r = r?;
            t.generated("Sel");
            if spj.inputs.len() > 1 {
                t.generated("EJ");
            }
            r
        };
        // Typed output columns from the (normalized) projection.
        let out_types: Vec<(String, ResolvedType)> = match g.spj_out_type(catalog, spj) {
            Ok(ResolvedType::Tuple(fs)) => fs,
            _ => out_cols
                .iter()
                .map(|n| {
                    (
                        n.clone(),
                        ResolvedType::Atomic(oorq_schema::AtomicType::Int),
                    )
                })
                .collect(),
        };
        debug_assert_eq!(
            out_types.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            out_cols
        );

        // transformPT consideration: the node consumes a fixpoint —
        // decide the position of selective operations w.r.t. recursion.
        // Under the never-push (deductive) strategy the decision is made
        // without costing an alternative, but it is still a transformPT
        // decision and is recorded as such.
        let consumes_fix = pred_override.is_none()
            && spj
                .inputs
                .iter()
                .any(|arc| planned.get(&arc.name).is_some_and(|p| p.fix.is_some()));
        if consumes_fix && self.config.push == PushStrategy::NeverPush {
            let t = trace.record(
                Step::TransformPt,
                "the entire query (PT)",
                StrategyKind::Irrevocable,
            );
            t.note("never-push strategy: selective operations stay outside the fixpoint");
        }
        if pred_override.is_none() && self.config.push != PushStrategy::NeverPush {
            let sp = self.obs.begin("optimizer", "transformPT");
            self.obs
                .span_fields(sp, vec![("phase".into(), "push-decision".into())]);
            let pushed = self.try_push(g, spj, self_fix, planned, trace);
            if let Ok(Some((pushed_pt, _, pushed_cost))) = &pushed {
                let keep_pushed = match self.config.push {
                    PushStrategy::AlwaysPush => true,
                    PushStrategy::CostControlled => *pushed_cost < cost,
                    PushStrategy::NeverPush => false,
                };
                let fp_pushed = format!("{:016x}", pushed_pt.fingerprint());
                let fp_unpushed = format!("{:016x}", pt.fingerprint());
                let (outcome, reason) = match (self.config.push, keep_pushed) {
                    (PushStrategy::AlwaysPush, _) => {
                        ("accept", "always-push heuristic (no cost comparison)")
                    }
                    (_, true) => ("accept", "pushed plan cheaper than unpushed incumbent"),
                    (_, false) => (
                        "reject",
                        "pushing selective operations into the fixpoint costs more \
                         than evaluating them outside",
                    ),
                };
                self.obs.event(
                    "optimizer",
                    "candidate",
                    vec![
                        ("step".into(), "push-decision".into()),
                        ("action".into(), "filter/push-join".into()),
                        ("fingerprint".into(), fp_pushed.clone().into()),
                        ("cost".into(), (*pushed_cost).into()),
                        ("incumbent".into(), fp_unpushed.clone().into()),
                        ("incumbent_cost".into(), cost.into()),
                        ("outcome".into(), outcome.into()),
                        ("reason".into(), reason.into()),
                    ],
                );
                self.metrics.candidates.outcome(outcome, reason);
                if keep_pushed {
                    // The displaced incumbent is itself a rejected
                    // candidate of this decision.
                    self.obs.event(
                        "optimizer",
                        "candidate",
                        vec![
                            ("step".into(), "push-decision".into()),
                            ("action".into(), "keep-unpushed".into()),
                            ("fingerprint".into(), fp_unpushed.into()),
                            ("cost".into(), cost.into()),
                            ("incumbent".into(), fp_pushed.into()),
                            ("incumbent_cost".into(), (*pushed_cost).into()),
                            ("outcome".into(), "reject".into()),
                            (
                                "reason".into(),
                                "displaced by the pushed plan at lower cost".into(),
                            ),
                        ],
                    );
                    self.metrics
                        .candidates
                        .outcome("reject", "displaced by the pushed plan");
                }
                self.metrics.push_decisions.inc();
                self.obs.counter_add("optimizer.push_decisions", 1.0);
            }
            self.obs.end(sp);
            if let Some((pushed_pt, pushed_cols, pushed_cost)) = pushed? {
                let keep_pushed = match self.config.push {
                    PushStrategy::AlwaysPush => true,
                    PushStrategy::CostControlled => pushed_cost < cost,
                    PushStrategy::NeverPush => false,
                };
                let t = trace.record(
                    Step::TransformPt,
                    "the entire query (PT)",
                    StrategyKind::CostBasedTransformational,
                );
                t.note(format!(
                    "filter/push-join candidate: pushed cost {pushed_cost:.1} vs \
                     unpushed {cost:.1} -> {}",
                    if keep_pushed { "pushed" } else { "unpushed" }
                ));
                if keep_pushed {
                    // The push actions rewrote a complete plan; verify
                    // the result before committing to it.
                    self.verify_stage(&pushed_pt, "transformPT (filter/push-join actions)", trace)?;
                    return Ok((pushed_pt, pushed_cols, pushed_cost));
                }
            }
        }
        Ok((pt, out_types, cost))
    }

    fn base_plan(
        &mut self,
        g: &QueryGraph,
        arc: &QArc,
        self_fix: Option<(&NameRef, &str)>,
        planned: &HashMap<NameRef, Planned>,
        pred_override: Option<(&Expr, &PluggedOverrides)>,
        arc_index: usize,
    ) -> Result<BasePlan, OptError> {
        let catalog = self.model.catalog;
        // Plugged override (push replanning substitutes the pushed fix).
        if let Some((_, overrides)) = pred_override {
            if let Some((pt, cols)) = overrides.get(&arc_index) {
                return Ok(BasePlan::Plugged(pt.clone(), cols.clone()));
            }
        }
        if let Some((fix_name, temp)) = self_fix {
            if arc.name == *fix_name {
                let fields = self
                    .model
                    .temp_fields
                    .get(temp)
                    .cloned()
                    .unwrap_or_default();
                return Ok(BasePlan::Temp(temp.to_string(), fields));
            }
        }
        match &arc.name {
            NameRef::Class(c) => {
                let active = self.model.physical.entities_of_class(*c);
                if active.is_empty() {
                    return Err(OptError::NoEntity(catalog.class(*c).name.clone()));
                }
                // Vertical fragments all hold every instance: scan the
                // cheapest one. Horizontal fragments partition the
                // extension: scan their union.
                let vertical = active.iter().all(|e| {
                    matches!(
                        self.model.physical.entity(*e).fragment,
                        Some(oorq_storage::FragmentSpec::Vertical { .. })
                    )
                });
                let entities = if active.len() > 1 && vertical {
                    let cheapest = active
                        .iter()
                        .copied()
                        .min_by_key(|e| {
                            self.model
                                .stats
                                .entity(*e)
                                .map(|s| s.pages)
                                .unwrap_or(u64::MAX)
                        })
                        .expect("non-empty");
                    vec![cheapest]
                } else {
                    active.to_vec()
                };
                Ok(BasePlan::Class(entities, *c))
            }
            NameRef::Relation(r) if catalog.relation(*r).kind == ViewKind::Stored => {
                let e = self
                    .model
                    .physical
                    .entities_of_relation(*r)
                    .first()
                    .copied()
                    .ok_or_else(|| OptError::NoEntity(catalog.relation(*r).name.clone()))?;
                Ok(BasePlan::Relation(e, catalog.relation(*r).fields.clone()))
            }
            name => {
                let p = planned
                    .get(name)
                    .ok_or_else(|| OptError::Unplannable(format!("{}", name.display(catalog))))?;
                let _ = g;
                Ok(BasePlan::Plugged(p.pt.clone(), p.out_cols.clone()))
            }
        }
    }

    /// Build the pushed variant of a consumer of a fixpoint: pushable
    /// selection conjuncts move inside via the `filter` action, and a
    /// selective explicit join is pushed as a semi-join (§4.5). Returns
    /// `None` when nothing is pushable.
    #[allow(clippy::type_complexity)]
    fn try_push(
        &mut self,
        g: &QueryGraph,
        spj: &SpjNode,
        self_fix: Option<(&NameRef, &str)>,
        planned: &HashMap<NameRef, Planned>,
        trace: &mut OptTrace,
    ) -> Result<Option<(Pt, Vec<(String, ResolvedType)>, f64)>, OptError> {
        // Find a fix-backed arc.
        let mut fix_arc: Option<(usize, &FixInfo, &Planned)> = None;
        for (i, arc) in spj.inputs.iter().enumerate() {
            if let Some(p) = planned.get(&arc.name) {
                if let Some(info) = &p.fix {
                    fix_arc = Some((i, info, p));
                    break;
                }
            }
        }
        let Some((arc_i, info, fix_planned)) = fix_arc else {
            return Ok(None);
        };
        let info = info.clone();
        let fix_planned = fix_planned.clone();
        let arc = &spj.inputs[arc_i];
        let Some(arc_var) = arc.var.clone() else {
            return Ok(None);
        };

        // Map the arc's label variables to their field paths.
        let var_paths = label_var_paths(&arc.label);

        // Translate each conjunct of the (normalized) predicate into an
        // expression over the fixpoint's output columns, when possible.
        let over_fix = |c: &Expr| -> Option<Expr> {
            let mut ok = true;
            let rewritten = c.map_leaves(&mut |leaf| match leaf {
                Expr::Var(v) => match var_paths.get(v) {
                    Some((field, steps)) if steps.is_empty() => Some(Expr::Var(field.clone())),
                    Some((field, steps)) => Some(Expr::Path {
                        base: field.clone(),
                        steps: steps.clone(),
                    }),
                    None => {
                        if *v != arc_var {
                            // Variable of another arc: not a pure
                            // selection on the fixpoint.
                        }
                        ok = false;
                        None
                    }
                },
                Expr::Path { .. } => {
                    ok = false;
                    None
                }
                _ => None,
            });
            ok.then_some(rewritten)
        };

        let mut pushed_sel: Vec<Expr> = Vec::new();
        let mut remaining: Vec<Expr> = Vec::new();
        for c in spj.pred.conjuncts() {
            match over_fix(c) {
                Some(fixed) if can_push(&fixed, &info) => pushed_sel.push(fixed),
                _ => remaining.push(c.clone()),
            }
        }

        // Join-push candidate: an equality conjunct between a propagated
        // fix column and another single arc (the §4.5 pattern), pushed as
        // a semi-join. Only attempted when the *other* side of the query
        // restricts that arc (e.g. `c.name = "Bach"`).
        let mut pushed_join: Option<(Expr, Pt)> = None;
        if spj.inputs.len() == 2 {
            let other_i = 1 - arc_i;
            let other_arc = &spj.inputs[other_i];
            if let Some(other_var) = other_arc.var.clone() {
                let other_paths = label_var_paths(&other_arc.label);
                let mut join_expr: Option<Expr> = None;
                let mut other_sels: Vec<Expr> = Vec::new();
                for c in &remaining {
                    let vars = c.vars();
                    let fix_side: Vec<&String> =
                        vars.iter().filter(|v| var_paths.contains_key(*v)).collect();
                    let other_side: Vec<&String> = vars
                        .iter()
                        .filter(|v| other_paths.contains_key(*v) || **v == other_var)
                        .collect();
                    if !fix_side.is_empty() && !other_side.is_empty() {
                        // Crossing conjunct: the join itself.
                        let fixed_ok = fix_side.iter().all(|v| {
                            var_paths
                                .get(*v)
                                .map(|(f, _)| info.propagated.contains(f))
                                .unwrap_or(false)
                        });
                        if fixed_ok && join_expr.is_none() {
                            join_expr = Some(c.clone());
                        }
                    } else if !other_side.is_empty() && fix_side.is_empty() {
                        other_sels.push(c.clone());
                    }
                }
                if let Some(je) = join_expr {
                    // Build the inner plan: the other arc with its own
                    // selections applied.
                    let inner = self.plan_single_arc(g, other_arc, planned, &other_sels)?;
                    // Rewrite the join conjunct: fix-side vars over fix
                    // columns; other-side vars via the inner's subst.
                    let rewritten = je.map_leaves(&mut |leaf| match leaf {
                        Expr::Var(v) => {
                            if let Some((f, steps)) = var_paths.get(v) {
                                Some(if steps.is_empty() {
                                    Expr::Var(f.clone())
                                } else {
                                    Expr::Path {
                                        base: f.clone(),
                                        steps: steps.clone(),
                                    }
                                })
                            } else {
                                inner.1.get(v).cloned()
                            }
                        }
                        _ => None,
                    });
                    pushed_join = Some((rewritten, inner.0));
                }
            }
        }

        if pushed_sel.is_empty() && pushed_join.is_none() {
            return Ok(None);
        }

        // Build the pushed fixpoint.
        let mut pushed_fix = fix_planned.pt.clone();
        if let Some((jpred, inner)) = &pushed_join {
            pushed_fix = push_join_action(&pushed_fix, &info, jpred, inner)?;
        }
        if !pushed_sel.is_empty() {
            let pred = Expr::conjoin(pushed_sel.clone());
            pushed_fix = filter_action(&self.model, &pushed_fix, &info, &pred)?;
        }

        // Replan the consumer with the pushed fix and the reduced
        // predicate.
        let reduced = Expr::conjoin(remaining);
        let mut overrides = HashMap::new();
        overrides.insert(arc_i, (pushed_fix, info.fields.clone()));
        let result = self.plan_spj(
            g,
            spj,
            self_fix,
            planned,
            trace,
            Some((&reduced, &overrides)),
        )?;
        Ok(Some(result))
    }

    /// Plan a single arc in isolation (used as the inner of a pushed
    /// semi-join), applying the given selections. Returns the plan and
    /// the variable substitution.
    fn plan_single_arc(
        &mut self,
        g: &QueryGraph,
        arc: &QArc,
        planned: &HashMap<NameRef, Planned>,
        sels: &[Expr],
    ) -> Result<(Pt, HashMap<String, Expr>), OptError> {
        let base = self.base_plan(g, arc, None, planned, None, usize::MAX)?;
        let mut counter = self.fresh;
        let mut fresh = || {
            counter += 1;
            format!("_o{counter}")
        };
        let alts = translate_arc(
            self.model.catalog,
            self.model.physical,
            arc,
            base,
            &mut fresh,
            self.config.max_arc_alternatives,
        )?;
        self.fresh = counter;
        let mut best: Option<(f64, Pt, HashMap<String, Expr>)> = None;
        for chain in &alts {
            let subst = chain.subst.clone();
            let rewritten: Vec<Expr> = sels
                .iter()
                .map(|c| crate::generate::rewrite_expr(c, &subst))
                .collect();
            let mut pt = chain.base.clone();
            let mut available = chain.base_cols.clone();
            let mut remaining: Vec<Expr> = rewritten;
            let apply_ready = |pt: Pt, available: &[String], remaining: &mut Vec<Expr>| {
                let (ready, later): (Vec<Expr>, Vec<Expr>) = remaining
                    .drain(..)
                    .partition(|c| c.vars().iter().all(|v| available.contains(&v.to_string())));
                *remaining = later;
                if ready.is_empty() {
                    pt
                } else {
                    Pt::sel(Expr::conjoin(ready), pt)
                }
            };
            pt = apply_ready(pt, &available, &mut remaining);
            for op in &chain.ops {
                pt = op.apply(pt);
                available.extend(op.produces());
                pt = apply_ready(pt, &available, &mut remaining);
            }
            if !remaining.is_empty() {
                pt = Pt::sel(Expr::conjoin(remaining), pt);
            }
            if let Ok(pc) = self.model.cost(&pt) {
                let total = pc.total(&self.model.params);
                match &best {
                    Some((c, _, _)) if *c <= total => {}
                    _ => best = Some((total, pt, subst)),
                }
            }
        }
        best.map(|(_, pt, subst)| (pt, subst))
            .ok_or_else(|| OptError::Unplannable("semi-join inner".into()))
    }
}

/// Map each variable bound in a (row-rooted) tree label to its
/// `(field, attribute-steps)` path.
fn label_var_paths(label: &TreeLabel) -> HashMap<String, (String, Vec<String>)> {
    let mut out = HashMap::new();
    for child in &label.children {
        let Some(field) = &child.attr else { continue };
        if let Some(v) = &child.var {
            out.insert(v.clone(), (field.clone(), Vec::new()));
        }
        collect_deep(&child.tree, field, &mut Vec::new(), &mut out);
    }
    out
}

fn collect_deep(
    tree: &TreeLabel,
    field: &str,
    steps: &mut Vec<String>,
    out: &mut HashMap<String, (String, Vec<String>)>,
) {
    for child in &tree.children {
        let pushed = if let Some(a) = &child.attr {
            steps.push(a.clone());
            true
        } else {
            false
        };
        if let Some(v) = &child.var {
            out.insert(v.clone(), (field.to_string(), steps.clone()));
        }
        collect_deep(&child.tree, field, steps, out);
        if pushed {
            steps.pop();
        }
    }
}

/// Drop tree-label branches that bind no used variable (their implicit
/// joins have moved inside a pushed fixpoint).
fn prune_label(label: &TreeLabel, used: &std::collections::BTreeSet<String>) -> TreeLabel {
    TreeLabel {
        children: label
            .children
            .iter()
            .filter_map(|c| {
                let pruned = prune_label(&c.tree, used);
                let keep_var = c.var.as_ref().map(|v| used.contains(v)).unwrap_or(false);
                if keep_var || !pruned.children.is_empty() {
                    Some(oorq_query::TreeChild {
                        attr: c.attr.clone(),
                        var: c.var.clone(),
                        tree: pruned,
                    })
                } else {
                    None
                }
            })
            .collect(),
    }
}
