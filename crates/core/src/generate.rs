//! The `generatePT` step (§4.4): optimizing predicate nodes (spj's).
//!
//! A *generative* strategy builds PTs bottom-up from the atomic entities
//! \[Se79\] and keeps the least costly. The `sel` action is applied before
//! the `join` action, so `Sel` nodes are generated as soon as possible
//! (the relational heuristic of pushing selection through join), and the
//! `join` action requires a connecting predicate, avoiding Cartesian
//! products whenever possible.

use std::collections::HashMap;

use oorq_cost::CostModel;
use oorq_pt::{AccessMethod, JoinAlgo, Pt};
use oorq_query::{CmpOp, Expr, SpjNode};
use oorq_storage::EntitySource;

use crate::error::OptError;
use crate::translate::ArcChain;

/// Join-enumeration strategy for predicate nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpjStrategy {
    /// Selinger-style dynamic programming over arc subsets (left-deep).
    Dp,
    /// Exhaustive enumeration of join permutations \[KZ88\].
    Exhaustive,
    /// Greedy: repeatedly take the cheapest extension.
    Greedy,
    /// No enumeration at all: join in the query's textual order (the
    /// "unoptimized" baseline showing what cost-based search buys).
    Syntactic,
}

/// A priced candidate plan.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The plan.
    pub pt: Pt,
    /// Columns it produces.
    pub cols: Vec<String>,
    /// Weighted total cost.
    pub cost: f64,
}

/// How many access-plan alternatives are kept per arc.
const KEEP_PER_ARC: usize = 4;

/// Rewrite an expression's variables through the translation
/// substitution (query-graph variables → column expressions).
pub fn rewrite_expr(expr: &Expr, subst: &HashMap<String, Expr>) -> Expr {
    expr.map_leaves(&mut |leaf| match leaf {
        Expr::Var(v) => subst.get(v).cloned(),
        Expr::Path { base, steps } => subst.get(base).map(|repl| match repl {
            Expr::Var(col) => Expr::Path {
                base: col.clone(),
                steps: steps.clone(),
            },
            Expr::Path {
                base: b2,
                steps: s2,
            } => {
                let mut s = s2.clone();
                s.extend(steps.iter().cloned());
                Expr::Path {
                    base: b2.clone(),
                    steps: s,
                }
            }
            other => other.clone(),
        }),
        _ => None,
    })
}

/// Generate the locally optimal PT for one predicate node, given the
/// translated alternatives of each arc.
///
/// Returns the chosen plan and its output column names (the `out_proj`
/// field names).
pub fn generate_pt(
    model: &CostModel<'_>,
    spj: &SpjNode,
    arc_chains: &[Vec<ArcChain>],
    strategy: SpjStrategy,
    obs: &oorq_obs::Recorder,
    cand_metrics: &crate::metrics::CandidateMetrics,
) -> Result<(Pt, Vec<String>, f64), OptError> {
    // Combined substitution (alternatives of one arc share theirs).
    let mut subst: HashMap<String, Expr> = HashMap::new();
    for alts in arc_chains {
        if let Some(first) = alts.first() {
            for (k, v) in &first.subst {
                subst.insert(k.clone(), v.clone());
            }
        }
    }
    // Rewrite predicate and projection onto columns.
    let conjuncts: Vec<Expr> = spj
        .pred
        .conjuncts()
        .into_iter()
        .map(|c| rewrite_expr(c, &subst))
        .collect();
    let out_proj: Vec<(String, Expr)> = spj
        .out_proj
        .iter()
        .map(|(n, e)| (n.clone(), rewrite_expr(e, &subst)))
        .collect();

    // Partition conjuncts: per-arc vs join.
    let arc_cols: Vec<Vec<String>> = arc_chains
        .iter()
        .map(|alts| alts.first().map(|a| a.all_cols()).unwrap_or_default())
        .collect();
    let mut per_arc: Vec<Vec<Expr>> = vec![Vec::new(); arc_chains.len()];
    let mut join_conjuncts: Vec<Expr> = Vec::new();
    'conj: for c in conjuncts {
        let vars = c.vars();
        for (i, cols) in arc_cols.iter().enumerate() {
            if vars.iter().all(|v| cols.contains(v)) {
                per_arc[i].push(c);
                continue 'conj;
            }
        }
        join_conjuncts.push(c);
    }

    // Per-arc candidates: chain alternatives × access methods, selections
    // applied as early as possible, priced and pruned.
    let mut candidates: Vec<Vec<Candidate>> = Vec::new();
    for (i, alts) in arc_chains.iter().enumerate() {
        let mut cands = Vec::new();
        for chain in alts {
            for pt in assemble_arc(model, chain, &per_arc[i]) {
                let cols = chain.all_cols();
                match model.cost(&pt) {
                    Ok(pc) => cands.push(Candidate {
                        pt,
                        cols: cols.clone(),
                        cost: pc.total(&model.params),
                    }),
                    Err(_) => continue,
                }
            }
        }
        if cands.is_empty() {
            return Err(OptError::Unplannable(format!("arc {i}")));
        }
        cands.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        for rank in 0..cands.len() {
            if rank < KEEP_PER_ARC {
                cand_metrics.outcome("accept", "kept in arc beam");
            } else {
                cand_metrics.outcome("prune", "beyond keep-per-arc beam");
            }
        }
        if obs.enabled() {
            obs.counter_add("optimizer.candidates.enumerated", cands.len() as f64);
            let best_fp = format!("{:016x}", cands[0].pt.fingerprint());
            let best_cost = cands[0].cost;
            for (rank, c) in cands.iter().enumerate() {
                let kept = rank < KEEP_PER_ARC;
                obs.event(
                    "optimizer",
                    "candidate",
                    vec![
                        ("step".into(), "generatePT".into()),
                        ("arc".into(), i.into()),
                        (
                            "fingerprint".into(),
                            format!("{:016x}", c.pt.fingerprint()).into(),
                        ),
                        ("cost".into(), c.cost.into()),
                        ("incumbent".into(), best_fp.clone().into()),
                        ("incumbent_cost".into(), best_cost.into()),
                        (
                            "outcome".into(),
                            if kept { "accept" } else { "prune" }.into(),
                        ),
                        (
                            "reason".into(),
                            if kept {
                                format!("kept in arc beam (rank {rank})")
                            } else {
                                format!("beyond keep-per-arc beam of {KEEP_PER_ARC}")
                            }
                            .into(),
                        ),
                    ],
                );
            }
        }
        cands.truncate(KEEP_PER_ARC);
        candidates.push(cands);
    }

    // Join enumeration.
    let joined = match candidates.len() {
        1 => candidates[0][0].clone(),
        _ => match strategy {
            SpjStrategy::Exhaustive => enumerate_exhaustive(model, &candidates, &join_conjuncts)?,
            SpjStrategy::Dp => enumerate_dp(model, &candidates, &join_conjuncts)?,
            SpjStrategy::Greedy => enumerate_greedy(model, &candidates, &join_conjuncts)?,
            SpjStrategy::Syntactic => enumerate_syntactic(model, &candidates, &join_conjuncts)?,
        },
    };

    // Any conjunct never applied becomes a final selection.
    let applied = applied_in(&joined.pt);
    let residual: Vec<Expr> = join_conjuncts
        .iter()
        .filter(|c| !applied.iter().any(|a| a == *c))
        .cloned()
        .collect();
    let mut pt = joined.pt;
    if !residual.is_empty() {
        pt = Pt::sel(Expr::conjoin(residual), pt);
    }
    // Final projection.
    let out_names: Vec<String> = out_proj.iter().map(|(n, _)| n.clone()).collect();
    pt = Pt::proj(out_proj, pt);
    let cost = model
        .cost(&pt)
        .map_err(OptError::Cost)?
        .total(&model.params);
    cand_metrics.outcome("accept", "join-enumeration winner");
    if obs.enabled() {
        obs.event(
            "optimizer",
            "candidate",
            vec![
                ("step".into(), "generatePT".into()),
                (
                    "fingerprint".into(),
                    format!("{:016x}", pt.fingerprint()).into(),
                ),
                ("cost".into(), cost.into()),
                ("outcome".into(), "accept".into()),
                (
                    "reason".into(),
                    format!("{strategy:?} join-enumeration winner for the predicate node").into(),
                ),
            ],
        );
    }
    Ok((pt, out_names, cost))
}

/// Every predicate already present in `Sel`/`EJ` nodes of the plan.
fn applied_in(pt: &Pt) -> Vec<Expr> {
    let mut out = Vec::new();
    pt.visit(&mut |n| match n {
        Pt::Sel { pred, .. } | Pt::EJ { pred, .. } => {
            out.extend(pred.conjuncts().into_iter().cloned())
        }
        _ => {}
    });
    out
}

/// Assemble one arc chain into concrete plans (scan vs index access),
/// applying its selections as soon as their columns are available.
fn assemble_arc(model: &CostModel<'_>, chain: &ArcChain, sels: &[Expr]) -> Vec<Pt> {
    let mut variants: Vec<Pt> = Vec::new();
    // Selections applicable directly on the base.
    let base_ready: Vec<&Expr> = sels
        .iter()
        .filter(|c| c.vars().iter().all(|v| chain.base_cols.contains(v)))
        .collect();

    // Scan variant base.
    let mut scan_base = chain.base.clone();
    if !base_ready.is_empty() {
        scan_base = Pt::sel(
            Expr::conjoin(base_ready.iter().map(|c| (*c).clone())),
            scan_base,
        );
    }
    variants.push(scan_base);

    // Index variant: an equality conjunct on an indexed attribute of the
    // leaf class.
    if let Some(entity) = chain.leaf_entity {
        if let EntitySource::Class(class) = model.physical.entity(entity).source {
            for c in &base_ready {
                if let Expr::Cmp {
                    op: CmpOp::Eq,
                    lhs,
                    rhs,
                } = c
                {
                    let path = match (lhs.as_ref(), rhs.as_ref()) {
                        (Expr::Path { base, steps }, Expr::Lit(_)) if steps.len() == 1 => {
                            Some((base, &steps[0]))
                        }
                        (Expr::Lit(_), Expr::Path { base, steps }) if steps.len() == 1 => {
                            Some((base, &steps[0]))
                        }
                        _ => None,
                    };
                    let Some((base_col, attr_name)) = path else {
                        continue;
                    };
                    if *base_col != chain.root_var {
                        continue;
                    }
                    let Some((aid, _)) = model.catalog.attr(class, attr_name) else {
                        continue;
                    };
                    if let Some(desc) = model.physical.selection_index(class, aid) {
                        variants.push(Pt::Sel {
                            pred: Expr::conjoin(base_ready.iter().map(|c| (*c).clone())),
                            method: AccessMethod::Index(desc.id),
                            input: Box::new(chain.base.clone()),
                        });
                        break;
                    }
                }
            }
        }
    }

    // Apply the op chain on each base variant, inserting remaining
    // selections as soon as possible.
    let mut out = Vec::new();
    for base in variants {
        let mut pt = base;
        let mut available = chain.base_cols.clone();
        let mut remaining: Vec<&Expr> = sels
            .iter()
            .filter(|c| !c.vars().iter().all(|v| chain.base_cols.contains(v)))
            .collect();
        for op in &chain.ops {
            pt = op.apply(pt);
            available.extend(op.produces());
            let (ready, later): (Vec<&Expr>, Vec<&Expr>) = remaining
                .into_iter()
                .partition(|c| c.vars().iter().all(|v| available.contains(v)));
            if !ready.is_empty() {
                pt = Pt::sel(Expr::conjoin(ready.into_iter().cloned()), pt);
            }
            remaining = later;
        }
        if !remaining.is_empty() {
            pt = Pt::sel(Expr::conjoin(remaining.into_iter().cloned()), pt);
        }
        out.push(pt);
    }
    out
}

/// The `join` action: combine two candidates with every applicable
/// algorithm. `disjoint` holds by construction (candidates cover
/// disjoint arc sets). Requires a connecting predicate unless `force`.
fn join_pair(
    model: &CostModel<'_>,
    left: &Candidate,
    right: &Candidate,
    join_conjuncts: &[Expr],
    force: bool,
) -> Vec<Candidate> {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());
    let applicable: Vec<Expr> = join_conjuncts
        .iter()
        .filter(|c| {
            let vars = c.vars();
            let crosses = vars.iter().any(|v| left.cols.contains(v))
                && vars.iter().any(|v| right.cols.contains(v));
            crosses && vars.iter().all(|v| cols.contains(v))
        })
        .cloned()
        .collect();
    if applicable.is_empty() && !force {
        return Vec::new();
    }
    let pred = Expr::conjoin(applicable.clone());
    let mut out = Vec::new();
    let mut push = |pt: Pt| {
        if let Ok(pc) = model.cost(&pt) {
            out.push(Candidate {
                pt,
                cols: cols.clone(),
                cost: pc.total(&model.params),
            });
        }
    };
    push(Pt::ej(pred.clone(), left.pt.clone(), right.pt.clone()));
    // Index join: right side must be a bare entity leaf with an indexed
    // equality attribute in the predicate.
    if let Pt::Entity { id, var } = &right.pt {
        if let EntitySource::Class(class) = model.physical.entity(*id).source {
            for c in &applicable {
                if let Expr::Cmp {
                    op: CmpOp::Eq,
                    lhs,
                    rhs,
                } = c
                {
                    for (inner, _outer) in [(rhs, lhs), (lhs, rhs)] {
                        if let Expr::Path { base, steps } = inner.as_ref() {
                            if base == var && steps.len() == 1 {
                                if let Some((aid, _)) = model.catalog.attr(class, &steps[0]) {
                                    if let Some(desc) = model.physical.selection_index(class, aid) {
                                        push(Pt::EJ {
                                            pred: pred.clone(),
                                            algo: JoinAlgo::IndexJoin(desc.id),
                                            left: Box::new(left.pt.clone()),
                                            right: Box::new(right.pt.clone()),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn best(cands: Vec<Candidate>) -> Option<Candidate> {
    cands.into_iter().min_by(|a, b| a.cost.total_cmp(&b.cost))
}

/// Exhaustive enumeration of left-deep join orders (every permutation,
/// every access-plan alternative, every algorithm) — the \[KZ88\]
/// baseline. Exponential; used for small queries and as the optimality
/// oracle.
fn enumerate_exhaustive(
    model: &CostModel<'_>,
    candidates: &[Vec<Candidate>],
    join_conjuncts: &[Expr],
) -> Result<Candidate, OptError> {
    fn recurse(
        model: &CostModel<'_>,
        candidates: &[Vec<Candidate>],
        join_conjuncts: &[Expr],
        current: &Candidate,
        used: &mut Vec<bool>,
        best_so_far: &mut Option<Candidate>,
    ) {
        if used.iter().all(|&u| u) {
            match best_so_far {
                Some(b) if b.cost <= current.cost => {}
                _ => *best_so_far = Some(current.clone()),
            }
            return;
        }
        // Prefer connected extensions; fall back to cross products only
        // when nothing connects.
        let mut extended_any = false;
        for pass in 0..2 {
            let force = pass == 1;
            if force && extended_any {
                break;
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..candidates.len() {
                if used[i] {
                    continue;
                }
                for cand in &candidates[i] {
                    for joined in join_pair(model, current, cand, join_conjuncts, force) {
                        extended_any = true;
                        used[i] = true;
                        recurse(
                            model,
                            candidates,
                            join_conjuncts,
                            &joined,
                            used,
                            best_so_far,
                        );
                        used[i] = false;
                    }
                }
            }
        }
    }
    let mut best_so_far = None;
    for (i, cands) in candidates.iter().enumerate() {
        for start in cands {
            let mut used = vec![false; candidates.len()];
            used[i] = true;
            recurse(
                model,
                candidates,
                join_conjuncts,
                start,
                &mut used,
                &mut best_so_far,
            );
        }
    }
    best_so_far.ok_or_else(|| OptError::Unplannable("exhaustive join enumeration".into()))
}

/// Selinger-style dynamic programming over arc subsets (left-deep).
fn enumerate_dp(
    model: &CostModel<'_>,
    candidates: &[Vec<Candidate>],
    join_conjuncts: &[Expr],
) -> Result<Candidate, OptError> {
    let n = candidates.len();
    let full = (1usize << n) - 1;
    let mut table: HashMap<usize, Candidate> = HashMap::new();
    for (i, cands) in candidates.iter().enumerate() {
        if let Some(b) = best(cands.clone()) {
            table.insert(1 << i, b);
        }
    }
    #[allow(clippy::needless_range_loop)]
    for size in 2..=n {
        for subset in 1..=full {
            if (subset as u32).count_ones() as usize != size {
                continue;
            }
            let mut best_plan: Option<Candidate> = None;
            for i in 0..n {
                let bit = 1 << i;
                if subset & bit == 0 {
                    continue;
                }
                let rest = subset & !bit;
                let Some(left) = table.get(&rest) else {
                    continue;
                };
                for pass in 0..2 {
                    let force = pass == 1;
                    let mut found = false;
                    for cand in &candidates[i] {
                        for joined in join_pair(model, left, cand, join_conjuncts, force) {
                            found = true;
                            match &best_plan {
                                Some(b) if b.cost <= joined.cost => {}
                                _ => best_plan = Some(joined),
                            }
                        }
                    }
                    if found {
                        break;
                    }
                }
            }
            if let Some(b) = best_plan {
                match table.get(&subset) {
                    Some(existing) if existing.cost <= b.cost => {}
                    _ => {
                        table.insert(subset, b);
                    }
                }
            }
        }
    }
    table
        .remove(&full)
        .ok_or_else(|| OptError::Unplannable("dp join enumeration".into()))
}

/// Syntactic: join the arcs in their textual order with the default
/// algorithm — what a non-optimizing translator would emit.
fn enumerate_syntactic(
    model: &CostModel<'_>,
    candidates: &[Vec<Candidate>],
    join_conjuncts: &[Expr],
) -> Result<Candidate, OptError> {
    let mut current = candidates[0]
        .first()
        .cloned()
        .ok_or_else(|| OptError::Unplannable("syntactic join enumeration".into()))?;
    for cands in &candidates[1..] {
        let cand = cands
            .first()
            .ok_or_else(|| OptError::Unplannable("syntactic join enumeration".into()))?;
        let joined = join_pair(model, &current, cand, join_conjuncts, true)
            .into_iter()
            .next()
            .ok_or_else(|| OptError::Unplannable("syntactic join enumeration".into()))?;
        current = joined;
    }
    Ok(current)
}

/// Greedy: start from the cheapest arc and repeatedly apply the
/// cheapest applicable join.
fn enumerate_greedy(
    model: &CostModel<'_>,
    candidates: &[Vec<Candidate>],
    join_conjuncts: &[Expr],
) -> Result<Candidate, OptError> {
    let mut used = vec![false; candidates.len()];
    let (start_i, start) = candidates
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.first().map(|b| (i, b.clone())))
        .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
        .ok_or_else(|| OptError::Unplannable("greedy join enumeration".into()))?;
    used[start_i] = true;
    let mut current = start;
    while used.iter().any(|&u| !u) {
        let mut best_ext: Option<(usize, Candidate)> = None;
        for pass in 0..2 {
            let force = pass == 1;
            for i in 0..candidates.len() {
                if used[i] {
                    continue;
                }
                for cand in &candidates[i] {
                    for joined in join_pair(model, &current, cand, join_conjuncts, force) {
                        match &best_ext {
                            Some((_, b)) if b.cost <= joined.cost => {}
                            _ => best_ext = Some((i, joined)),
                        }
                    }
                }
            }
            if best_ext.is_some() {
                break;
            }
        }
        let Some((i, joined)) = best_ext else {
            return Err(OptError::Unplannable("greedy cannot extend".into()));
        };
        used[i] = true;
        current = joined;
    }
    Ok(current)
}
