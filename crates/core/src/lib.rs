//! The cost-controlled optimizer for object-oriented recursive queries —
//! the paper's primary contribution (§4).
//!
//! Optimization proceeds through four steps, each with its own
//! *optimization granule* (Figure 6):
//!
//! | Procedure     | Granularity              | Strategy                      | PT nodes |
//! |---------------|--------------------------|-------------------------------|----------|
//! | `rewrite`     | the entire query (graph) | irrevocable                   | Fix, Union |
//! | `translate`   | one arc                  | cost-based                    | IJ, PIJ  |
//! | `generatePT`  | one predicate node       | cost-based (generative)       | EJ, Sel  |
//! | `transformPT` | the entire query (PT)    | cost-based (transformational) | none     |
//!
//! The key departure from deductive-DB optimizers: pushing selective
//! operations (selections *and joins*) through recursion is decided only
//! after a complete plan exists, by comparing the costs of the pushed
//! and unpushed plans — because in an object model the pushed predicate
//! may embed an expensive path expression or method call.

mod error;
mod generate;
mod metrics;
mod optimizer;
mod rewrite;
mod trace;
mod transform;
mod translate;

pub use error::OptError;
pub use generate::{generate_pt, rewrite_expr, Candidate, SpjStrategy};
pub use metrics::CandidateMetrics;
pub use optimizer::{Optimized, Optimizer, OptimizerConfig, ParallelChoice, VerifyLevel};
pub use rewrite::{fixpoint_action, fixpoint_recursion, rewrite, union_action};
pub use trace::{OptTrace, Step, StepTrace, StrategyKind};
pub use transform::{
    best_selection, can_push, distribute_join_over_union_action, filter_action, neighbours,
    propagated_columns, push_join_action, rand_optimize, rand_optimize_with, FixInfo, MoveFn,
    PushStrategy, RandConfig, RandKind, RandOutcome,
};
pub use translate::{collapse_alternatives, translate_arc, ArcChain, BasePlan, ChainOp};

#[cfg(test)]
mod tests;
