//! The optimizer's aggregated metric series: pre-resolved handles into
//! a [`oorq_obs::MetricsRegistry`], interned once at attach time so the
//! per-candidate cost is one branch (detached) or one relaxed atomic
//! add.
//!
//! Candidate accounting uses the same outcome vocabulary as the trace's
//! structured `candidate` events, and every enumerated candidate lands
//! in exactly one bucket — accepted, rejected (by cost or by the
//! verifier), pruned (beam/heuristic), or pruned-proven (discarded by
//! non-overlapping §11 cost intervals) — so
//! `optimizer.candidates.enumerated` always equals the bucket sum.

use oorq_obs::{CounterHandle, HistogramHandle, MetricsRegistry};

/// Candidate-outcome counters shared by the `generatePT` beam, the
/// push decision and the `transformPT` randomized walk.
#[derive(Debug, Clone, Default)]
pub struct CandidateMetrics {
    enumerated: CounterHandle,
    accepted: CounterHandle,
    rejected: CounterHandle,
    pruned: CounterHandle,
    pruned_proven: CounterHandle,
}

impl CandidateMetrics {
    /// Intern the candidate series in a registry.
    pub fn resolve(registry: &MetricsRegistry) -> Self {
        CandidateMetrics {
            enumerated: registry.counter("optimizer.candidates.enumerated"),
            accepted: registry.counter("optimizer.candidates.accepted"),
            rejected: registry.counter("optimizer.candidates.rejected"),
            pruned: registry.counter("optimizer.candidates.pruned"),
            pruned_proven: registry.counter("optimizer.candidates.pruned_proven"),
        }
    }

    /// Count one candidate, bucketed by the trace-event outcome
    /// (`accept`/`reject`/`prune`; a prune whose reason starts with
    /// `pruned-proven` was discarded by proof, not estimate).
    pub fn outcome(&self, outcome: &str, reason: &str) {
        self.enumerated.inc();
        match outcome {
            "accept" => self.accepted.inc(),
            "reject" => self.rejected.inc(),
            _ if reason.starts_with("pruned-proven") => self.pruned_proven.inc(),
            _ => self.pruned.inc(),
        }
    }
}

/// Every series the optimizer itself publishes (resolved in
/// `Optimizer::with_metrics`; `Default` is fully detached).
#[derive(Debug, Clone, Default)]
pub(crate) struct OptimizerMetrics {
    pub(crate) queries: CounterHandle,
    pub(crate) optimize_ns: HistogramHandle,
    pub(crate) candidates: CandidateMetrics,
    pub(crate) push_decisions: CounterHandle,
    pub(crate) parallel_choices: CounterHandle,
}

impl OptimizerMetrics {
    pub(crate) fn resolve(registry: &MetricsRegistry) -> Self {
        OptimizerMetrics {
            queries: registry.counter("optimizer.queries"),
            optimize_ns: registry.histogram("optimizer.optimize_ns"),
            candidates: CandidateMetrics::resolve(registry),
            push_decisions: registry.counter("optimizer.push_decisions"),
            parallel_choices: registry.counter("optimizer.parallel_choices"),
        }
    }
}
