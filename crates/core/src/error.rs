//! Optimizer errors.

use std::fmt;

use oorq_cost::CostError;
use oorq_pt::PtError;
use oorq_query::QueryError;

/// Errors raised by the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The query graph is invalid.
    Query(QueryError),
    /// Plan manipulation failed.
    Pt(PtError),
    /// Cost estimation failed.
    Cost(CostError),
    /// A name node consumed by the query has no producer and no extension.
    Unplannable(String),
    /// A class extension has no home entity in the physical schema.
    NoEntity(String),
    /// The graph's dependencies are cyclic in a non-fixpoint way.
    CyclicGraph,
    /// The static verifier found errors (stage, rendered diagnostics).
    Lint {
        /// Which optimization stage produced the offending artifact.
        stage: String,
        /// The error-severity diagnostics, rendered one per line.
        errors: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Query(e) => write!(f, "query: {e}"),
            OptError::Pt(e) => write!(f, "plan: {e}"),
            OptError::Cost(e) => write!(f, "cost: {e}"),
            OptError::Unplannable(n) => write!(f, "cannot plan name `{n}`"),
            OptError::NoEntity(n) => write!(f, "no physical entity for `{n}`"),
            OptError::CyclicGraph => write!(f, "non-fixpoint cyclic dependency"),
            OptError::Lint { stage, errors } => {
                write!(f, "verification failed after {stage}:\n{errors}")
            }
        }
    }
}

impl std::error::Error for OptError {}

impl From<QueryError> for OptError {
    fn from(e: QueryError) -> Self {
        OptError::Query(e)
    }
}
impl From<PtError> for OptError {
    fn from(e: PtError) -> Self {
        OptError::Pt(e)
    }
}
impl From<CostError> for OptError {
    fn from(e: CostError) -> Self {
        OptError::Cost(e)
    }
}
