//! The `translate` step (§4.3): from the conceptual query graph onto the
//! physical schema.
//!
//! Each arc `(N, tree)` is translated into a sequence of `IJ` nodes
//! implementing its tree label (the `translateArc` action applied to
//! saturation), and consecutive `IJ`s are `collapse`d into a `PIJ` when
//! an applicable path index exists. There may be several valid sequences
//! (sibling branches of the tree can be ordered freely, and each
//! collapsible run can be collapsed or not); the choice among them is
//! cost-based, so this module *enumerates* the alternatives and
//! `generatePT` prices them.

use std::collections::HashMap;

use oorq_pt::{IjStep, Pt};
use oorq_query::{Expr, QArc, TreeChild};
use oorq_schema::{AttrId, Catalog, ClassId, ResolvedType};
use oorq_storage::{EntityId, IndexId, PhysicalSchema};

use crate::error::OptError;

/// One implicit-join (or path-index) operation of a translated arc.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainOp {
    /// Dereference `on` through the named attribute into `out`.
    Ij {
        /// Source expression.
        on: Expr,
        /// The step descriptor.
        step: IjStep,
        /// Output column.
        out: String,
        /// Entity holding the sub-objects.
        target: EntityId,
    },
    /// Probe a path index with `on`, binding `outs`.
    Pij {
        /// The index.
        index: IndexId,
        /// Head-oid expression.
        on: Expr,
        /// Output columns.
        outs: Vec<String>,
        /// Entities spanned.
        targets: Vec<EntityId>,
    },
}

impl ChainOp {
    /// Columns the op produces.
    pub fn produces(&self) -> Vec<String> {
        match self {
            ChainOp::Ij { out, .. } => vec![out.clone()],
            ChainOp::Pij { outs, .. } => outs.clone(),
        }
    }

    /// Wrap a plan with this op.
    pub fn apply(&self, input: Pt) -> Pt {
        match self {
            ChainOp::Ij {
                on,
                step,
                out,
                target,
            } => Pt::IJ {
                on: on.clone(),
                step: step.clone(),
                out: out.clone(),
                input: Box::new(input),
                target: Box::new(Pt::entity(*target, format!("_t_{out}"))),
            },
            ChainOp::Pij {
                index,
                on,
                outs,
                targets,
            } => Pt::PIJ {
                index: *index,
                on: on.clone(),
                outs: outs.clone(),
                input: Box::new(input),
                targets: targets
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Pt::entity(*t, format!("_p{i}")))
                    .collect(),
            },
        }
    }
}

/// A translated arc: a base plan (leaf or plugged subtree) plus a chain
/// of implicit joins, with the variable substitution mapping query-graph
/// variables to column expressions.
#[derive(Debug, Clone)]
pub struct ArcChain {
    /// The base plan (entity leaf, temporary leaf, or a plugged PT for a
    /// previously planned derived name).
    pub base: Pt,
    /// Columns produced by the base.
    pub base_cols: Vec<String>,
    /// The implicit-join chain, in order.
    pub ops: Vec<ChainOp>,
    /// Query variable → column expression.
    pub subst: HashMap<String, Expr>,
    /// The leaf entity when the base is a bare class-extension leaf
    /// (enables index access-method selection).
    pub leaf_entity: Option<EntityId>,
    /// Root variable of the arc.
    pub root_var: String,
}

impl ArcChain {
    /// All columns available after the whole chain.
    pub fn all_cols(&self) -> Vec<String> {
        let mut cols = self.base_cols.clone();
        for op in &self.ops {
            cols.extend(op.produces());
        }
        cols
    }
}

/// What a name node bottoms out to.
pub enum BasePlan {
    /// A class extension implemented by one or more atomic entities
    /// (several for a horizontally decomposed extension: the base plan
    /// is their union).
    Class(Vec<EntityId>, ClassId),
    /// A stored relation entity, with its typed fields.
    Relation(EntityId, Vec<(String, ResolvedType)>),
    /// The recursive occurrence of a fixpoint: a temporary.
    Temp(String, Vec<(String, ResolvedType)>),
    /// A previously planned derived/view producer, with its typed output
    /// columns.
    Plugged(Pt, Vec<(String, ResolvedType)>),
}

/// Translate an arc against its base plan, enumerating cost-relevant
/// alternatives (root-branch orderings × collapse choices). At least one
/// alternative is always returned.
pub fn translate_arc(
    catalog: &Catalog,
    physical: &PhysicalSchema,
    arc: &QArc,
    base: BasePlan,
    fresh: &mut impl FnMut() -> String,
    max_alternatives: usize,
) -> Result<Vec<ArcChain>, OptError> {
    let root_var = arc.var.clone().unwrap_or_else(&mut *fresh);
    let mut subst: HashMap<String, Expr> = HashMap::new();
    let (base_pt, base_cols, leaf_entity, root_kind) = match base {
        BasePlan::Class(entities, c) => {
            subst.insert(root_var.clone(), Expr::Var(root_var.clone()));
            let leaf = (entities.len() == 1).then(|| entities[0]);
            let mut it = entities.into_iter();
            let first = it.next().expect("a class has at least one entity");
            let pt = it.fold(Pt::entity(first, root_var.clone()), |acc, e| {
                Pt::union(acc, Pt::entity(e, root_var.clone()))
            });
            (pt, vec![root_var.clone()], leaf, RootKind::Object(c))
        }
        BasePlan::Relation(e, fields) => {
            let cols: Vec<String> = fields
                .iter()
                .map(|(f, _)| format!("{root_var}.{f}"))
                .collect();
            (
                Pt::entity(e, root_var.clone()),
                cols,
                None,
                RootKind::Row(fields),
            )
        }
        BasePlan::Temp(name, fields) => {
            let cols: Vec<String> = fields
                .iter()
                .map(|(f, _)| format!("{root_var}.{f}"))
                .collect();
            (
                Pt::temp(name, root_var.clone()),
                cols,
                None,
                RootKind::Row(fields),
            )
        }
        BasePlan::Plugged(pt, out_cols) => {
            // Rename the producer's columns to `rootvar.col`.
            let cols: Vec<String> = out_cols
                .iter()
                .map(|(c, _)| format!("{root_var}.{c}"))
                .collect();
            let proj = Pt::proj(
                out_cols
                    .iter()
                    .map(|(c, _)| (format!("{root_var}.{c}"), Expr::Var(c.clone())))
                    .collect(),
                pt,
            );
            (proj, cols, None, RootKind::Row(out_cols))
        }
    };

    // Collect the IJ branches implied by the tree label, one per root
    // child (sibling order is a cost-based choice).
    let mut branches: Vec<Vec<ChainOp>> = Vec::new();
    match &root_kind {
        RootKind::Object(class) => {
            for child in &arc.label.children {
                let mut ops = Vec::new();
                build_object_child(
                    catalog,
                    physical,
                    *class,
                    &Expr::Var(root_var.clone()),
                    child,
                    &mut ops,
                    &mut subst,
                    fresh,
                )?;
                if !ops.is_empty() {
                    branches.push(ops);
                }
            }
        }
        RootKind::Row(fields) => {
            for child in &arc.label.children {
                let mut ops = Vec::new();
                build_row_child(
                    catalog, physical, fields, &root_var, child, &mut ops, &mut subst, fresh,
                )?;
                if !ops.is_empty() {
                    branches.push(ops);
                }
            }
        }
    }

    // Enumerate branch orderings (all permutations for few branches).
    let orderings: Vec<Vec<usize>> = if branches.len() <= 4 {
        permutations(branches.len())
    } else {
        vec![(0..branches.len()).collect()]
    };
    let mut out = Vec::new();
    for order in orderings {
        let ops: Vec<ChainOp> = order
            .iter()
            .flat_map(|&i| branches[i].iter().cloned())
            .collect();
        // Collapse alternatives: every way of collapsing collapsible runs.
        for collapsed in collapse_alternatives(catalog, physical, &ops) {
            out.push(ArcChain {
                base: base_pt.clone(),
                base_cols: base_cols.clone(),
                ops: collapsed,
                subst: subst.clone(),
                leaf_entity,
                root_var: root_var.clone(),
            });
            if out.len() >= max_alternatives {
                return Ok(dedup_chains(out));
            }
        }
    }
    Ok(dedup_chains(out))
}

enum RootKind {
    Object(ClassId),
    Row(Vec<(String, ResolvedType)>),
}

fn dedup_chains(mut chains: Vec<ArcChain>) -> Vec<ArcChain> {
    let mut seen: Vec<Vec<ChainOp>> = Vec::new();
    chains.retain(|c| {
        if seen.contains(&c.ops) {
            false
        } else {
            seen.push(c.ops.clone());
            true
        }
    });
    chains
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let rest = permutations(n - 1);
    for perm in rest {
        for pos in 0..=perm.len() {
            let mut p = perm.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

fn home_entity(physical: &PhysicalSchema, class: ClassId) -> Result<EntityId, OptError> {
    physical
        .entities_of_class(class)
        .first()
        .copied()
        .ok_or_else(|| OptError::NoEntity(format!("class {class:?}")))
}

/// Translate one child of an object-typed node. `parent` is the column
/// expression of the owning object.
#[allow(clippy::too_many_arguments)]
fn build_object_child(
    catalog: &Catalog,
    physical: &PhysicalSchema,
    class: ClassId,
    parent: &Expr,
    child: &TreeChild,
    ops: &mut Vec<ChainOp>,
    subst: &mut HashMap<String, Expr>,
    fresh: &mut impl FnMut() -> String,
) -> Result<(), OptError> {
    let Some(attr_name) = &child.attr else {
        // An element step directly under an object node is invalid; the
        // query validator rejects it earlier.
        return Err(OptError::Query(oorq_query::QueryError::BadLabelStep {
            step: "NIL".into(),
            ty: "object".into(),
        }));
    };
    let (aid, attr) = catalog.attr(class, attr_name).ok_or_else(|| {
        OptError::Query(oorq_query::QueryError::UnknownAttribute {
            class: catalog.class(class).name.clone(),
            attr: attr_name.clone(),
        })
    })?;
    let attr_expr = path_extend(parent, attr_name);
    match attr.ty.referenced_class() {
        Some(target_class) if attr.ty.is_collection() => {
            // Collection of objects: one IJ per element child
            // (independent member choices).
            if let Some(v) = &child.var {
                subst.insert(v.clone(), attr_expr.clone());
            }
            for elem in &child.tree.children {
                if elem.attr.is_some() {
                    return Err(OptError::Query(oorq_query::QueryError::BadLabelStep {
                        step: elem.attr.clone().unwrap_or_default(),
                        ty: "collection".into(),
                    }));
                }
                let out = elem.var.clone().unwrap_or_else(&mut *fresh);
                ops.push(ChainOp::Ij {
                    on: attr_expr.clone(),
                    step: IjStep::class_attr(catalog, class, aid),
                    out: out.clone(),
                    target: home_entity(physical, target_class)?,
                });
                subst.insert(out.clone(), Expr::Var(out.clone()));
                for grand in &elem.tree.children {
                    build_object_child(
                        catalog,
                        physical,
                        target_class,
                        &Expr::Var(out.clone()),
                        grand,
                        ops,
                        subst,
                        fresh,
                    )?;
                }
            }
            Ok(())
        }
        Some(target_class) => {
            // Scalar object reference: one IJ.
            let out = child.var.clone().unwrap_or_else(&mut *fresh);
            ops.push(ChainOp::Ij {
                on: attr_expr,
                step: IjStep::class_attr(catalog, class, aid),
                out: out.clone(),
                target: home_entity(physical, target_class)?,
            });
            subst.insert(out.clone(), Expr::Var(out.clone()));
            for grand in &child.tree.children {
                build_object_child(
                    catalog,
                    physical,
                    target_class,
                    &Expr::Var(out.clone()),
                    grand,
                    ops,
                    subst,
                    fresh,
                )?;
            }
            Ok(())
        }
        None => {
            // Atomic (or atomic-collection) attribute: a short path on
            // the parent column — no implicit join needed. This is why
            // pushing the projection on `name` costs nothing (§2.3).
            if let Some(v) = &child.var {
                subst.insert(v.clone(), attr_expr);
            }
            Ok(())
        }
    }
}

/// Translate one child of a row-typed (relation/temporary) node.
#[allow(clippy::too_many_arguments)]
fn build_row_child(
    catalog: &Catalog,
    physical: &PhysicalSchema,
    fields: &[(String, ResolvedType)],
    root_var: &str,
    child: &TreeChild,
    ops: &mut Vec<ChainOp>,
    subst: &mut HashMap<String, Expr>,
    fresh: &mut impl FnMut() -> String,
) -> Result<(), OptError> {
    let Some(field) = &child.attr else {
        return Err(OptError::Query(oorq_query::QueryError::BadLabelStep {
            step: "NIL".into(),
            ty: "row".into(),
        }));
    };
    let Some((_, field_ty)) = fields.iter().find(|(f, _)| f == field) else {
        return Err(OptError::Query(oorq_query::QueryError::UnknownField(
            field.clone(),
        )));
    };
    let field_expr = Expr::Var(format!("{root_var}.{field}"));
    // We need an IJ only when the child has sub-structure (atomic fields
    // and bare oid bindings are read directly from the row).
    if child.tree.is_leaf() {
        if let Some(v) = &child.var {
            subst.insert(v.clone(), field_expr);
        }
        return Ok(());
    }
    // Sub-structure: the field must reference a class.
    let target_class = field_ty
        .referenced_class()
        .ok_or_else(|| OptError::Query(oorq_query::QueryError::UnknownField(field.clone())))?;
    let out = child.var.clone().unwrap_or_else(&mut *fresh);
    ops.push(ChainOp::Ij {
        on: field_expr,
        step: IjStep::field(field.clone()),
        out: out.clone(),
        target: home_entity(physical, target_class)?,
    });
    subst.insert(out.clone(), Expr::Var(out.clone()));
    for grand in &child.tree.children {
        build_object_child(
            catalog,
            physical,
            target_class,
            &Expr::Var(out.clone()),
            grand,
            ops,
            subst,
            fresh,
        )?;
    }
    Ok(())
}

fn path_extend(parent: &Expr, step: &str) -> Expr {
    match parent {
        Expr::Var(v) => Expr::Path {
            base: v.clone(),
            steps: vec![step.to_string()],
        },
        Expr::Path { base, steps } => {
            let mut s = steps.clone();
            s.push(step.to_string());
            Expr::Path {
                base: base.clone(),
                steps: s,
            }
        }
        other => other.clone(),
    }
}

/// The `collapse` action (§4.3): all ways of replacing runs of
/// consecutive `IJ`s (linked output→input, stepping through class
/// attributes) by a `PIJ` when the physical schema has a matching path
/// index. The uncollapsed chain is always included; the choice is
/// cost-based downstream.
pub fn collapse_alternatives(
    _catalog: &Catalog,
    physical: &PhysicalSchema,
    ops: &[ChainOp],
) -> Vec<Vec<ChainOp>> {
    let mut out = vec![ops.to_vec()];
    // Find maximal collapsible runs [i, j): each op an Ij with
    // class_attr, each next op's `on` is exactly the previous `out`.
    for i in 0..ops.len() {
        for j in (i + 2)..=ops.len() {
            if !is_linked_run(ops, i, j) {
                continue;
            }
            let path: Option<Vec<(ClassId, AttrId)>> = ops[i..j]
                .iter()
                .map(|op| match op {
                    ChainOp::Ij { step, .. } => step.class_attr,
                    _ => None,
                })
                .collect();
            let Some(path) = path else { continue };
            let Some(desc) = physical.path_index(&path) else {
                continue;
            };
            // The PIJ is keyed by the *head* oid: the column the first
            // IJ dereferences. `Path(head, [attr])` gives head = the
            // index's head-class column; anything else cannot use the
            // index.
            let ChainOp::Ij { on: first_on, .. } = &ops[i] else {
                continue;
            };
            let Expr::Path { base: head, steps } = first_on else {
                continue;
            };
            if steps.len() != 1 {
                continue;
            }
            let on = Expr::Var(head.clone());
            let mut outs = Vec::new();
            let mut targets = Vec::new();
            for op in &ops[i..j] {
                let ChainOp::Ij { out, target, .. } = op else {
                    continue;
                };
                outs.push(out.clone());
                targets.push(*target);
            }
            let mut collapsed = ops[..i].to_vec();
            collapsed.push(ChainOp::Pij {
                index: desc.id,
                on,
                outs,
                targets,
            });
            collapsed.extend(ops[j..].iter().cloned());
            out.push(collapsed);
        }
    }
    out
}

fn is_linked_run(ops: &[ChainOp], i: usize, j: usize) -> bool {
    for k in i..j {
        let ChainOp::Ij { on, .. } = &ops[k] else {
            return false;
        };
        if k > i {
            let ChainOp::Ij { out: prev_out, .. } = &ops[k - 1] else {
                return false;
            };
            // The next step must dereference exactly the previous output
            // through one attribute: `Path(prev_out, [attr])`.
            match on {
                Expr::Path { base, steps } if base == prev_out && steps.len() == 1 => {}
                _ => return false,
            }
        }
    }
    true
}
