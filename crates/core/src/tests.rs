//! Optimizer tests: the full pipeline on the paper's running example,
//! with execution-level verification against the reference evaluator.

use std::sync::Arc;

use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{MusicConfig, MusicDb};
use oorq_exec::{eval_query_graph, Executor, MethodRegistry};
use oorq_index::{IndexSet, PathIndex, SelectionIndex};
use oorq_pt::Pt;
use oorq_query::paper::{
    fig2_query, fig3_query, influencer_view, music_catalog, sec45_pushjoin_query,
};
use oorq_query::{Expr, NameRef, QArc, QueryGraph, SpjNode};
use oorq_storage::DbStats;

use crate::*;

/// A music database with the paper's physical design: the
/// `works.instruments` path index and a name selection index.
fn setup(cfg: MusicConfig) -> (MusicDb, IndexSet, DbStats) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(cat, cfg);
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    let stats = DbStats::collect(&m.db);
    (m, idx, stats)
}

fn fig3_graph(m: &MusicDb) -> QueryGraph {
    let cat = m.db.catalog();
    let mut q = fig3_query(cat);
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

/// Figure 3 with a reachable generation bound (tiny test databases have
/// short chains).
fn fig3_graph_gen(m: &MusicDb, gen: i64) -> QueryGraph {
    let cat = m.db.catalog();
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

fn optimizer<'a>(m: &'a MusicDb, stats: &'a DbStats, config: OptimizerConfig) -> Optimizer<'a> {
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        stats,
        CostParams::default(),
    );
    Optimizer::new(model, config)
}

#[test]
fn fig2_nonrecursive_query_optimizes_and_executes() {
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 4,
        chain_len: 4,
        harpsichord_fraction: 0.6,
        ..Default::default()
    });
    let q = fig2_query(m.db.catalog());
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();

    let plan = {
        let mut opt = optimizer(&m, &stats, OptimizerConfig::cost_controlled());
        opt.optimize(&q).unwrap()
    };
    assert_eq!(plan.out_cols, vec!["title".to_string()]);
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan.pt).unwrap();
    let mut a = reference.rows.clone();
    let mut b = got.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "optimized plan must match reference semantics");
}

#[test]
fn fig3_recursive_query_output_matches_reference() {
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 2,
        chain_len: 6,
        harpsichord_fraction: 0.7,
        ..Default::default()
    });
    let q = fig3_graph_gen(&m, 2);
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    assert!(
        !reference.is_empty(),
        "the test query must select something"
    );

    for config in [
        OptimizerConfig::cost_controlled(),
        OptimizerConfig::deductive_heuristic(),
        OptimizerConfig::never_push(),
        OptimizerConfig::exhaustive(),
    ] {
        let plan = {
            let mut opt = optimizer(&m, &stats, config.clone());
            opt.optimize(&q).unwrap()
        };
        let mut ex = Executor::new(&mut m.db, &idx, &methods);
        let got = ex.run(&plan.pt).unwrap();
        let mut a = reference.rows.clone();
        let mut b = got.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "config {config:?} produced wrong answer");
    }
}

#[test]
fn fig3_plan_has_fixpoint_and_paper_shape() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let mut opt = optimizer(&m, &stats, OptimizerConfig::never_push());
    let plan = opt.optimize(&q).unwrap();
    // The plan contains a Fix over a Union whose recursive side scans the
    // Influencer temporary.
    let mut has_fix = false;
    plan.pt.visit(&mut |n| {
        if let Pt::Fix { temp, body } = n {
            has_fix = true;
            assert_eq!(temp, "Influencer");
            assert!(matches!(body.as_ref(), Pt::Union { .. }));
        }
    });
    assert!(has_fix);
    // Figure 4.(i): the harpsichord selection sits *outside* the Fix.
    let env = oorq_pt::PtEnv {
        catalog: m.db.catalog(),
        physical: m.db.physical(),
        temp_fields: [("Influencer".to_string(), m.influencer_fields())]
            .into_iter()
            .collect(),
    };
    let display = plan.pt.display(&env).to_string();
    assert!(display.contains("Fix(Influencer"), "{display}");
    assert!(display.contains("harpsichord"), "{display}");
    let fix_pos = display.find("Fix(Influencer").unwrap();
    let sel_pos = display.find("harpsichord").unwrap();
    assert!(
        sel_pos < fix_pos,
        "unpushed plan: selection should print before (outside) the Fix: {display}"
    );
    // Trace covers all four steps.
    let summary = plan.trace.summary();
    for step in ["rewrite", "translate", "generatePT", "transformPT"] {
        assert!(summary.contains(step), "missing {step} in:\n{summary}");
    }
}

#[test]
fn cost_controlled_push_decision_matches_cost_comparison() {
    // Deep chains + expensive path predicate: pushing re-evaluates the
    // path every iteration over the growing temporary — the §4.6
    // conclusion is that pushing loses.
    let (m, _idx, stats) = setup(MusicConfig {
        chains: 4,
        chain_len: 10,
        works_per_composer: 3,
        instruments_per_work: 3,
        harpsichord_fraction: 0.5,
        ..Default::default()
    });
    let q = fig3_graph(&m);
    let unpushed = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::never_push());
        o.optimize(&q).unwrap()
    };
    let pushed = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::deductive_heuristic());
        o.optimize(&q).unwrap()
    };
    let chosen = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::cost_controlled());
        o.optimize(&q).unwrap()
    };
    let params = CostParams::default();
    let best = unpushed.cost.total(&params).min(pushed.cost.total(&params));
    assert!(
        chosen.cost.total(&params) <= best + 1e-6,
        "cost-controlled ({}) must match the cheaper of unpushed ({}) / pushed ({})",
        chosen.cost.total(&params),
        unpushed.cost.total(&params),
        pushed.cost.total(&params)
    );
}

#[test]
fn pushjoin_query_pushes_selective_join() {
    // §4.5: "composers influenced by the masters of Bach" — the join is
    // extremely selective, pushing restricts the fixpoint to one chain.
    let (m, _idx, stats) = setup(MusicConfig {
        chains: 12,
        chain_len: 8,
        ..Default::default()
    });
    let q = {
        let cat = m.db.catalog();
        let mut q = sec45_pushjoin_query(cat);
        influencer_view(cat).expand(&mut q, cat).unwrap();
        q
    };
    let unpushed = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::never_push());
        o.optimize(&q).unwrap()
    };
    let chosen = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::cost_controlled());
        o.optimize(&q).unwrap()
    };
    let params = CostParams::default();
    assert!(
        chosen.cost.total(&params) < unpushed.cost.total(&params),
        "pushing the Bach join must win: chosen {} vs unpushed {}",
        chosen.cost.total(&params),
        unpushed.cost.total(&params)
    );
    // The chosen plan has the join inside the fixpoint (semi-join on the
    // base side).
    let mut join_inside_fix = false;
    chosen.pt.visit(&mut |n| {
        if let Pt::Fix { body, .. } = n {
            body.visit(&mut |inner| {
                if matches!(inner, Pt::EJ { .. }) {
                    join_inside_fix = true;
                }
            });
        }
    });
    assert!(
        join_inside_fix,
        "expected the selective join pushed into the fixpoint"
    );
}

#[test]
fn pushjoin_execution_matches_reference_both_ways() {
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 3,
        chain_len: 5,
        ..Default::default()
    });
    let q = {
        let cat = m.db.catalog();
        let mut q = sec45_pushjoin_query(cat);
        influencer_view(cat).expand(&mut q, cat).unwrap();
        q
    };
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    assert!(!reference.is_empty(), "Bach's chain has disciples");
    for config in [
        OptimizerConfig::cost_controlled(),
        OptimizerConfig::never_push(),
    ] {
        let plan = {
            let mut opt = optimizer(&m, &stats, config);
            opt.optimize(&q).unwrap()
        };
        let mut ex = Executor::new(&mut m.db, &idx, &methods);
        let got = ex.run(&plan.pt).unwrap();
        let mut a = reference.rows.clone();
        let mut b = got.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

#[test]
fn exhaustive_is_never_beaten_by_dp_or_greedy() {
    let (m, _idx, stats) = setup(MusicConfig {
        chains: 6,
        chain_len: 5,
        ..Default::default()
    });
    let q = fig3_graph(&m);
    let params = CostParams::default();
    let cost_of = |strategy| {
        let mut opt = optimizer(
            &m,
            &stats,
            OptimizerConfig {
                spj_strategy: strategy,
                rand: None,
                ..Default::default()
            },
        );
        opt.optimize(&q).unwrap().cost.total(&params)
    };
    let ex = cost_of(SpjStrategy::Exhaustive);
    let dp = cost_of(SpjStrategy::Dp);
    let greedy = cost_of(SpjStrategy::Greedy);
    assert!(ex <= dp + 1e-6, "exhaustive {ex} must not lose to dp {dp}");
    assert!(
        ex <= greedy + 1e-6,
        "exhaustive {ex} must not lose to greedy {greedy}"
    );
}

#[test]
fn randomized_phase_never_worsens_the_plan() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let params = CostParams::default();
    for kind in [RandKind::IterativeImprovement, RandKind::SimulatedAnnealing] {
        let base = {
            let mut opt = optimizer(
                &m,
                &stats,
                OptimizerConfig {
                    rand: None,
                    ..OptimizerConfig::cost_controlled()
                },
            );
            opt.optimize(&q).unwrap().cost.total(&params)
        };
        let refined = {
            let mut opt = optimizer(
                &m,
                &stats,
                OptimizerConfig {
                    rand: Some(RandConfig {
                        kind,
                        ..Default::default()
                    }),
                    ..OptimizerConfig::cost_controlled()
                },
            );
            opt.optimize(&q).unwrap().cost.total(&params)
        };
        assert!(refined <= base + 1e-6, "{kind:?}: {refined} vs {base}");
    }
}

#[test]
fn filter_action_pushes_only_propagated_conjuncts() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    )
    .with_temp("Influencer", m.influencer_fields());
    // Hand-build the Influencer fixpoint.
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
        Pt::entity(e, "x"),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("Influencer", "i"),
            Pt::entity(e, "x"),
        ),
    );
    let fix = Pt::fix("Influencer", Pt::union(base, rec));
    let propagated = propagated_columns(&fix);
    assert_eq!(
        propagated,
        vec!["master".to_string()],
        "only master is copied"
    );
    let info = FixInfo {
        temp: "Influencer".into(),
        out_cols: vec!["master".into(), "disciple".into(), "gen".into()],
        fields: m.influencer_fields(),
        propagated,
    };
    // gen >= 6 is NOT pushable; master-rooted selection is.
    assert!(!can_push(&Expr::var("gen").ge(Expr::int(6)), &info));
    let master_sel =
        Expr::path("master", &["works", "instruments", "name"]).eq(Expr::text("harpsichord"));
    assert!(can_push(&master_sel, &info));
    let pushed = filter_action(&model, &fix, &info, &master_sel).unwrap();
    // Both union sides now carry the selection.
    let Pt::Fix { body, .. } = &pushed else {
        panic!("expected Fix")
    };
    let Pt::Union { left, right } = body.as_ref() else {
        panic!("expected Union")
    };
    let mut sel_count = 0;
    for side in [left, right] {
        side.visit(&mut |n| {
            if let Pt::Sel { pred, .. } = n {
                if pred.to_string().contains("harpsichord") {
                    sel_count += 1;
                }
            }
        });
    }
    assert!(
        sel_count >= 2,
        "selection must appear in base and recursive sides"
    );
}

#[test]
fn filter_expansion_uses_path_index_inside_fixpoint() {
    // With the works.instruments path index available, the pushed
    // selection expands into IJ_master + PIJ_works.instruments — the
    // Figure 4.(ii) shape.
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let mut always = optimizer(&m, &stats, OptimizerConfig::deductive_heuristic());
    let plan = always.optimize(&q).unwrap();
    let env = oorq_pt::PtEnv {
        catalog: m.db.catalog(),
        physical: m.db.physical(),
        temp_fields: [("Influencer".to_string(), m.influencer_fields())]
            .into_iter()
            .collect(),
    };
    let display = plan.pt.display(&env).to_string();
    let fix_start = display.find("Fix(Influencer").expect("plan has a Fix");
    let inside = &display[fix_start..];
    assert!(
        inside.contains("harpsichord"),
        "pushed plan evaluates the selection inside the fixpoint: {display}"
    );
    assert!(
        inside.contains("PIJ_works.instruments") || inside.contains("IJ_works"),
        "pushed selection expanded into implicit joins: {display}"
    );
}

#[test]
fn always_push_executes_correctly_too() {
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 2,
        chain_len: 6,
        harpsichord_fraction: 0.7,
        ..Default::default()
    });
    let q = fig3_graph_gen(&m, 2);
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    let plan = {
        let mut opt = optimizer(&m, &stats, OptimizerConfig::deductive_heuristic());
        opt.optimize(&q).unwrap()
    };
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan.pt).unwrap();
    let mut a = reference.rows.clone();
    let mut b = got.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "pushed plan must preserve semantics");
}

#[test]
fn collapse_uses_existing_path_index() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let mut opt = optimizer(&m, &stats, OptimizerConfig::never_push());
    let plan = opt.optimize(&q).unwrap();
    // The consumer chain above the fixpoint traverses
    // master.works.instruments; with the path index present the
    // optimizer should collapse works.instruments into a PIJ when
    // cheaper.
    let mut has_pij = false;
    plan.pt.visit(&mut |n| {
        if matches!(n, Pt::PIJ { .. }) {
            has_pij = true;
        }
    });
    assert!(has_pij, "expected a PIJ in the plan");
}

#[test]
fn optimizer_trace_summarizes_figure6() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let mut opt = optimizer(&m, &stats, OptimizerConfig::cost_controlled());
    let plan = opt.optimize(&q).unwrap();
    let s = plan.trace.summary();
    assert!(s.contains("| rewrite | the entire query (graph) | irrevocable | Fix, Union |"));
    assert!(s.contains("| translate | one arc | cost-based |"), "{s}");
    assert!(s.contains("| generatePT | one predicate node | cost-based (generative) |"));
    assert!(s.contains("| transformPT | the entire query (PT) | cost-based (transformational)"));
}

#[test]
fn play_relation_join_optimizes_and_matches_reference() {
    // Figure 1's stored `Play` relation: instruments played by Bach.
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 3,
        chain_len: 4,
        ..Default::default()
    });
    let cat = m.db.catalog_rc();
    let play = cat.relation_by_name("Play").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(play), "r")],
            pred: Expr::path("r", &["who", "name"]).eq(Expr::text("Bach")),
            out_proj: vec![(
                "instrument".into(),
                Expr::path("r", &["instrument", "name"]),
            )],
        },
    );
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    assert!(!reference.is_empty(), "Bach plays something");
    let plan = {
        let mut opt = optimizer(&m, &stats, OptimizerConfig::cost_controlled());
        opt.optimize(&q).unwrap()
    };
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan.pt).unwrap();
    let mut a = reference.rows.clone();
    let mut b = got.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn translate_enumerates_orderings_and_collapse() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let cat = m.db.catalog();
    // The fig2 arc: after normalization its label has name + works
    // branches; translate must offer both branch orders and, with the
    // works.instruments index present, collapsed variants.
    let mut q = oorq_query::paper::fig2_query(cat);
    q.normalize(cat).unwrap();
    let spj = q.nodes[0].1.spjs()[0].clone();
    let composer_e = m.db.physical().entities_of_class(m.composer)[0];
    let mut counter = 0;
    let mut fresh = || {
        counter += 1;
        format!("_f{counter}")
    };
    let alts = translate_arc(
        cat,
        m.db.physical(),
        &spj.inputs[0],
        BasePlan::Class(vec![composer_e], m.composer),
        &mut fresh,
        16,
    )
    .unwrap();
    assert!(
        alts.len() >= 2,
        "expected ordering/collapse alternatives, got {}",
        alts.len()
    );
    // At least one alternative collapses works.instruments into a PIJ.
    let has_pij = alts
        .iter()
        .any(|a| a.ops.iter().any(|op| matches!(op, ChainOp::Pij { .. })));
    assert!(has_pij, "collapse must offer a PIJ alternative");
    // And the uncollapsed IJ-only chain is always kept.
    let has_plain = alts
        .iter()
        .any(|a| a.ops.iter().all(|op| matches!(op, ChainOp::Ij { .. })));
    assert!(has_plain);
    // Substitutions map every label variable.
    for v in spj.inputs[0].label.vars() {
        assert!(alts[0].subst.contains_key(&v), "unmapped label var {v}");
    }
    let _ = stats;
}

#[test]
fn best_selection_expands_long_paths_when_cheaper() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    );
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let pred = Expr::path("x", &["works", "instruments", "name"]).eq(Expr::text("flute"));
    let chosen = best_selection(&model, pred, Pt::entity(e, "x"), &["x".to_string()]).unwrap();
    // With the path index registered, the expansion through
    // PIJ_works.instruments must win over per-row dereferencing.
    let mut has_pij = false;
    chosen.visit(&mut |n| {
        if matches!(n, Pt::PIJ { .. }) {
            has_pij = true;
        }
    });
    assert!(has_pij, "expected PIJ expansion, got plain selection");
    // The result is projected back onto the original column.
    assert!(matches!(chosen, Pt::Proj { .. }));
}

#[test]
fn neighbours_enumerate_join_and_access_moves() {
    // `setup` builds a selection index on Composer.name.
    let (m, _idx, stats) = setup(MusicConfig::default());
    let sid =
        m.db.physical()
            .selection_index(m.composer, m.name_attr)
            .expect("setup built the name index")
            .id;
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    );
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let plan = Pt::ej(
        Expr::path("l", &["master"]).eq(Expr::path("r", &["master"])),
        Pt::sel(
            Expr::path("l", &["name"]).eq(Expr::text("Bach")),
            Pt::entity(e, "l"),
        ),
        Pt::entity(e, "r"),
    );
    let ns = neighbours(&model, &plan);
    // Swap, join-algo toggle (master is not indexed -> no index join),
    // and Sel scan->index toggle.
    assert!(
        ns.len() >= 2,
        "expected several neighbour moves, got {}",
        ns.len()
    );
    let has_swap = ns.iter().any(|n| {
        matches!(n, Pt::EJ { left, .. }
        if matches!(left.as_ref(), Pt::Entity { .. }))
    });
    assert!(has_swap, "operand swap must be a move");
    let has_index_sel = ns.iter().any(|n| {
        let mut found = false;
        n.visit(&mut |x| {
            if matches!(x, Pt::Sel { method: oorq_pt::AccessMethod::Index(i), .. } if *i == sid) {
                found = true;
            }
        });
        found
    });
    assert!(has_index_sel, "access-method toggle must be a move");
}

#[test]
fn parsed_program_optimizes_like_hand_built() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let cat = m.db.catalog();
    let src = r#"
        view Influencer as
          select [master: x.master, disciple: x, gen: 1]
          from x in Composer where x.master <> null
          union
          select [master: i.master, disciple: x, gen: i.gen + 1]
          from i in Influencer, x in Composer where i.disciple = x.master;
        select [name: i.disciple.name]
        from i in Influencer
        where i.master.works.instruments.name = "harpsichord" and i.gen >= 6
    "#;
    let q_parsed = oorq_query::parse::parse_query(cat, src).unwrap();
    let q_built = fig3_graph(&m);
    let params = CostParams::default();
    let a = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::never_push());
        o.optimize(&q_parsed).unwrap().cost.total(&params)
    };
    let b = {
        let mut o = optimizer(&m, &stats, OptimizerConfig::never_push());
        o.optimize(&q_built).unwrap().cost.total(&params)
    };
    assert!(
        (a - b).abs() < 1e-6,
        "parsed and hand-built plans must cost the same: {a} vs {b}"
    );
}

#[test]
fn distribute_join_over_union_preserves_semantics() {
    // §5: "distributing union over join and vice-versa ... we are able
    // to efficiently explore this transformation".
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 2,
        chain_len: 3,
        ..Default::default()
    });
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let pred = Expr::path("l", &["master"]).eq(Expr::var("r"));
    let plan = Pt::proj(
        vec![("n".into(), Expr::path("r", &["name"]))],
        Pt::ej(
            pred,
            Pt::union(
                Pt::sel(
                    Expr::path("l", &["name"]).eq(Expr::text("Bach")),
                    Pt::entity(e, "l"),
                ),
                Pt::sel(
                    Expr::path("l", &["name"]).eq(Expr::text("composer0")),
                    Pt::entity(e, "l"),
                ),
            ),
            Pt::entity(e, "r"),
        ),
    );
    let action = distribute_join_over_union_action();
    let distributed = action.apply(&plan).expect("pattern must match");
    // The join is now below the union.
    let mut shape_ok = false;
    distributed.visit(&mut |n| {
        if let Pt::Union { left, right } = n {
            if matches!(left.as_ref(), Pt::EJ { .. }) && matches!(right.as_ref(), Pt::EJ { .. }) {
                shape_ok = true;
            }
        }
    });
    assert!(shape_ok, "expected Union(EJ, EJ)");
    // Same answers.
    let methods = MethodRegistry::new();
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let a = ex.run(&plan).unwrap();
    let b = ex.run(&distributed).unwrap();
    let mut ra = a.rows.clone();
    let mut rb = b.rows.clone();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
    // And both cost estimates are computable (the framework can compare
    // them, which is the paper's §5 point).
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    );
    assert!(model.cost(&plan).is_ok());
    assert!(model.cost(&distributed).is_ok());
}

/// Property: every transformation move the walk can take from a
/// lint-clean plan yields a lint-clean plan with the same output
/// columns (explored to depth 2 from the optimized paper plans).
#[test]
fn transformation_moves_preserve_lint_cleanliness_and_columns() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let cat = m.db.catalog();
    let mut queries = vec![fig3_graph(&m)];
    {
        let mut q = sec45_pushjoin_query(cat);
        influencer_view(cat).expand(&mut q, cat).unwrap();
        queries.push(q);
    }
    for q in queries {
        let plan = {
            let mut opt = optimizer(&m, &stats, OptimizerConfig::never_push());
            opt.optimize(&q).unwrap()
        };
        let model = CostModel::new(
            m.db.catalog(),
            m.db.physical(),
            &stats,
            CostParams::default(),
        )
        .with_temp("Influencer", m.influencer_fields());
        let env = oorq_pt::PtEnv {
            catalog: m.db.catalog(),
            physical: m.db.physical(),
            temp_fields: model.temp_fields.clone(),
        };
        assert!(oorq_lint::verify_pt(&env, &plan.pt).is_clean());
        let base_cols = plan.pt.output_columns(&env).unwrap();
        let mut frontier = vec![plan.pt.clone()];
        let mut checked = 0usize;
        for _depth in 0..2 {
            let mut next = Vec::new();
            for pt in &frontier {
                for n in neighbours(&model, pt) {
                    let report = oorq_lint::verify_pt(&env, &n);
                    assert!(
                        report.is_clean(),
                        "a transformation move broke the plan:\n{}",
                        report.render()
                    );
                    let cols = n.output_columns(&env).unwrap();
                    assert_eq!(cols, base_cols, "a move changed the output columns");
                    checked += 1;
                    next.push(n);
                }
            }
            frontier = next;
        }
        assert!(checked > 0, "the paper plans must admit at least one move");
    }
}

/// Injecting a broken transformation action into the randomized walk:
/// the verifier rejects every ill-formed candidate (counting them and
/// recording the diagnostics in the trace) and the surviving plan stays
/// clean and semantically intact.
#[test]
fn broken_transformation_action_is_caught_by_the_verifier() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let plan = {
        let mut opt = optimizer(&m, &stats, OptimizerConfig::never_push());
        opt.optimize(&q).unwrap()
    };
    let model = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    )
    .with_temp("Influencer", m.influencer_fields());
    // A "transformation action" that always produces an ill-typed plan:
    // it filters on a column no input produces.
    let broken = |_: &CostModel<'_>, pt: &Pt| -> Vec<Pt> {
        vec![Pt::sel(
            Expr::var("no_such_column").eq(Expr::int(1)),
            pt.clone(),
        )]
    };
    let config = RandConfig {
        moves_per_walk: 5,
        restarts: 1,
        ..Default::default()
    };
    let mut trace = OptTrace::default();
    let obs = oorq_obs::Recorder::new();
    let outcome = rand_optimize_with(
        &model,
        plan.pt.clone(),
        &config,
        &broken,
        true,
        Some(&mut trace),
        &obs,
        &crate::metrics::CandidateMetrics::default(),
    );
    assert!(
        outcome.violations > 0,
        "the verifier must reject the broken moves"
    );
    assert_eq!(outcome.pt, plan.pt, "no broken move may enter the walk");
    let rejected: Vec<&StepTrace> = trace
        .steps
        .iter()
        .filter(|s| s.granularity.contains("rejected by the verifier"))
        .collect();
    assert_eq!(rejected.len(), outcome.violations);
    assert!(
        rejected[0].notes.iter().any(|n| n.contains("PT008")),
        "the trace must carry the lint diagnostic: {:?}",
        rejected[0].notes
    );
    // Without verification the same broken action corrupts the walk
    // only if it looks cheaper; with verification the plan is clean
    // regardless.
    let env = oorq_pt::PtEnv {
        catalog: m.db.catalog(),
        physical: m.db.physical(),
        temp_fields: model.temp_fields.clone(),
    };
    assert!(oorq_lint::verify_pt(&env, &outcome.pt).is_clean());
}

/// The debug-mode verifier is on by default and the optimizer's
/// intermediate stages pass it on the paper queries; turning it off is
/// explicit.
#[test]
fn optimizer_verification_levels() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    assert_eq!(OptimizerConfig::default().verify, VerifyLevel::Debug);
    assert!(VerifyLevel::Strict.active());
    assert!(!VerifyLevel::Off.active());
    for verify in [VerifyLevel::Off, VerifyLevel::Strict] {
        let config = OptimizerConfig {
            verify,
            ..OptimizerConfig::cost_controlled()
        };
        let mut opt = optimizer(&m, &stats, config);
        opt.optimize(&q)
            .expect("the paper query must verify at every stage");
    }
}

/// The parallel-placement pass (step 5): with a zero-overhead parallel
/// term every eligible subtree of positive cost picks the full worker
/// pool, the recorded choices agree with the spec, and executing the
/// plan under the spec reproduces the serial answer byte-for-byte.
#[test]
fn parallel_placement_chooses_dop_and_preserves_results() {
    let (mut m, idx, stats) = setup(MusicConfig {
        chains: 4,
        chain_len: 6,
        harpsichord_fraction: 0.7,
        ..Default::default()
    });
    let q = fig3_graph_gen(&m, 2);
    let methods = MethodRegistry::new();

    let config = OptimizerConfig {
        threads: 4,
        parallel: oorq_cost::ParallelParams {
            startup: 0.0,
            merge_per_row: 0.0,
            efficiency: 1.0,
        },
        ..OptimizerConfig::cost_controlled()
    };
    let plan = {
        let mut opt = optimizer(&m, &stats, config);
        opt.optimize(&q).unwrap()
    };
    assert!(
        !plan.parallel.is_empty(),
        "a zero-overhead parallel term must parallelize something"
    );
    assert_eq!(plan.parallel.len(), plan.parallel_choices.len());
    for c in &plan.parallel_choices {
        assert_eq!(plan.parallel.get(&c.pt_node), Some(&c.workers));
        assert!(c.workers >= 2, "{c:?}");
        assert!(c.parallel_cost < c.serial_cost, "{c:?}");
        assert!(c.predicted_speedup() > 1.0, "{c:?}");
    }

    let serial = {
        let mut ex = Executor::new(&mut m.db, &idx, &methods);
        ex.run(&plan.pt).unwrap()
    };
    let parallel = {
        let mut ex = Executor::new(&mut m.db, &idx, &methods)
            .with_config(oorq_exec::ExecConfig {
                threads: 2,
                ..Default::default()
            })
            .with_parallel(plan.parallel.clone());
        ex.run(&plan.pt).unwrap()
    };
    assert_eq!(
        serial.rows, parallel.rows,
        "parallel execution must match serial row-for-row, in order"
    );
}

/// With the realistic default overheads every accepted choice is still
/// cost-justified (parallel strictly cheaper), and threads=0 disables
/// the pass outright.
#[test]
fn parallel_placement_is_cost_controlled() {
    let (m, _idx, stats) = setup(MusicConfig::default());
    let q = fig3_graph(&m);
    let plan = {
        let config = OptimizerConfig {
            threads: 4,
            ..OptimizerConfig::never_push()
        };
        let mut opt = optimizer(&m, &stats, config);
        opt.optimize(&q).unwrap()
    };
    for c in &plan.parallel_choices {
        assert!(c.parallel_cost < c.serial_cost, "{c:?}");
    }
    let plan0 = {
        let mut opt = optimizer(&m, &stats, OptimizerConfig::never_push());
        opt.optimize(&q).unwrap()
    };
    assert!(plan0.parallel.is_empty());
    assert!(plan0.parallel_choices.is_empty());
}
