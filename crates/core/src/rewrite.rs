//! The `rewrite` step (§4.2): make `Union` and `Fix` explicit.
//!
//! ```text
//! rewrite(Q) { repeat union(Q); fixpoint(Q) until saturation }
//! ```
//!
//! Both actions are *irrevocable* — applied to saturation with no choices
//! involved, like in classic query rewriters.

use oorq_query::{GraphTerm, NameRef, QueryGraph};

use crate::trace::{OptTrace, Step, StrategyKind};

/// Apply the `union` action once: two producers of the same name are
/// merged into one `Union` term. Returns whether anything changed.
///
/// ```text
/// union: Q | (Name ← p1) ∈ Q ∧ (Name ← p2) ∈ Q
///        → Q − {(Name ← p1), (Name ← p2)} ∪ {(Name ← Union(p1, p2))}
/// ```
pub fn union_action(graph: &mut QueryGraph) -> bool {
    for i in 0..graph.nodes.len() {
        for j in (i + 1)..graph.nodes.len() {
            if graph.nodes[i].0 == graph.nodes[j].0 {
                let (_, p2) = graph.nodes.remove(j);
                let (name, p1) = graph.nodes.remove(i);
                graph
                    .nodes
                    .insert(i, (name, GraphTerm::Union(Box::new(p1), Box::new(p2))));
                return true;
            }
        }
    }
    false
}

/// True when `Name = p(Name)` is computable as a fixpoint: the term's
/// SPJ inputs reference `name` itself (linearly — at most one recursive
/// occurrence per SPJ, which both the semi-naive evaluator and the
/// Kifer–Lozinskii push conditions assume).
pub fn fixpoint_recursion(name: &NameRef, term: &GraphTerm) -> bool {
    if matches!(term, GraphTerm::Fix(..)) {
        return false; // already rewritten
    }
    term.spjs()
        .iter()
        .any(|spj| spj.inputs.iter().any(|arc| arc.name == *name))
}

/// Apply the `fixpoint` action once.
///
/// ```text
/// fixpoint: Name | (Name ← p) ∈ Q ∧ fixpointRecursion(Name)
///           → Fix(Name, p)
/// ```
pub fn fixpoint_action(graph: &mut QueryGraph) -> bool {
    for i in 0..graph.nodes.len() {
        let (name, term) = &graph.nodes[i];
        if fixpoint_recursion(name, term) {
            let (name, term) = graph.nodes.remove(i);
            graph
                .nodes
                .insert(i, (name.clone(), GraphTerm::Fix(name, Box::new(term))));
            return true;
        }
    }
    false
}

/// The full `rewrite` procedure: both actions to saturation.
pub fn rewrite(graph: &mut QueryGraph, trace: &mut OptTrace) {
    let rec = trace.record(
        Step::Rewrite,
        "the entire query (graph)",
        StrategyKind::Irrevocable,
    );
    loop {
        let mut changed = false;
        while union_action(graph) {
            rec.generated("Union");
            changed = true;
        }
        while fixpoint_action(graph) {
            rec.generated("Fix");
            changed = true;
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oorq_query::paper::{fig3_query, influencer_view, music_catalog};

    #[test]
    fn rewrite_makes_union_and_fix_explicit() {
        let cat = music_catalog();
        let mut q = fig3_query(&cat);
        influencer_view(&cat).expand(&mut q, &cat).unwrap();
        assert_eq!(q.nodes.len(), 3);
        let mut trace = OptTrace::default();
        rewrite(&mut q, &mut trace);
        // P1 and P2 merged into Union, wrapped in Fix.
        assert_eq!(q.nodes.len(), 2);
        let influencer = cat.relation_by_name("Influencer").unwrap();
        let producers = q.producers(&NameRef::Relation(influencer));
        assert_eq!(producers.len(), 1);
        match producers[0] {
            GraphTerm::Fix(n, body) => {
                assert_eq!(*n, NameRef::Relation(influencer));
                assert!(matches!(body.as_ref(), GraphTerm::Union(..)));
            }
            other => panic!("expected Fix, got {other:?}"),
        }
        // Trace recorded both node kinds.
        let s = trace.summary();
        assert!(s.contains("rewrite"), "{s}");
        assert!(s.contains("Fix, Union"), "{s}");
        // Saturation: rewriting again changes nothing.
        let before = q.clone();
        let mut t2 = OptTrace::default();
        rewrite(&mut q, &mut t2);
        assert_eq!(q, before);
    }

    #[test]
    fn non_recursive_graph_untouched() {
        let cat = music_catalog();
        let mut q = oorq_query::paper::fig2_query(&cat);
        let before = q.clone();
        let mut trace = OptTrace::default();
        rewrite(&mut q, &mut trace);
        assert_eq!(q, before);
    }
}
