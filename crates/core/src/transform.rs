//! The `transformPT` step (§4.5): pushing selective operations through
//! recursion, then randomized re-optimization.
//!
//! Unlike deductive-DB rewriters, pushing happens *after* a complete PT
//! exists, so the effect of the transformation is measured by the cost
//! model before it is committed (the paper's central claim). The
//! `filter` action pushes selections through the fixpoint following
//! \[KL86\]; a similar action pushes **joins** — the novel case §4.5
//! highlights. Randomized strategies (Iterative Improvement and
//! Simulated Annealing, per \[IC90\]) then try to further improve the
//! transformed plan (e.g. by using an applicable index after a portion
//! of the PT was shifted).

use oorq_cost::CostModel;
use oorq_prng::Prng;
use oorq_pt::{AccessMethod, IjStep, JoinAlgo, Pt};
use oorq_query::{CmpOp, Expr};
use oorq_schema::{ClassId, ResolvedType};
use oorq_storage::EntitySource;

use crate::error::OptError;
use crate::translate::{collapse_alternatives, ChainOp};

/// How pushing through recursion is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushStrategy {
    /// The paper: build both plans, keep the cheaper (cost-controlled).
    CostControlled,
    /// The deductive-DB heuristic: always push when legal.
    AlwaysPush,
    /// Never push (selection stays above the fixpoint).
    NeverPush,
}

/// Facts about a planned fixpoint needed by the push actions.
#[derive(Debug, Clone)]
pub struct FixInfo {
    /// The temporary's name.
    pub temp: String,
    /// Output column names of the fixpoint.
    pub out_cols: Vec<String>,
    /// Field types of the temporary.
    pub fields: Vec<(String, ResolvedType)>,
    /// Columns *propagated unchanged* by the recursive side (copied from
    /// the temporary input) — the \[KL86\] `canPush` condition: a
    /// selection on these columns commutes with the fixpoint.
    pub propagated: Vec<String>,
}

// Moved into `oorq-pt` so the lint engine can share it; re-exported
// here for existing call sites.
pub use oorq_pt::propagated_columns;

/// The `canPush` constraint for one conjunct expressed over the
/// fixpoint's output columns: every column it references must be
/// propagated.
pub fn can_push(conjunct: &Expr, info: &FixInfo) -> bool {
    let vars = conjunct.vars();
    !vars.is_empty()
        && vars.iter().all(|v| info.propagated.contains(v))
        // Linearity is guaranteed by construction (one temp occurrence).
        && !matches!(conjunct, Expr::True)
}

/// The `filter` action: push a selection (over fix-output columns)
/// through the recursion:
///
/// ```text
/// filter: Sel_pred(pt(Fix(Rec, Union(Base, pt'(Rec)))))
///         | canPush(pred, Rec)
///         → Fix(Rec, Union(Sel_pred(pt(Base)), pt'(Sel_pred(pt(Rec)))))
/// ```
///
/// The base side gets the selection over its output columns; in the
/// recursive side the selection wraps the recursive occurrence (the
/// temporary leaf, with the predicate re-qualified to its columns).
/// When the predicate embeds a path expression, the selection is
/// *expanded* into an IJ chain (and collapsed into a `PIJ` if an index
/// applies) so the shifted portion is re-optimized — this is what puts
/// "additional implicit joins inside the computation of the fixpoint"
/// (§2.3) and makes the push a genuine cost trade-off.
pub fn filter_action(
    model: &CostModel<'_>,
    fix: &Pt,
    info: &FixInfo,
    pred: &Expr,
) -> Result<Pt, OptError> {
    let Pt::Fix { temp, body } = fix else {
        return Err(OptError::Pt(oorq_pt::PtError::FixBodyNotUnion));
    };
    let Pt::Union { left, right } = body.as_ref() else {
        return Err(OptError::Pt(oorq_pt::PtError::FixBodyNotUnion));
    };
    let (base, rec) = if left.references_temp(temp) {
        (right.as_ref().clone(), left.as_ref().clone())
    } else {
        (left.as_ref().clone(), right.as_ref().clone())
    };

    // Base side: selection over the base's output columns, expanded.
    let base_sel = best_selection(model, pred.clone(), base, &info.out_cols)?;

    // Recursive side: wrap the temporary occurrence. Re-qualify the
    // predicate to the temp leaf's columns.
    let mut temp_var = None;
    rec.visit(&mut |n| {
        if let Pt::Temp { name, var } = n {
            if name == temp && temp_var.is_none() {
                temp_var = Some(var.clone());
            }
        }
    });
    let tv = temp_var.ok_or_else(|| OptError::Unplannable("no temp occurrence".into()))?;
    let qualified = pred.map_leaves(&mut |leaf| match leaf {
        Expr::Var(v) if info.propagated.contains(v) => Some(Expr::Var(format!("{tv}.{v}"))),
        Expr::Path { base, steps } if info.propagated.contains(base) => Some(Expr::Path {
            base: format!("{tv}.{base}"),
            steps: steps.clone(),
        }),
        _ => None,
    });
    let temp_cols: Vec<String> = info
        .fields
        .iter()
        .map(|(n, _)| format!("{tv}.{n}"))
        .collect();
    let rec_pushed = replace_temp_with(&rec, temp, &|leaf| {
        // Defer the expansion choice to `best_selection` on a clone.
        Pt::sel(qualified.clone(), leaf)
    });
    // Expand the selection we just wrapped around the temp leaf.
    let rec_pushed = expand_sels_over_temp(model, rec_pushed, temp, &temp_cols)?;

    Ok(Pt::fix(temp.clone(), Pt::union(base_sel, rec_pushed)))
}

/// The push-join action (§4.5): restrict the fixpoint's base by a very
/// selective explicit join (a semi-join, projected back to the
/// temporary's fields). The join predicate must reference only
/// propagated columns on the fixpoint side, so every derived tuple of a
/// surviving base tuple still joins — and every derived tuple of a
/// dropped one would not.
pub fn push_join_action(
    fix: &Pt,
    info: &FixInfo,
    join_pred_over_fix_cols: &Expr,
    inner: &Pt,
) -> Result<Pt, OptError> {
    let Pt::Fix { temp, body } = fix else {
        return Err(OptError::Pt(oorq_pt::PtError::FixBodyNotUnion));
    };
    let Pt::Union { left, right } = body.as_ref() else {
        return Err(OptError::Pt(oorq_pt::PtError::FixBodyNotUnion));
    };
    let (base, rec) = if left.references_temp(temp) {
        (right.as_ref().clone(), left.as_ref().clone())
    } else {
        (left.as_ref().clone(), right.as_ref().clone())
    };
    // Semi-join: EJ then project back to the temporary's fields (the
    // projection deduplicates).
    let semi = Pt::proj(
        info.out_cols
            .iter()
            .map(|c| (c.clone(), Expr::Var(c.clone())))
            .collect(),
        Pt::ej(join_pred_over_fix_cols.clone(), base, inner.clone()),
    );
    Ok(Pt::fix(temp.clone(), Pt::union(semi, rec)))
}

/// Build the cheapest realization of `Sel_pred(input)` where `pred` may
/// contain long path expressions over `cols`: either the plain selection
/// (paths evaluated by dereference) or the expansion into an IJ chain
/// (optionally collapsed into a `PIJ`), projected back to `cols`.
pub fn best_selection(
    model: &CostModel<'_>,
    pred: Expr,
    input: Pt,
    cols: &[String],
) -> Result<Pt, OptError> {
    let mut candidates = vec![Pt::sel(pred.clone(), input.clone())];
    if let Some(expanded) = expand_path_selection(model, &pred, &input, cols)? {
        candidates.extend(expanded);
    }
    pick_cheapest(model, candidates)
}

fn pick_cheapest(model: &CostModel<'_>, candidates: Vec<Pt>) -> Result<Pt, OptError> {
    let mut best: Option<(f64, Pt)> = None;
    for pt in candidates {
        let Ok(pc) = model.cost(&pt) else { continue };
        let total = pc.total(&model.params);
        match &best {
            Some((c, _)) if *c <= total => {}
            _ => best = Some((total, pt)),
        }
    }
    best.map(|(_, pt)| pt)
        .ok_or_else(|| OptError::Unplannable("selection".into()))
}

/// Expand each long-path conjunct of `pred` into an IJ chain plus a
/// short selection, projecting back to `cols` afterwards. Returns all
/// collapse alternatives (`None` if no conjunct has a long path).
fn expand_path_selection(
    model: &CostModel<'_>,
    pred: &Expr,
    input: &Pt,
    cols: &[String],
) -> Result<Option<Vec<Pt>>, OptError> {
    // Resolve column classes from the input plan.
    let env = oorq_pt::PtEnv {
        catalog: model.catalog,
        physical: model.physical,
        temp_fields: model.temp_fields.clone(),
    };
    let col_types: std::collections::HashMap<String, ResolvedType> = input
        .output_columns(&env)
        .map_err(OptError::Pt)?
        .into_iter()
        .collect();
    let mut ops: Vec<ChainOp> = Vec::new();
    let mut fresh = 0usize;
    let mut any_long = false;
    let rewritten = try_rewrite(pred, &col_types, model, &mut ops, &mut fresh, &mut any_long)?;
    if !any_long {
        return Ok(None);
    }
    let mut out = Vec::new();
    for alt in collapse_alternatives(model.catalog, model.physical, &ops) {
        let mut pt = input.clone();
        for op in &alt {
            pt = op.apply(pt);
        }
        pt = Pt::sel(rewritten.clone(), pt);
        // Project back to the original columns.
        pt = Pt::proj(
            cols.iter()
                .map(|c| (c.clone(), Expr::Var(c.clone())))
                .collect(),
            pt,
        );
        out.push(pt);
    }
    Ok(Some(out))
}

/// Rewrite long paths in the predicate into references to fresh IJ
/// output columns, accumulating the chain ops.
fn try_rewrite(
    pred: &Expr,
    col_types: &std::collections::HashMap<String, ResolvedType>,
    model: &CostModel<'_>,
    ops: &mut Vec<ChainOp>,
    fresh: &mut usize,
    any_long: &mut bool,
) -> Result<Expr, OptError> {
    let mut failure = None;
    let result = pred.map_leaves(&mut |leaf| {
        let Expr::Path { base, steps } = leaf else {
            return None;
        };
        if steps.len() < 2 {
            return None;
        }
        let mut col: String;
        let mut class: ClassId;
        let mut consumed: usize;
        let mut emitted = false;
        if let Some(ty) = col_types.get(base) {
            class = strip(ty.clone()).object_class()?;
            col = base.clone();
            consumed = 0;
        } else {
            // Qualified column `base.step0`: an oid-valued field of a
            // row. Its dereference is itself an implicit join (e.g.
            // `IJ_master(Influencer, Composer)`).
            let q = format!("{base}.{}", steps[0]);
            let ty = col_types.get(&q)?;
            class = strip(ty.clone()).object_class()?;
            if steps.len() >= 2 {
                *fresh += 1;
                let out = format!("_x{fresh}");
                let target = match model.physical.entities_of_class(class).first() {
                    Some(e) => *e,
                    None => {
                        failure = Some(OptError::NoEntity(format!("{class:?}")));
                        return None;
                    }
                };
                ops.push(ChainOp::Ij {
                    on: Expr::Var(q),
                    step: IjStep::field(steps[0].clone()),
                    out: out.clone(),
                    target,
                });
                emitted = true;
                col = out;
            } else {
                col = q;
            }
            consumed = 1;
        }
        while consumed < steps.len() {
            let step = &steps[consumed];
            let Some((aid, attr)) = model.catalog.attr(class, step) else {
                break;
            };
            match attr.ty.referenced_class() {
                Some(next) if consumed + 1 < steps.len() => {
                    *fresh += 1;
                    let out = format!("_x{fresh}");
                    let target = match model.physical.entities_of_class(next).first() {
                        Some(e) => *e,
                        None => {
                            failure = Some(OptError::NoEntity(format!("{next:?}")));
                            return None;
                        }
                    };
                    ops.push(ChainOp::Ij {
                        on: Expr::Path {
                            base: col.clone(),
                            steps: vec![step.clone()],
                        },
                        step: IjStep::class_attr(model.catalog, class, aid),
                        out: out.clone(),
                        target,
                    });
                    emitted = true;
                    col = out;
                    class = next;
                    consumed += 1;
                }
                _ => break,
            }
        }
        if !emitted {
            return None;
        }
        *any_long = true;
        let rest: Vec<String> = steps[consumed..].to_vec();
        Some(if rest.is_empty() {
            Expr::Var(col)
        } else {
            Expr::Path {
                base: col,
                steps: rest,
            }
        })
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(result),
    }
}

trait ObjectClass {
    fn object_class(&self) -> Option<ClassId>;
}
impl ObjectClass for ResolvedType {
    fn object_class(&self) -> Option<ClassId> {
        match self {
            ResolvedType::Object(c) => Some(*c),
            _ => None,
        }
    }
}

fn strip(ty: ResolvedType) -> ResolvedType {
    match ty {
        ResolvedType::Set(e) | ResolvedType::List(e) => strip(*e),
        other => other,
    }
}

/// Replace every `Temp(temp)` leaf by `wrap(leaf)`.
fn replace_temp_with(pt: &Pt, temp: &str, wrap: &impl Fn(Pt) -> Pt) -> Pt {
    match pt {
        Pt::Temp { name, .. } if name == temp => wrap(pt.clone()),
        other => {
            let mut out = other.clone();
            let originals: Vec<Pt> = other.children().into_iter().cloned().collect();
            for (i, child) in out.children_mut().into_iter().enumerate() {
                *child = replace_temp_with(&originals[i], temp, wrap);
            }
            out
        }
    }
}

/// Expand any `Sel` sitting directly on a `Temp(temp)` leaf (inserted by
/// the filter action) into its cheapest realization.
fn expand_sels_over_temp(
    model: &CostModel<'_>,
    pt: Pt,
    temp: &str,
    temp_cols: &[String],
) -> Result<Pt, OptError> {
    match &pt {
        Pt::Sel { pred, input, .. } if matches!(input.as_ref(), Pt::Temp { name, .. } if name == temp) => {
            best_selection(model, pred.clone(), input.as_ref().clone(), temp_cols)
        }
        _ => {
            let mut out = pt.clone();
            let originals: Vec<Pt> = pt.children().into_iter().cloned().collect();
            for (i, child) in out.children_mut().into_iter().enumerate() {
                *child = expand_sels_over_temp(model, originals[i].clone(), temp, temp_cols)?;
            }
            Ok(out)
        }
    }
}

/// §5's "open problem" transformation, expressible in this framework:
/// distribute an explicit join over a union,
/// `EJ_pred(Union(a, b), c) → Union(EJ_pred(a, c), EJ_pred(b, c))` —
/// stated as a declarative `action: F | constraint → G` over the
/// pattern engine, and offered to the randomized strategies as a move.
pub fn distribute_join_over_union_action<'a>() -> oorq_pt::TransformAction<'a> {
    use oorq_pt::{Pattern, TransformAction};
    TransformAction::new(
        "distributeJoinOverUnion",
        Pattern::ej(
            Pattern::union(Pattern::bind("a"), Pattern::bind("b")),
            Pattern::bind("c"),
        )
        .named("join"),
        |bindings| {
            let Pt::EJ { pred, algo, .. } = bindings.tree("join").ok()? else {
                return None;
            };
            let a = bindings.tree("a").ok()?.clone();
            let b = bindings.tree("b").ok()?.clone();
            let c = bindings.tree("c").ok()?.clone();
            Some(Pt::union(
                Pt::EJ {
                    pred: pred.clone(),
                    algo: *algo,
                    left: Box::new(a),
                    right: Box::new(c.clone()),
                },
                Pt::EJ {
                    pred: pred.clone(),
                    algo: *algo,
                    left: Box::new(b),
                    right: Box::new(c),
                },
            ))
        },
    )
}

// ---------------------------------------------------------------------
// Randomized re-optimization (Iterative Improvement / Simulated
// Annealing, per [IC90]).
// ---------------------------------------------------------------------

/// Randomized strategy kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandKind {
    /// Iterative Improvement: random downhill walks with restarts.
    IterativeImprovement,
    /// Simulated Annealing: accepts uphill moves with decaying
    /// probability.
    SimulatedAnnealing,
}

/// Configuration of the randomized phase.
#[derive(Debug, Clone)]
pub struct RandConfig {
    /// Which strategy.
    pub kind: RandKind,
    /// Moves attempted per walk.
    pub moves_per_walk: usize,
    /// Restarts (II) / temperature steps (SA).
    pub restarts: usize,
    /// Initial temperature (SA).
    pub initial_temperature: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig {
            kind: RandKind::IterativeImprovement,
            moves_per_walk: 30,
            restarts: 3,
            initial_temperature: 2.0,
            seed: 0xC0FFEE,
        }
    }
}

/// All neighbour plans reachable by one transformation move: swapping
/// explicit-join operands, toggling join algorithms, and toggling
/// selection access methods where an index applies.
pub fn neighbours(model: &CostModel<'_>, pt: &Pt) -> Vec<Pt> {
    let mut out = Vec::new();
    for (path, sub) in oorq_pt::subtrees(pt) {
        match sub {
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => {
                // Swap operands.
                let swapped = Pt::EJ {
                    pred: pred.clone(),
                    algo: JoinAlgo::NestedLoop,
                    left: right.clone(),
                    right: left.clone(),
                };
                push_variant(pt, &path, swapped, &mut out);
                // Toggle algorithm.
                match algo {
                    JoinAlgo::IndexJoin(_) => {
                        let nl = Pt::EJ {
                            pred: pred.clone(),
                            algo: JoinAlgo::NestedLoop,
                            left: left.clone(),
                            right: right.clone(),
                        };
                        push_variant(pt, &path, nl, &mut out);
                    }
                    JoinAlgo::NestedLoop => {
                        if let Some(idx) = applicable_join_index(model, pred, right) {
                            let ij = Pt::EJ {
                                pred: pred.clone(),
                                algo: JoinAlgo::IndexJoin(idx),
                                left: left.clone(),
                                right: right.clone(),
                            };
                            push_variant(pt, &path, ij, &mut out);
                        }
                    }
                }
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => match method {
                AccessMethod::Index(_) => {
                    let scan = Pt::sel(pred.clone(), input.as_ref().clone());
                    push_variant(pt, &path, scan, &mut out);
                }
                AccessMethod::Scan => {
                    if let Some(idx) = applicable_sel_index(model, pred, input) {
                        let isel = Pt::Sel {
                            pred: pred.clone(),
                            method: AccessMethod::Index(idx),
                            input: input.clone(),
                        };
                        push_variant(pt, &path, isel, &mut out);
                    }
                }
            },
            _ => {}
        }
    }
    // Distribution of join over union (§5), as additional moves.
    out.extend(distribute_join_over_union_action().apply_all(pt));
    out
}

fn push_variant(pt: &Pt, path: &[usize], replacement: Pt, out: &mut Vec<Pt>) {
    let mut variant = pt.clone();
    if variant.replace_at(path, replacement).is_ok() {
        out.push(variant);
    }
}

fn applicable_sel_index(
    model: &CostModel<'_>,
    pred: &Expr,
    input: &Pt,
) -> Option<oorq_storage::IndexId> {
    let Pt::Entity { id, var } = input else {
        return None;
    };
    let EntitySource::Class(class) = model.physical.entity(*id).source else {
        return None;
    };
    for c in pred.conjuncts() {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let path = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Path { base, steps }, Expr::Lit(_)) if steps.len() == 1 => {
                    Some((base, &steps[0]))
                }
                (Expr::Lit(_), Expr::Path { base, steps }) if steps.len() == 1 => {
                    Some((base, &steps[0]))
                }
                _ => None,
            };
            if let Some((b, attr_name)) = path {
                if b == var {
                    if let Some((aid, _)) = model.catalog.attr(class, attr_name) {
                        if let Some(desc) = model.physical.selection_index(class, aid) {
                            return Some(desc.id);
                        }
                    }
                }
            }
        }
    }
    None
}

fn applicable_join_index(
    model: &CostModel<'_>,
    pred: &Expr,
    right: &Pt,
) -> Option<oorq_storage::IndexId> {
    let Pt::Entity { id, var } = right else {
        return None;
    };
    let EntitySource::Class(class) = model.physical.entity(*id).source else {
        return None;
    };
    for c in pred.conjuncts() {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = c
        {
            for side in [lhs.as_ref(), rhs.as_ref()] {
                if let Expr::Path { base, steps } = side {
                    if base == var && steps.len() == 1 {
                        if let Some((aid, _)) = model.catalog.attr(class, &steps[0]) {
                            if let Some(desc) = model.physical.selection_index(class, aid) {
                                return Some(desc.id);
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// A neighbour generator for the randomized walk: every plan one move
/// away from the current one.
pub type MoveFn<'f> = dyn Fn(&CostModel<'_>, &Pt) -> Vec<Pt> + 'f;

/// What a verified randomized walk produced.
#[derive(Debug, Clone)]
pub struct RandOutcome {
    /// The best plan found (never worse than the start).
    pub pt: Pt,
    /// Candidate moves the verifier rejected as ill-formed.
    pub violations: usize,
}

/// Run a randomized strategy from a starting plan; returns the best plan
/// found (never worse than the start).
pub fn rand_optimize(model: &CostModel<'_>, start: Pt, config: &RandConfig) -> Pt {
    rand_optimize_with(
        model,
        start,
        config,
        &neighbours,
        false,
        None,
        &oorq_obs::Recorder::disabled(),
        &crate::metrics::CandidateMetrics::default(),
    )
    .pt
}

/// [`rand_optimize`] with a pluggable move generator and an optional
/// verification layer: when `verify` is on, every candidate move is
/// checked with the lint engine before acceptance — an ill-formed
/// candidate is rejected (and counted) instead of entering the walk,
/// and the rejection is recorded in the trace. The move generator is a
/// parameter so tests can inject a broken transformation action and
/// observe the verifier catching it.
#[allow(clippy::too_many_arguments)]
pub fn rand_optimize_with(
    model: &CostModel<'_>,
    start: Pt,
    config: &RandConfig,
    moves: &MoveFn<'_>,
    verify: bool,
    mut trace: Option<&mut crate::trace::OptTrace>,
    obs: &oorq_obs::Recorder,
    cand_metrics: &crate::metrics::CandidateMetrics,
) -> RandOutcome {
    // One structured `candidate` event per attempted move; each also
    // lands in one candidate-outcome metric bucket (metrics aggregate
    // even when tracing is off).
    let candidate_event =
        |pick: &Pt, c: Option<f64>, incumbent: f64, outcome: &str, reason: &str| {
            cand_metrics.outcome(outcome, reason);
            if !obs.enabled() {
                return;
            }
            let mut fields: oorq_obs::Fields = vec![
                ("step".into(), "transformPT".into()),
                (
                    "fingerprint".into(),
                    format!("{:016x}", pick.fingerprint()).into(),
                ),
            ];
            if let Some(c) = c {
                fields.push(("cost".into(), c.into()));
            }
            fields.push(("incumbent_cost".into(), incumbent.into()));
            fields.push(("outcome".into(), outcome.into()));
            fields.push(("reason".into(), reason.into()));
            obs.event("optimizer", "candidate", fields);
        };
    let lint_env = || oorq_pt::PtEnv {
        catalog: model.catalog,
        physical: model.physical,
        temp_fields: model.temp_fields.clone(),
    };
    let mut violations = 0usize;
    let Ok(start_cost) = model.cost(&start) else {
        return RandOutcome {
            pt: start,
            violations,
        };
    };
    // Static analyzer for provable pruning: when a candidate differs
    // from the incumbent by one result-preserving toggle and its
    // subtree cost interval lies strictly above the incumbent's, the
    // move is discarded by proof instead of estimate.
    let analyzer = oorq_analysis::Analyzer::new(
        model.catalog,
        model.physical,
        model.stats,
        model.params.clone(),
    );
    let analyze = |pt: &Pt| {
        analyzer
            .analyze_with_temps(pt, model.temp_fields.clone())
            .ok()
    };
    let mut best = start.clone();
    let mut best_cost = start_cost.total(&model.params);
    let mut rng = Prng::new(config.seed);
    for _ in 0..config.restarts.max(1) {
        let mut current = best.clone();
        let mut current_cost = best_cost;
        // Analysis of `current`, computed lazily and invalidated on
        // every accepted move.
        let mut current_analysis: Option<Option<oorq_analysis::Analysis>> = None;
        let mut temperature = config.initial_temperature;
        for _ in 0..config.moves_per_walk {
            let ns = moves(model, &current);
            if ns.is_empty() {
                break;
            }
            let pick = ns[rng.index(ns.len())].clone();
            if verify {
                let report = oorq_lint::verify_pt(&lint_env(), &pick);
                oorq_lint::record_report(obs, "transformPT (randomized move)", &report);
                if !report.is_clean() {
                    violations += 1;
                    candidate_event(
                        &pick,
                        None,
                        current_cost,
                        "reject",
                        &format!(
                            "verifier rejected the move: {}",
                            report.codes().into_iter().collect::<Vec<_>>().join(", ")
                        ),
                    );
                    if let Some(t) = trace.as_deref_mut() {
                        let s = t.record(
                            crate::trace::Step::TransformPt,
                            "one move (rejected by the verifier)",
                            crate::trace::StrategyKind::CostBasedTransformational,
                        );
                        for d in report.errors() {
                            s.note(format!("{d}"));
                        }
                    }
                    continue;
                }
            }
            if let Some(div) = oorq_analysis::equivalent_local_change(&lint_env(), &pick, &current)
            {
                let cur = current_analysis
                    .get_or_insert_with(|| analyze(&current))
                    .as_ref();
                if let (Some(inc), Some(cand)) = (cur, analyze(&pick)) {
                    if let Some((lo, hi)) = oorq_analysis::proven_worse(&cand, inc, div) {
                        candidate_event(
                            &pick,
                            None,
                            current_cost,
                            "prune",
                            &format!(
                                "pruned-proven: diverged subtree cost bound [{lo:.3}, …] \
                                 strictly above incumbent [… , {hi:.3}]"
                            ),
                        );
                        continue;
                    }
                }
            }
            let Ok(pc) = model.cost(&pick) else { continue };
            let c = pc.total(&model.params);
            let accept = match config.kind {
                RandKind::IterativeImprovement => c < current_cost,
                RandKind::SimulatedAnnealing => {
                    c < current_cost
                        || rng.chance(
                            (-(c - current_cost) / temperature.max(1e-9))
                                .exp()
                                .clamp(0.0, 1.0),
                        )
                }
            };
            let reason = match (accept, c < current_cost, config.kind) {
                (_, true, _) => "downhill move",
                (true, false, _) => "uphill move accepted (simulated annealing)",
                (false, false, RandKind::IterativeImprovement) => {
                    "uphill move (iterative improvement accepts only downhill)"
                }
                (false, false, RandKind::SimulatedAnnealing) => {
                    "uphill move rejected (annealing chance failed)"
                }
            };
            candidate_event(
                &pick,
                Some(c),
                current_cost,
                if accept { "accept" } else { "reject" },
                reason,
            );
            if accept {
                current = pick;
                current_cost = c;
                current_analysis = None;
                if c < best_cost {
                    best = current.clone();
                    best_cost = c;
                }
            }
            temperature *= 0.9;
        }
    }
    RandOutcome {
        pt: best,
        violations,
    }
}
