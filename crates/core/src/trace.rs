//! Optimizer trace: the Figure 6 summary, observed on a real run.
//!
//! Each optimization step records its granularity, the kind of strategy
//! that drove it, and the PT node kinds it generated, so the summary
//! table of Figure 6 can be regenerated from an actual optimization.

use std::fmt;

/// The four optimization steps of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `rewrite` — make `Union`/`Fix` explicit.
    Rewrite,
    /// `translate` — onto the physical schema.
    Translate,
    /// `generatePT` — optimize predicate nodes.
    GeneratePt,
    /// `transformPT` — position selective operators w.r.t. recursion.
    TransformPt,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Step::Rewrite => "rewrite",
            Step::Translate => "translate",
            Step::GeneratePt => "generatePT",
            Step::TransformPt => "transformPT",
        };
        write!(f, "{s}")
    }
}

/// Strategy kind driving a step (Figure 6's "Strategy" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// No choices involved, applied to saturation.
    Irrevocable,
    /// Cost-based generative (builds candidates bottom-up).
    CostBasedGenerative,
    /// Cost-based transformational (rewrites a complete plan).
    CostBasedTransformational,
    /// Cost-based (choice among alternatives).
    CostBased,
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyKind::Irrevocable => "irrevocable",
            StrategyKind::CostBasedGenerative => "cost-based (generative)",
            StrategyKind::CostBasedTransformational => "cost-based (transformational)",
            StrategyKind::CostBased => "cost-based",
        };
        write!(f, "{s}")
    }
}

/// One recorded step.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Which step.
    pub step: Step,
    /// Optimization granule ("the entire query (graph)", "one arc", ...).
    pub granularity: String,
    /// Strategy kind.
    pub strategy: StrategyKind,
    /// PT node kinds generated (`Fix`, `Union`, `IJ`, `PIJ`, `EJ`, `Sel`).
    pub nodes_generated: Vec<String>,
    /// Free-form notes (actions applied, costs compared).
    pub notes: Vec<String>,
}

/// The whole optimization trace.
#[derive(Debug, Clone, Default)]
pub struct OptTrace {
    /// Recorded steps, in order.
    pub steps: Vec<StepTrace>,
}

impl OptTrace {
    /// Record a step.
    pub fn record(
        &mut self,
        step: Step,
        granularity: impl Into<String>,
        strategy: StrategyKind,
    ) -> &mut StepTrace {
        self.steps.push(StepTrace {
            step,
            granularity: granularity.into(),
            strategy,
            nodes_generated: Vec::new(),
            notes: Vec::new(),
        });
        self.steps.last_mut().expect("just pushed")
    }

    /// Render the Figure 6 style summary table.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "| Procedure | Granularity | Strategy | PT nodes generated |\n\
             |---|---|---|---|\n",
        );
        for s in &self.steps {
            let nodes = if s.nodes_generated.is_empty() {
                "none".to_string()
            } else {
                let mut uniq: Vec<&str> = s.nodes_generated.iter().map(String::as_str).collect();
                uniq.sort();
                uniq.dedup();
                uniq.join(", ")
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                s.step, s.granularity, s.strategy, nodes
            ));
        }
        out
    }
}

impl StepTrace {
    /// Note a generated node kind.
    pub fn generated(&mut self, kind: &str) {
        self.nodes_generated.push(kind.to_string());
    }

    /// Add a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }
}
