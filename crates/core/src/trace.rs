//! Optimizer trace: the Figure 6 summary, observed on a real run.
//!
//! Each optimization step records its granularity, the kind of strategy
//! that drove it, and the PT node kinds it generated, so the summary
//! table of Figure 6 can be regenerated from an actual optimization.

use std::fmt;

use oorq_cost::NodeCost;

/// The four optimization steps of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `rewrite` — make `Union`/`Fix` explicit.
    Rewrite,
    /// `translate` — onto the physical schema.
    Translate,
    /// `generatePT` — optimize predicate nodes.
    GeneratePt,
    /// `transformPT` — position selective operators w.r.t. recursion.
    TransformPt,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Step::Rewrite => "rewrite",
            Step::Translate => "translate",
            Step::GeneratePt => "generatePT",
            Step::TransformPt => "transformPT",
        };
        write!(f, "{s}")
    }
}

/// Strategy kind driving a step (Figure 6's "Strategy" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// No choices involved, applied to saturation.
    Irrevocable,
    /// Cost-based generative (builds candidates bottom-up).
    CostBasedGenerative,
    /// Cost-based transformational (rewrites a complete plan).
    CostBasedTransformational,
    /// Cost-based (choice among alternatives).
    CostBased,
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyKind::Irrevocable => "irrevocable",
            StrategyKind::CostBasedGenerative => "cost-based (generative)",
            StrategyKind::CostBasedTransformational => "cost-based (transformational)",
            StrategyKind::CostBased => "cost-based",
        };
        write!(f, "{s}")
    }
}

/// One recorded step.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Which step.
    pub step: Step,
    /// Optimization granule ("the entire query (graph)", "one arc", ...).
    pub granularity: String,
    /// Strategy kind.
    pub strategy: StrategyKind,
    /// PT node kinds generated (`Fix`, `Union`, `IJ`, `PIJ`, `EJ`, `Sel`).
    pub nodes_generated: Vec<String>,
    /// Free-form notes (actions applied, costs compared).
    pub notes: Vec<String>,
}

/// The whole optimization trace.
#[derive(Debug, Clone, Default)]
pub struct OptTrace {
    /// Recorded steps, in order.
    pub steps: Vec<StepTrace>,
    /// Per-node predicted cost breakdown of the *final* plan. Each line
    /// carries the pre-order PT node index (`oorq_pt::node_ids`), the
    /// join key against the executor's per-operator observed counters
    /// (`OpReport::pt_node`).
    pub final_breakdown: Vec<NodeCost>,
}

impl OptTrace {
    /// Record a step.
    pub fn record(
        &mut self,
        step: Step,
        granularity: impl Into<String>,
        strategy: StrategyKind,
    ) -> &mut StepTrace {
        self.steps.push(StepTrace {
            step,
            granularity: granularity.into(),
            strategy,
            nodes_generated: Vec::new(),
            notes: Vec::new(),
        });
        self.steps.last_mut().expect("just pushed")
    }

    /// Record the final plan's per-node predicted cost breakdown.
    pub fn record_breakdown(&mut self, breakdown: &[NodeCost]) {
        self.final_breakdown = breakdown.to_vec();
    }

    /// Render the recorded final-plan breakdown as a table (empty when
    /// no breakdown was recorded).
    pub fn breakdown_table(&self) -> String {
        if self.final_breakdown.is_empty() {
            return String::new();
        }
        let mut out = String::from(
            "| node | operator | est. io | est. cpu | est. rows |\n|---|---|---|---|---|\n",
        );
        for n in &self.final_breakdown {
            let id = n
                .node
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "| {} | {} | {:.0} | {:.0} | {:.0} |\n",
                id, n.label, n.cost.io, n.cost.cpu, n.rows
            ));
        }
        out
    }

    /// Render the Figure 6 style summary table, followed by each step's
    /// recorded notes (actions applied, costs compared).
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "| Procedure | Granularity | Strategy | PT nodes generated |\n\
             |---|---|---|---|\n",
        );
        for s in &self.steps {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                s.step,
                s.granularity,
                s.strategy,
                s.nodes_summary()
            ));
        }
        let mut noted = false;
        for s in &self.steps {
            if s.notes.is_empty() {
                continue;
            }
            if !noted {
                out.push('\n');
                noted = true;
            }
            for n in &s.notes {
                out.push_str(&format!("{}: {}\n", s.step, n));
            }
        }
        out
    }
}

impl StepTrace {
    /// Note a generated node kind.
    pub fn generated(&mut self, kind: &str) {
        self.nodes_generated.push(kind.to_string());
    }

    /// Node kinds with multiplicity: `Fix, Sel ×3` — deduplicated but
    /// counted (the previous rendering dropped multiplicity), sorted by
    /// kind for a stable table.
    pub fn nodes_summary(&self) -> String {
        if self.nodes_generated.is_empty() {
            return "none".to_string();
        }
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for kind in &self.nodes_generated {
            *counts.entry(kind).or_insert(0) += 1;
        }
        counts
            .iter()
            .map(|(k, c)| {
                if *c > 1 {
                    format!("{k} ×{c}")
                } else {
                    (*k).to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Add a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }
}
