//! Plan-fingerprint distinctness over the optimizer corpus.
//!
//! `Pt::fingerprint` keys the serving layer's plan cache, so it must be
//! injective in practice: two structurally different plans must never
//! share a fingerprint, and one plan must always hash the same. This
//! suite optimizes the paper's scenario corpus under every enumeration
//! strategy, collects the chosen plans *and every subtree of them*
//! (each subtree is a plan the optimizer's bottom-up enumeration
//! considered), and checks fingerprint ↔ canonical-text injectivity
//! pairwise across the whole pool.

use std::collections::HashMap;

use oorq_bench::PaperSetup;
use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{ChainConfig, ChainDb};
use oorq_pt::Pt;
use oorq_storage::DbStats;

/// Collect a plan and all of its subtrees as (fingerprint, canonical
/// text) pairs.
fn harvest(pt: &Pt, pool: &mut Vec<(u64, String)>) {
    pt.visit(&mut |n| pool.push((n.fingerprint(), format!("{n:?}"))));
}

fn corpus() -> Vec<(u64, String)> {
    let mut pool: Vec<(u64, String)> = Vec::new();

    let setup = PaperSetup::new(PaperSetup::paper_scale());
    let configs = [
        OptimizerConfig::cost_controlled(),
        OptimizerConfig::never_push(),
        OptimizerConfig::deductive_heuristic(),
        OptimizerConfig::exhaustive(),
    ];
    for q in [setup.fig3(), setup.pushjoin()] {
        for config in &configs {
            harvest(&setup.optimize(&q, config.clone()).pt, &mut pool);
        }
    }

    let chain = ChainDb::generate(ChainConfig {
        relations: 3,
        rows: 80,
        domain: 16,
        seed: 5,
    });
    let stats = DbStats::collect(&chain.db);
    for q in [chain.chain_query(8), chain.selective_tail_query(3)] {
        for config in [
            OptimizerConfig::cost_controlled(),
            OptimizerConfig::exhaustive(),
        ] {
            let model = CostModel::new(
                chain.db.catalog(),
                chain.db.physical(),
                &stats,
                CostParams::default(),
            );
            let plan = Optimizer::new(model, config)
                .optimize(&q)
                .expect("chain optimization");
            harvest(&plan.pt, &mut pool);
        }
    }

    pool
}

#[test]
fn fingerprints_are_injective_across_the_optimizer_corpus() {
    let pool = corpus();
    assert!(
        pool.len() >= 100,
        "corpus too small to be meaningful: {} subtrees",
        pool.len()
    );

    // fingerprint → canonical text: one fingerprint must never cover
    // two different plans (a collision would let the plan cache serve
    // the wrong plan but for its text re-verification).
    let mut by_fp: HashMap<u64, &String> = HashMap::new();
    // canonical text → fingerprint: one plan must always hash the same.
    let mut by_text: HashMap<&String, u64> = HashMap::new();
    let mut distinct = 0usize;
    for (fp, text) in &pool {
        match by_fp.get(fp) {
            None => {
                by_fp.insert(*fp, text);
                distinct += 1;
            }
            Some(prev) => assert_eq!(
                *prev, text,
                "fingerprint collision: {fp:#018x} covers two distinct plans"
            ),
        }
        match by_text.get(text) {
            None => {
                by_text.insert(text, *fp);
            }
            Some(prev) => assert_eq!(*prev, *fp, "unstable fingerprint: one plan hashed two ways"),
        }
    }
    assert!(
        distinct >= 30,
        "corpus collapsed to too few distinct subtrees: {distinct}"
    );
}
