//! CLI contract of the `reproduce` binary: the numeric environment
//! knobs must be strictly parsed (a typo'd value exits 2 with a
//! message, never a silent default), and unknown sections list the
//! registry and exit 2.

use std::process::Command;

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

/// A cheap section that still goes through `main`'s env validation.
const CHEAP: &[&str] = &["lint", "--explain", "CX003"];

#[test]
fn unparseable_threads_env_is_rejected() {
    let out = reproduce()
        .args(CHEAP)
        .env("OORQ_THREADS", "four")
        .output()
        .expect("spawn reproduce");
    assert_eq!(out.status.code(), Some(2), "exit 2 on bad OORQ_THREADS");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("OORQ_THREADS") && stderr.contains("four"),
        "message must name the variable and the bad value, got: {stderr}"
    );
}

#[test]
fn unparseable_memory_budget_env_is_rejected() {
    let out = reproduce()
        .args(CHEAP)
        .env("OORQ_MEMORY_BUDGET", "-3")
        .output()
        .expect("spawn reproduce");
    assert_eq!(
        out.status.code(),
        Some(2),
        "exit 2 on bad OORQ_MEMORY_BUDGET"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("OORQ_MEMORY_BUDGET"),
        "message must name the variable, got: {stderr}"
    );
}

#[test]
fn valid_env_values_are_accepted() {
    let out = reproduce()
        .args(CHEAP)
        .env("OORQ_THREADS", "2")
        .env("OORQ_MEMORY_BUDGET", "16")
        .output()
        .expect("spawn reproduce");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("CX003"));
}

#[test]
fn unknown_section_lists_registry_and_exits_2() {
    let out = reproduce().arg("no-such-section").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown section"));
    assert!(
        stderr.contains("serve-gate"),
        "registry must list serve-gate"
    );
}
