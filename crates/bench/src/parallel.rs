//! The parallel-execution reproduction section (`reproduce parallel`):
//! serial versus parallel wall time across the scenario corpus, with
//! the optimizer's predicted per-subtree speedup joined against the
//! observed one.
//!
//! For every scenario the harness optimizes with a worker budget
//! ([`oorq_core::OptimizerConfig::threads`]), so the optimizer chooses
//! a degree of parallelism per subtree; executes the plan twice over a
//! cold cache — once fully serial (no parallel spec) and once under the
//! chosen spec with the worker pool enabled — and verifies the two
//! answers are identical row-for-row and in order (the exchange
//! operators' determinism contract). The report ends `PASS` only when
//! every scenario's parallel answer is byte-identical to its serial
//! one; wall-clock speedups are reported but not gated (they are
//! machine facts).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{parts_catalog, ChainConfig, ChainDb, PartsConfig, PartsDb};
use oorq_exec::{ExecConfig, Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_query::QueryGraph;
use oorq_storage::{Database, DbStats};

use crate::calibrate::parts_query;
use crate::scenarios::PaperSetup;

/// Predicted-vs-observed speedup of one parallelized subtree.
#[derive(Debug, Clone)]
pub struct SubtreeSpeedup {
    /// PT node id of the subtree root (the spec key).
    pub pt_node: usize,
    /// Physical label of the chosen subtree root.
    pub label: String,
    /// Chosen degree of parallelism.
    pub workers: usize,
    /// The optimizer's predicted speedup (serial over parallel cost).
    pub predicted: f64,
    /// Observed speedup: the subtree's inclusive wall in the serial run
    /// over the parallel operator's inclusive wall in the parallel run.
    /// `None` when either run carries no wall sample for the node.
    pub observed: Option<f64>,
}

/// One scenario's serial-vs-parallel comparison.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Scenario/strategy label.
    pub name: String,
    /// Answer rows (identical in both runs when `identical`).
    pub rows: usize,
    /// True when the parallel answer matched the serial one
    /// row-for-row, in order.
    pub identical: bool,
    /// Serial wall time, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time, milliseconds.
    pub parallel_ms: f64,
    /// Worker lanes the parallel run forked (0 = the optimizer kept the
    /// whole plan serial).
    pub lanes: usize,
    /// Per-subtree placement decisions with observed outcomes.
    pub subtrees: Vec<SubtreeSpeedup>,
}

impl ParallelRun {
    /// End-to-end observed speedup of this scenario.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            1.0
        }
    }
}

/// Worker-pool size and breaker memory budget — the two execution
/// knobs every run in the corpus shares.
#[derive(Clone, Copy)]
struct Knobs {
    threads: u32,
    budget: u64,
}

/// Optimize with a worker budget, execute serial and parallel, compare.
fn run_one(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    config: OptimizerConfig,
    knobs: Knobs,
    name: String,
) -> Result<ParallelRun, String> {
    let Knobs { threads, budget } = knobs;
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let mut opt = Optimizer::new(model, OptimizerConfig { threads, ..config });
    let plan = opt
        .optimize(q)
        .map_err(|e| format!("{name}: optimization failed: {e}"))?;

    // Serial baseline: the plain plan, no parallel operators at all.
    // The breaker memory budget applies to both runs, so a differential
    // pass under a low budget compares spilling against spilling.
    db.cold_cache();
    let (serial_rows, serial_ms, serial_ops) = {
        let mut ex = Executor::new(db, idx, methods).with_config(ExecConfig {
            memory_budget_pages: budget,
            ..ExecConfig::default()
        });
        let t0 = Instant::now();
        let out = ex
            .run(&plan.pt)
            .map_err(|e| format!("{name}: serial execution failed: {e}"))?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (out.rows, ms, ex.report().ops)
    };

    // Parallel: the same plan lowered under the optimizer's spec, with
    // the worker pool enabled.
    db.cold_cache();
    let (par_rows, parallel_ms, par_report) = {
        let mut ex = Executor::new(db, idx, methods)
            .with_config(ExecConfig {
                threads,
                memory_budget_pages: budget,
                ..ExecConfig::default()
            })
            .with_parallel(plan.parallel.clone());
        let t0 = Instant::now();
        let out = ex
            .run(&plan.pt)
            .map_err(|e| format!("{name}: parallel execution failed: {e}"))?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (out.rows, ms, ex.report())
    };

    // Join predicted speedups against observed inclusive walls: in the
    // serial run the subtree root's op carries the node's wall; in the
    // parallel run the Exchange/Merge wrapper (same PT node) brackets
    // the fork-to-join interval.
    let serial_wall = |node: usize| -> Option<u64> {
        serial_ops
            .iter()
            .filter(|o| o.pt_node == node)
            .map(|o| o.wall_inclusive_ns)
            .max()
    };
    let parallel_wall = |node: usize| -> Option<u64> {
        par_report
            .ops
            .iter()
            .filter(|o| {
                o.pt_node == node
                    && (o.label.starts_with("Exchange") || o.label.starts_with("Merge"))
            })
            .map(|o| o.wall_inclusive_ns)
            .max()
    };
    let subtrees = plan
        .parallel_choices
        .iter()
        .map(|c| SubtreeSpeedup {
            pt_node: c.pt_node,
            label: c.label.clone(),
            workers: c.workers,
            predicted: c.predicted_speedup(),
            observed: match (serial_wall(c.pt_node), parallel_wall(c.pt_node)) {
                (Some(s), Some(p)) if p > 0 => Some(s as f64 / p as f64),
                _ => None,
            },
        })
        .collect();

    Ok(ParallelRun {
        name,
        rows: serial_rows.len(),
        identical: serial_rows == par_rows,
        serial_ms,
        parallel_ms,
        lanes: par_report.workers.len(),
        subtrees,
    })
}

/// The scenario corpus: the recursive music Figure-3 query under both
/// push strategies, the recursive parts bill-of-materials, and a
/// deliberately join-heavy chain scenario (a rescanned nested loop over
/// an unindexed pair — the O(n²) regime where partitioning the outer
/// scan pays most).
pub fn corpus(threads: u32, budget: u64) -> Result<Vec<ParallelRun>, String> {
    let knobs = Knobs { threads, budget };
    let mut runs = Vec::new();

    {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        let methods = MethodRegistry::new();
        let q = setup.fig3();
        for (cname, config) in [
            ("nopush", OptimizerConfig::never_push()),
            ("push", OptimizerConfig::deductive_heuristic()),
        ] {
            runs.push(run_one(
                &mut setup.m.db,
                &setup.idx,
                &methods,
                &q,
                config,
                knobs,
                format!("music/fig3/{cname}"),
            )?);
        }
    }

    {
        let cat = Arc::new(parts_catalog());
        let mut p = PartsDb::generate(
            Arc::clone(&cat),
            PartsConfig {
                roots: 3,
                fanout: 3,
                depth: 4,
                clustered: false,
                buffer_frames: 32,
                seed: 0x0ab5_7a71,
            },
        );
        let q = parts_query(&cat);
        let methods = MethodRegistry::with_parts_methods(&cat);
        let idx = IndexSet::new();
        for (cname, config) in [
            ("nopush", OptimizerConfig::never_push()),
            ("push", OptimizerConfig::deductive_heuristic()),
        ] {
            runs.push(run_one(
                &mut p.db,
                &idx,
                &methods,
                &q,
                config,
                knobs,
                format!("parts/{cname}"),
            )?);
        }
    }

    {
        let mut chain = ChainDb::generate(ChainConfig {
            relations: 2,
            rows: 1400,
            domain: 64,
            seed: 0x5eed,
        });
        let methods = MethodRegistry::new();
        let idx = IndexSet::new();
        let q = chain.chain_query(64);
        runs.push(run_one(
            &mut chain.db,
            &idx,
            &methods,
            &q,
            OptimizerConfig::cost_controlled(),
            knobs,
            "chain/bigjoin".into(),
        )?);
    }

    Ok(runs)
}

/// `reproduce parallel [--threads N]`: the serial-vs-parallel report.
/// Errs (gate failure) when any scenario's parallel answer deviates
/// from its serial one.
pub fn parallel_report(threads: u32, budget: u64) -> Result<String, String> {
    let runs = corpus(threads, budget)?;
    let mut out = format!("=== Parallel execution: serial vs {threads} workers, cold cache ===\n");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(
        out,
        "hardware threads: {hw}{}",
        if hw < threads as usize {
            " — the worker pool exceeds the physical cores, so wall-clock \
             speedup is hardware-bounded (determinism is still checked)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "| scenario | rows | identical | serial ms | parallel ms | speedup | lanes |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    let mut best: Option<(&str, f64)> = None;
    let mut bad = 0usize;
    for r in &runs {
        if !r.identical {
            bad += 1;
        }
        if r.lanes > 0 && best.map(|(_, s)| r.speedup() > s).unwrap_or(true) {
            best = Some((&r.name, r.speedup()));
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {:.2} | {:.2}x | {} |",
            r.name,
            r.rows,
            if r.identical { "✓" } else { "✗" },
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.lanes,
        );
    }
    let _ = writeln!(out, "\nPer-subtree placement (predicted vs observed):");
    for r in &runs {
        if r.subtrees.is_empty() {
            let _ = writeln!(out, "  {}: plan kept fully serial (nothing pays)", r.name);
            continue;
        }
        for s in &r.subtrees {
            let _ = writeln!(
                out,
                "  {}: node {} {} dop {} — predicted {:.2}x, observed {}",
                r.name,
                s.pt_node,
                s.label,
                s.workers,
                s.predicted,
                s.observed
                    .map(|o| format!("{o:.2}x"))
                    .unwrap_or_else(|| "n/a".into()),
            );
        }
    }
    if let Some((name, s)) = best {
        let _ = writeln!(out, "\nbest end-to-end speedup: {s:.2}x on {name}");
    }
    if bad > 0 {
        let _ = writeln!(out, "{bad} scenario(s) deviated from the serial answer");
        return Err(out);
    }
    Ok(out)
}
