//! The fixpoint cardinality-feedback harness: closing the loop from
//! observed semi-naive delta curves back into the cost model.
//!
//! The calibration harness (`crate::calibrate`) fits *unit costs* but
//! has to exclude lines whose row estimates drifted beyond
//! [`crate::calibrate`]'s `CARD_DRIFT` — which, before this loop
//! existed, was most of the fixpoint recursive sides: the default
//! estimator guesses one global iteration count and flat per-iteration
//! deltas, while the paper's §3.2 point (Figure 5:
//! `Fix(T,P) = Σᵢ cost(Exp(Tᵢ))`) is that costs ride on per-iteration
//! volumes. This module replays the same corpus, joins each fixpoint's
//! modeled delta curve to the observed one
//! ([`oorq_exec::FixDeltaCurve`], keyed per fixpoint node), fits one
//! [`FixProfile`] per (scenario, temporary) and persists the set as the
//! checked-in `crates/cost/fix_profiles.toml` snapshot — loaded by
//! [`CostParams::calibrated`], consumed by
//! `CostModel::fix_delta_curve`, and gated by `reproduce
//! feedback-gate` against `crates/bench/feedback_baseline.txt`.

use std::fmt::Write as _;

use oorq_cost::{CostParams, FixProfile, FixProfiles};
use oorq_lint::{lint_fix_drift, DriftTolerance, ObservedFix, Severity};

use crate::calibrate::{card_within, collect_corpus, PlanSample};

/// Fit one [`FixProfile`] per (scenario, temporary) from the corpus's
/// joined modeled-vs-observed fixpoint curves.
///
/// Fitting consumes only the *observed* curve, the default model's
/// base-case row estimate and the chain-depth statistic — never the
/// profiled prediction — so refitting over a corpus sampled under
/// already-fitted profiles reproduces the same profiles (no feedback
/// circularity).
pub fn fit_profiles(samples: &[PlanSample]) -> FixProfiles {
    let mut out = FixProfiles::empty();
    for s in samples {
        for f in &s.fixes {
            let Some(p) = FixProfile::fit(&f.observed, f.pred_default.base_rows, f.depth) else {
                continue;
            };
            out.insert(format!("{}/{}", s.scenario, f.temp), p);
        }
    }
    out
}

/// Summary statistics of one corpus pass, comparing the default (flat
/// delta) estimator against the profile-informed one.
#[derive(Debug, Clone)]
pub struct FeedbackStats {
    /// Fixpoints joined (modeled and observed curves matched per node).
    pub n_fixes: usize,
    /// Fix rec-side matched lines.
    pub n_rec_lines: usize,
    /// Median relative row-estimate error of Fix rec-side lines under
    /// the default estimator.
    pub rec_err_default: f64,
    /// … and under the profile-informed calibrated model.
    pub rec_err_profiled: f64,
    /// Fix rec-side lines the calibration fit would exclude for
    /// cardinality drift when judged on default-estimator rows.
    pub excluded_default: usize,
    /// … and when judged on profile-informed rows (the basis the fit
    /// actually uses).
    pub excluded_profiled: usize,
    /// CX005/CX006 profile-drift warnings under the profiled model.
    pub drift_warns_profiled: usize,
    /// … and under the default flat-delta model.
    pub drift_warns_default: usize,
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

fn rel_err(pred: f64, obs: f64) -> f64 {
    (pred - obs).abs() / obs.max(1.0)
}

/// Compute the feedback summary over a sampled corpus.
pub fn feedback_stats(samples: &[PlanSample]) -> FeedbackStats {
    let mut err_default = Vec::new();
    let mut err_profiled = Vec::new();
    let mut excluded_default = 0usize;
    let mut excluded_profiled = 0usize;
    let mut n_rec_lines = 0usize;
    for l in samples.iter().flat_map(|s| &s.lines) {
        if !l.in_fix_rec {
            continue;
        }
        n_rec_lines += 1;
        err_default.push(rel_err(l.pred_rows, l.obs_rows));
        err_profiled.push(rel_err(l.pred_rows_res, l.obs_rows));
        if !card_within(l.pred_rows, l.obs_rows) {
            excluded_default += 1;
        }
        if !card_within(l.pred_rows_res, l.obs_rows) {
            excluded_profiled += 1;
        }
    }
    let (drift_warns_profiled, drift_warns_default) = drift_warnings(samples);
    FeedbackStats {
        n_fixes: samples.iter().map(|s| s.fixes.len()).sum(),
        n_rec_lines,
        rec_err_default: median(err_default),
        rec_err_profiled: median(err_profiled),
        excluded_default,
        excluded_profiled,
        drift_warns_profiled,
        drift_warns_default,
    }
}

/// CX005/CX006 warning counts over the corpus: (profiled curves,
/// default flat-delta curves).
fn drift_warnings(samples: &[PlanSample]) -> (usize, usize) {
    let tol = DriftTolerance::default();
    let mut profiled = 0usize;
    let mut default = 0usize;
    for s in samples {
        let observed: Vec<ObservedFix> = s
            .fixes
            .iter()
            .map(|f| ObservedFix {
                pt_node: f.pt_node,
                temp: f.temp.clone(),
                iterations: (f.observed.len().saturating_sub(1)).max(1) as f64,
                mass: f.observed.iter().map(|&d| d as f64).sum(),
            })
            .collect();
        let warns = |breakdown: Vec<oorq_cost::NodeCost>| {
            lint_fix_drift(&breakdown, &observed, tol)
                .diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Warn)
                .count()
        };
        profiled += warns(
            s.fixes
                .iter()
                .map(|f| fix_line(f.pt_node, f.pred_res.clone()))
                .collect(),
        );
        default += warns(
            s.fixes
                .iter()
                .map(|f| fix_line(f.pt_node, f.pred_default.clone()))
                .collect(),
        );
    }
    (profiled, default)
}

/// A minimal `Fix` breakdown line carrying a modeled curve, for the
/// drift lint.
fn fix_line(node: usize, curve: oorq_cost::FixCurve) -> oorq_cost::NodeCost {
    oorq_cost::NodeCost {
        label: format!("Fix({})", curve.temp),
        kind: oorq_cost::OpKind::Fix,
        node: Some(node),
        cost: oorq_cost::Cost::zero(),
        feat: oorq_cost::CostFeatures::default(),
        rows: curve.total_rows,
        pages: 0.0,
        fix: Some(curve),
    }
}

fn render_stats(out: &mut String, st: &FeedbackStats) {
    let _ = writeln!(
        out,
        "{} fixpoints joined; {} Fix rec-side matched lines",
        st.n_fixes, st.n_rec_lines
    );
    let _ = writeln!(
        out,
        "Fix rec-side row-estimate median relative error: {:.3} (default) -> {:.3} (profiled) \
         -> {}",
        st.rec_err_default,
        st.rec_err_profiled,
        if st.rec_err_profiled < st.rec_err_default {
            "improved"
        } else {
            "NOT improved"
        }
    );
    let _ = writeln!(
        out,
        "card_ok fit exclusions among Fix rec-side lines: {} (default basis) -> {} \
         (profiled basis) -> {}",
        st.excluded_default,
        st.excluded_profiled,
        if st.excluded_profiled < st.excluded_default {
            "dropped"
        } else {
            "NOT dropped"
        }
    );
    let _ = writeln!(
        out,
        "profile-drift warnings (CX005/CX006): {} under profiled curves, {} under flat-delta \
         default",
        st.drift_warns_profiled, st.drift_warns_default
    );
}

fn render_curve_table(out: &mut String, samples: &[PlanSample]) {
    out.push_str(
        "\n| scenario/temp | observed passes | modeled (default) | modeled (profiled) | \
         observed mass | modeled mass (default) | modeled mass (profiled) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for s in samples {
        for f in &s.fixes {
            let obs_passes = f.observed.len().saturating_sub(1).max(1);
            let obs_mass: u64 = f.observed.iter().sum();
            let _ = writeln!(
                out,
                "| {}/{} | {} | {:.0} | {:.0} | {} | {:.0} | {:.0} |",
                s.scenario,
                f.temp,
                obs_passes,
                f.pred_default.iterations,
                f.pred_res.iterations,
                obs_mass,
                f.pred_default.mass(),
                f.pred_res.mass(),
            );
        }
    }
}

/// The `reproduce feedback` section: replay the corpus under the
/// checked-in profiles and report modeled-vs-observed delta curves,
/// the Fix rec-side row-error improvement, and the fit-exclusion drop.
pub fn feedback_report() -> String {
    let calibrated = CostParams::calibrated();
    let samples = collect_corpus(&calibrated);
    let st = feedback_stats(&samples);
    let mut out = String::from(
        "=== Cardinality feedback: fixpoint delta profiles ===\n\
         (corpus: music/parts/chain scenarios; observed semi-naive delta curves\n\
         joined per fixpoint node against the modeled curves)\n",
    );
    let _ = writeln!(
        out,
        "checked-in profiles: {} (scenario, temp) entries\n",
        calibrated.fix_profiles.len()
    );
    render_stats(&mut out, &st);
    render_curve_table(&mut out, &samples);
    out
}

/// The `reproduce feedback-fit` section: re-fit the profiles on the
/// corpus and print the snapshot to check in as
/// `crates/cost/fix_profiles.toml`.
pub fn feedback_fit_report() -> String {
    // Sample under the *default* feature model: profile fitting only
    // consumes observations and default-model estimates, so the fit
    // must not require an existing snapshot to be loadable.
    let res_params = CostParams {
        residency: true,
        ..CostParams::default()
    };
    let samples = collect_corpus(&res_params);
    let profiles = fit_profiles(&samples);
    let snapshot = profiles.render(
        "Fixpoint cardinality profiles fitted by `reproduce feedback-fit` over\n\
         # the music/parts/chain scenario corpus. Check in as\n\
         # crates/cost/fix_profiles.toml; loaded by CostParams::calibrated().",
    );
    let mut out = String::from("=== Cardinality feedback: profile fit ===\n");
    let _ = writeln!(
        out,
        "fitted {} (scenario, temp) profiles from {} plans\n",
        profiles.len(),
        samples.len()
    );
    let _ = writeln!(out, "--- snapshot (crates/cost/fix_profiles.toml) ---");
    out.push_str(&snapshot);
    out
}

/// The checked-in feedback baseline (regenerate with
/// `reproduce feedback-fit` / update alongside the profile snapshot).
const BASELINE: &str = include_str!("../feedback_baseline.txt");

/// Absolute slack on the baseline error figure (same rationale as the
/// calibrate gate's tolerance: deterministic corpus, float rounding
/// only).
pub const GATE_TOLERANCE: f64 = 0.05;

/// The `reproduce feedback-gate` section: re-run the corpus and fail
/// (`Err`, nonzero exit) when the profile-informed Fix rec-side row
/// error regresses beyond the checked-in baseline, no longer improves
/// on the default estimator, or the fit-exclusion drop is lost.
pub fn feedback_gate() -> Result<String, String> {
    let calibrated = CostParams::calibrated();
    let samples = collect_corpus(&calibrated);
    let st = feedback_stats(&samples);

    let mut baseline: std::collections::BTreeMap<String, f64> = Default::default();
    for line in BASELINE.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, v) = line
            .split_once('=')
            .ok_or_else(|| format!("feedback_baseline.txt: bad line `{line}`"))?;
        baseline.insert(
            key.trim().to_string(),
            v.trim()
                .parse()
                .map_err(|e| format!("feedback_baseline.txt: {e}"))?,
        );
    }

    let mut out = String::from("=== Cardinality-feedback regression gate ===\n");
    render_stats(&mut out, &st);
    let mut failures = Vec::new();
    if let Some(&base) = baseline.get("fix_rec_med_err_profiled") {
        if st.rec_err_profiled > base + GATE_TOLERANCE {
            failures.push(format!(
                "Fix rec-side profiled median row error {:.3} exceeds baseline {:.3} + {:.2}",
                st.rec_err_profiled, base, GATE_TOLERANCE
            ));
        }
    }
    if st.rec_err_profiled >= st.rec_err_default {
        failures.push(format!(
            "profiles no longer improve the Fix rec-side row error \
             ({:.3} profiled vs {:.3} default)",
            st.rec_err_profiled, st.rec_err_default
        ));
    }
    if st.excluded_profiled >= st.excluded_default {
        failures.push(format!(
            "card_ok exclusions among Fix rec-side lines no longer drop \
             ({} profiled vs {} default)",
            st.excluded_profiled, st.excluded_default
        ));
    }
    if let Some(&base) = baseline.get("excluded_fix_profiled") {
        if (st.excluded_profiled as f64) > base {
            failures.push(format!(
                "card_ok exclusions among Fix rec-side lines regressed: {} vs baseline {:.0}",
                st.excluded_profiled, base
            ));
        }
    }
    if failures.is_empty() {
        out.push_str("feedback gate OK\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}\nfeedback gate FAILED:\n{}",
            failures.join("\n")
        ))
    }
}
