//! `reproduce trace <scenario>`: run one scenario end-to-end with the
//! structured-tracing recorder enabled, and render every sink.
//!
//! One recorder is threaded through all four layers — the optimizer
//! (spans per §4 step, `candidate` events), the lint engine (violation
//! events), the executor pipeline (per-operator spans, fixpoint
//! iteration events) and the buffer manager (page hit/miss/eviction
//! events) — so the resulting [`oorq_obs::Trace`] joins optimizer
//! estimates to runtime counters in a single timeline. The binary
//! writes the three exports to disk; this module only builds strings.

use std::fmt::Write;

use oorq_core::OptimizerConfig;
use oorq_obs::Recorder;

use crate::reports::fig7_config;
use crate::scenarios::PaperSetup;

/// Everything one traced scenario run produced.
pub struct TraceArtifacts {
    /// The accumulated trace.
    pub trace: oorq_obs::Trace,
    /// JSONL export (schema-versioned, round-trippable).
    pub jsonl: String,
    /// Chrome trace-event JSON (Perfetto-loadable).
    pub chrome: String,
    /// Folded stacks for flamegraph tooling.
    pub folded: String,
    /// Human-readable summary: search-space table, fixpoint deltas,
    /// counters registry.
    pub summary: String,
}

/// The scenarios `reproduce trace` understands.
pub const TRACE_SCENARIOS: &[&str] = &["music-fig7", "music-paper", "music-pushjoin"];

/// Run a named scenario under an enabled recorder and render all sinks.
pub fn trace_scenario(scenario: &str) -> Result<TraceArtifacts, String> {
    let (cfg, title) = match scenario {
        // The §4.6 regime: the harpsichord filter keeps almost every
        // composer, so pushing it through the recursion loses and the
        // cost-controlled optimizer must *reject* the pushed candidate.
        "music-fig7" => (fig7_config(), "Figure 7 / §4.6 (pushing loses)"),
        "music-paper" => (
            PaperSetup::paper_scale(),
            "paper-scale music database (§4.6 scale, selective filter)",
        ),
        // The §4.5 join query: its `c.name = "Bach"` selection has an
        // applicable selection index, so the randomized walk proposes
        // index↔scan toggles the abstract interpreter can *prove* worse
        // (non-overlapping cost intervals → `pruned-proven`). At 300
        // composers the sequential scan's certain page floor clears the
        // index probe's worst case, so the proof applies.
        "music-pushjoin" => (
            oorq_datagen::MusicConfig {
                chains: 30,
                ..PaperSetup::paper_scale()
            },
            "§4.5 push-join (provable access-method pruning)",
        ),
        other => {
            return Err(format!(
                "unknown trace scenario `{other}` (known: {})",
                TRACE_SCENARIOS.join(", ")
            ))
        }
    };

    let obs = Recorder::new();
    let registry = oorq_obs::MetricsRegistry::new();
    let mut setup = PaperSetup::new(cfg);
    let q = if scenario == "music-pushjoin" {
        setup.pushjoin()
    } else {
        setup.fig3()
    };
    let optimized = setup.optimize_metered(
        &q,
        OptimizerConfig::cost_controlled(),
        obs.clone(),
        &registry,
    );
    let (report, answer) = setup.execute_metered(&optimized.pt, obs.clone(), &registry);
    // Fold the aggregated series into the trace as `metrics.*` counters,
    // so the Chrome export carries them as `C` samples and the JSONL
    // header round-trips them — no schema change, just more counters.
    registry.publish_to_recorder(&obs);
    let trace = obs.finish();

    let mut summary = String::new();
    let _ = writeln!(summary, "=== trace: {scenario} — {title} ===");
    let _ = writeln!(
        summary,
        "optimized cost {:.1}; answer {answer} rows; {} spans, {} events recorded",
        optimized.cost.total(&oorq_cost::CostParams::default()),
        trace.spans.len(),
        trace.events.len(),
    );
    let _ = writeln!(
        summary,
        "fixpoint delta sizes (seed first): [{}]",
        report
            .fix_deltas
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );

    let table = oorq_obs::search_space_table(&trace);
    if !table.is_empty() {
        summary.push('\n');
        summary.push_str(&table);
    }

    if !trace.counters.is_empty() {
        summary.push_str("\n### Counters\n\n| counter | total |\n|---|---|\n");
        for (name, total) in &trace.counters {
            let _ = writeln!(summary, "| {name} | {total:.0} |");
        }
    }

    let jsonl = trace.to_jsonl();
    let chrome = trace.to_chrome();
    let folded = trace.to_folded();
    Ok(TraceArtifacts {
        trace,
        jsonl,
        chrome,
        folded,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oorq_datagen::MusicConfig;

    fn small_cfg() -> MusicConfig {
        MusicConfig {
            chains: 3,
            chain_len: 4,
            ..fig7_config()
        }
    }

    /// Span-aggregated operator counters must equal the `ExecReport`
    /// totals: the synthesized per-operator spans carry exclusive
    /// figures, so summing them reproduces what the executor reported.
    #[test]
    fn differential_span_counters_equal_exec_report() {
        let obs = Recorder::new();
        let mut setup = PaperSetup::new(small_cfg());
        let q = setup.fig3();
        let optimized = setup.optimize_traced(&q, OptimizerConfig::cost_controlled(), obs.clone());
        let (report, _) = setup.execute_traced(&optimized.pt, obs.clone());
        let trace = obs.finish();

        let op_spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.cat == "exec" && s.field("track").is_some())
            .collect();
        assert_eq!(
            op_spans.len(),
            report.ops.len(),
            "one synthesized span per operator"
        );
        let span_sum = |key: &str| -> f64 {
            op_spans
                .iter()
                .map(|s| s.field(key).and_then(|v| v.as_num()).unwrap_or(0.0))
                .sum()
        };
        for (key, total) in [
            (
                "rows_out",
                report.ops.iter().map(|o| o.rows_out).sum::<u64>(),
            ),
            ("page_reads", report.ops.iter().map(|o| o.page_reads).sum()),
            ("page_hits", report.ops.iter().map(|o| o.page_hits).sum()),
            (
                "index_reads",
                report.ops.iter().map(|o| o.index_reads).sum(),
            ),
            (
                "page_writes",
                report.ops.iter().map(|o| o.page_writes).sum(),
            ),
            ("evals", report.ops.iter().map(|o| o.evals).sum()),
            (
                "method_calls",
                report.ops.iter().map(|o| o.method_calls).sum(),
            ),
        ] {
            assert_eq!(span_sum(key) as u64, total, "span-aggregated {key}");
        }
        // And the executor-level totals match the same aggregation (the
        // pipeline charges every page fetch to exactly one operator).
        assert_eq!(span_sum("evals") as u64, report.evals);
        assert_eq!(
            span_sum("page_reads") as u64 + span_sum("page_hits") as u64,
            report.io.fetches()
        );
    }

    /// The fig7 trace scenario must expose the paper's negative result:
    /// at least two rejected candidates with costs and reasons, one of
    /// them the pushed plan.
    #[test]
    fn fig7_search_space_has_rejections() {
        let art = trace_scenario("music-fig7").expect("known scenario");
        let rejects: Vec<_> = art
            .trace
            .events_named("candidate")
            .filter(|e| e.field("outcome").and_then(|v| v.as_str()) == Some("reject"))
            .collect();
        assert!(
            rejects.len() >= 2,
            "expected >= 2 rejected candidates, got {}",
            rejects.len()
        );
        assert!(
            rejects.iter().any(|e| {
                e.field("step").and_then(|v| v.as_str()) == Some("push-decision")
                    && e.field("reason")
                        .and_then(|v| v.as_str())
                        .is_some_and(|r| r.contains("fixpoint"))
            }),
            "the pushed plan must be rejected by the cost comparison"
        );
        for e in &rejects {
            assert!(e.field("cost").is_some(), "rejects carry estimated costs");
            assert!(e.field("reason").is_some(), "rejects carry reasons");
        }
        assert!(art.summary.contains("Rejected candidates"));
        // All three exports are well-formed.
        oorq_obs::Trace::from_jsonl(&art.jsonl).expect("JSONL round-trips");
        oorq_obs::check_chrome_trace(&art.chrome).expect("chrome trace valid");
        assert!(art.folded.lines().count() > 0);
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(trace_scenario("no-such-scenario").is_err());
    }

    /// The push-join trace scenario must demonstrate *provable* pruning:
    /// at least one randomized-walk candidate discarded because its
    /// diverged-subtree cost interval lies strictly above the
    /// incumbent's (non-overlapping intervals), distinct from the
    /// heuristic cost-estimate rejections.
    #[test]
    fn pushjoin_search_space_has_proven_prunes() {
        let art = trace_scenario("music-pushjoin").expect("known scenario");
        let proven: Vec<_> = art
            .trace
            .events_named("candidate")
            .filter(|e| {
                e.field("outcome").and_then(|v| v.as_str()) == Some("prune")
                    && e.field("reason")
                        .and_then(|v| v.as_str())
                        .is_some_and(|r| r.starts_with("pruned-proven"))
            })
            .collect();
        assert!(
            !proven.is_empty(),
            "expected >= 1 pruned-proven candidate:\n{}",
            art.summary
        );
        for e in &proven {
            let reason = e.field("reason").and_then(|v| v.as_str()).unwrap();
            assert!(
                reason.contains("strictly above incumbent"),
                "proof justification missing: {reason}"
            );
        }
        assert!(art.summary.contains("| pruned-proven |"));
        assert!(art.summary.contains("Provably pruned candidates"));
        // Proven prunes are never double-counted as plain rejections.
        let rejected = art
            .trace
            .events_named("candidate")
            .filter(|e| e.field("outcome").and_then(|v| v.as_str()) == Some("reject"))
            .count();
        let accepted = art
            .trace
            .events_named("candidate")
            .filter(|e| e.field("outcome").and_then(|v| v.as_str()) == Some("accept"))
            .count();
        let enumerated = art.trace.events_named("candidate").count();
        assert_eq!(enumerated, proven.len() + rejected + accepted);
    }
}
