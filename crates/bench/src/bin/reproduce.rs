//! Regenerates every figure and worked example of the paper.
//!
//! Usage: `reproduce [section]` where section is one of
//! `fig1 fig2 fig3 fig4 fig5 fig6 fig7 pushjoin crossover strategies
//! ablation lint validate analyze calibrate calibrate-fit
//! calibrate-gate feedback feedback-fit feedback-gate analyze-gate
//! fuzz parallel spill spill-gate metrics metrics-fit metrics-gate
//! all` (default: `all`). An unknown section lists the registry and
//! exits 2.
//!
//! `reproduce metrics <scenario>` replays a scenario (`music`,
//! `pushjoin` or `chain`) five times under the always-on metrics
//! registry and prints the aggregated series with p50/p90/p99, the
//! EXPLAIN ANALYZE tree (predicted vs observed per operator, `!!` on a
//! §11 interval escape), and the Prometheus exposition; it honours
//! `--threads` and `--memory-budget`. `reproduce metrics-gate` checks
//! the stable metric names against `crates/bench/metrics_baseline.txt`
//! and the disabled/enabled recorder overhead caps; `reproduce
//! metrics-fit` prints the baseline to check in after a deliberate
//! rename.
//!
//! `reproduce parallel [--threads N]` compares serial against parallel
//! execution across the scenario corpus (default 4 workers) and fails
//! when any parallel answer deviates from its serial one. A `--threads
//! N` flag (or the `OORQ_THREADS` environment variable) sets the worker
//! pool; `0` — the default everywhere else — keeps execution fully
//! serial, so every other gate measures the serial engine.
//!
//! A `--memory-budget N` flag (or the `OORQ_MEMORY_BUDGET` environment
//! variable) caps resident pipeline-breaker pages
//! ([`oorq_exec::ExecConfig::memory_budget_pages`]); `0` — the default —
//! is unbounded. It applies to the `parallel` differential runs and
//! overrides the `spill` sweep's budget; `spill-gate` always runs at
//! the baseline-pinned budget.
//!
//! `reproduce serve [--queries N] [--sessions N]` replays a mixed
//! music/chain corpus through N concurrent serving sessions sharing one
//! plan cache per scenario family (defaults: 1000 queries, 4 sessions)
//! and fails when any answer deviates from the single-session reference
//! replay; it reports p50/p99 request latency and the
//! `serve.cache.*` hit/miss/evict counters. `reproduce serve-gate` runs
//! the full-size replay and additionally pins the plan-cache hit rate.
//!
//! `reproduce spill [--memory-budget N]` sweeps a transitive-closure
//! workload across the breaker-budget spill cliff and reports predicted
//! versus observed physical page reads on both sides; `reproduce
//! spill-gate` fails when either side's median relative error regresses
//! beyond `crates/bench/spill_baseline.txt` (or the model mis-places
//! the cliff).
//!
//! Gate subcommands (`lint`, `calibrate-gate`, `feedback-gate`,
//! `analyze-gate`, `fuzz`) all follow one convention: they print their
//! report, end with a final `PASS: <name>` or `FAIL: <name>` line, and
//! exit 0 on pass / 1 on fail (2 on usage errors). `calibrate-gate`
//! fails when residuals regress beyond the checked-in baseline;
//! `feedback-gate` does the same for fixpoint cardinality profiles;
//! `analyze-gate` fails when any observed counter escapes its static
//! interval on the full corpus; `lint` fails when a real pass (not the
//! deliberately broken demo plan) reports errors.
//!
//! `reproduce lint --explain <CODE>` prints the registry entry for one
//! stable lint code (e.g. `AB003`).
//!
//! `reproduce analyze [scenario]` prints the static bounds-vs-observed
//! table for `music-fig3`, `music-pushjoin`, `parts`, `chain` or `all`.
//!
//! `reproduce fuzz [iters] [seed]` runs the seeded plan-mutation
//! soundness fuzzer (defaults: the CI smoke parameters).
//!
//! `reproduce trace <scenario> [out-dir]` runs one scenario under the
//! structured-tracing recorder and writes `trace-<scenario>.jsonl`
//! (schema-versioned event stream), `trace-<scenario>.json` (Chrome
//! trace-event JSON, loadable in Perfetto / `chrome://tracing`) and
//! `trace-<scenario>.folded` (flamegraph folded stacks) into `out-dir`
//! (default `.`), then prints the search-space summary.
//! `reproduce trace-check <file>` validates a Chrome trace file with
//! the in-repo checker and exits nonzero on schema drift.

use oorq_bench::reports::*;
use oorq_bench::PaperSetup;

/// Uniform gate epilogue: print the report, end with `PASS`/`FAIL`, and
/// exit nonzero on failure.
fn gate(name: &str, outcome: Result<String, String>) {
    match outcome {
        Ok(report) => {
            println!("{report}");
            println!("PASS: {name}");
        }
        Err(report) => {
            eprintln!("{report}");
            println!("FAIL: {name}");
            std::process::exit(1);
        }
    }
}

/// Read a numeric flag's value from anywhere on the command line; a
/// present flag with a missing or unparseable value is a usage error
/// (exit 2).
fn flag_arg(flag: &str) -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => return Some(v),
                None => {
                    eprintln!("usage: reproduce <section> [{flag} <N>]");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Read a numeric environment variable. A variable that is set but does
/// not parse as an unsigned integer is a hard error (exit 2) — a typo'd
/// `OORQ_THREADS=four` must not silently run the serial default.
fn env_arg(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("reproduce: {name} must be an unsigned integer, got `{v}`");
            std::process::exit(2);
        }
    }
}

/// Resolve the executor worker-pool size: a `--threads N` flag anywhere
/// on the command line beats the `OORQ_THREADS` environment variable;
/// absent both, `0` — the fully serial default every gate runs under.
fn threads_arg() -> u32 {
    flag_arg("--threads")
        .or_else(|| env_arg("OORQ_THREADS"))
        .unwrap_or(0) as u32
}

/// Resolve the breaker memory budget (pages): a `--memory-budget N`
/// flag anywhere on the command line beats the `OORQ_MEMORY_BUDGET`
/// environment variable; absent both, `0` — unbounded, the default
/// every other gate runs under.
fn memory_budget_arg() -> u64 {
    flag_arg("--memory-budget")
        .or_else(|| env_arg("OORQ_MEMORY_BUDGET"))
        .unwrap_or(0)
}

/// Every section `reproduce` understands; an unknown one is a usage
/// error (exit 2) listing the full registry.
const SECTIONS: &[&str] = &[
    "all",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "pushjoin",
    "crossover",
    "strategies",
    "ablation",
    "lint",
    "validate",
    "analyze",
    "analyze-gate",
    "calibrate",
    "calibrate-fit",
    "calibrate-gate",
    "feedback",
    "feedback-fit",
    "feedback-gate",
    "fuzz",
    "parallel",
    "spill",
    "spill-gate",
    "trace",
    "trace-check",
    "metrics",
    "metrics-fit",
    "metrics-gate",
    "serve",
    "serve-gate",
];

fn main() {
    // Validate the numeric environment knobs up front, whatever the
    // section: a typo'd value must fail loudly, not silently fall back
    // to the default.
    env_arg("OORQ_THREADS");
    env_arg("OORQ_MEMORY_BUDGET");
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if !SECTIONS.contains(&section.as_str()) {
        eprintln!("reproduce: unknown section `{section}`");
        eprintln!("known sections:\n  {}", SECTIONS.join(" "));
        std::process::exit(2);
    }
    if section == "trace" {
        return trace_main();
    }
    if section == "metrics" {
        let scenario = std::env::args()
            .nth(2)
            .filter(|a| !a.starts_with("--"))
            .unwrap_or_else(|| "music".to_string());
        match oorq_bench::metrics::metrics_report(&scenario, threads_arg(), memory_budget_arg()) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("reproduce metrics: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if section == "metrics-fit" {
        match oorq_bench::metrics::metrics_fit_report() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("reproduce metrics-fit: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if section == "metrics-gate" {
        return gate("metrics-gate", oorq_bench::metrics::metrics_gate());
    }
    if section == "serve" {
        let queries = flag_arg("--queries").unwrap_or(oorq_bench::serve::GATE_QUERIES as u64);
        let sessions = flag_arg("--sessions").unwrap_or(oorq_bench::serve::GATE_SESSIONS as u64);
        return gate(
            "serve",
            oorq_bench::serve::serve_report(
                queries as usize,
                (sessions as usize).max(1),
                threads_arg(),
                memory_budget_arg(),
            ),
        );
    }
    if section == "serve-gate" {
        return gate("serve-gate", oorq_bench::serve::serve_gate());
    }
    if section == "parallel" {
        // A serial "parallel" comparison is vacuous: without an explicit
        // worker count this section defaults to 4 workers.
        let threads = match threads_arg() {
            0 => 4,
            t => t,
        };
        return gate(
            "parallel",
            oorq_bench::parallel::parallel_report(threads, memory_budget_arg()),
        );
    }
    if section == "spill" {
        let budget = match memory_budget_arg() {
            0 => oorq_bench::spill::SPILL_BUDGET_PAGES,
            b => b,
        };
        println!("{}", oorq_bench::spill::spill_report(budget));
        return;
    }
    if section == "spill-gate" {
        return gate("spill-gate", oorq_bench::spill::spill_gate());
    }
    if section == "trace-check" {
        return trace_check_main();
    }
    if section == "analyze" {
        let scenario = std::env::args().nth(2).unwrap_or_else(|| "all".to_string());
        match oorq_bench::analyze::analyze_report(&scenario) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("reproduce analyze: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if section == "analyze-gate" {
        return gate("analyze-gate", oorq_bench::analyze::analyze_gate());
    }
    if section == "fuzz" {
        let parse = |n: usize, default: u64| -> u64 {
            match std::env::args().nth(n) {
                None => default,
                Some(s) => match s.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("usage: reproduce fuzz [iterations] [seed]");
                        std::process::exit(2);
                    }
                },
            }
        };
        let iters = parse(2, oorq_bench::fuzz::SMOKE_ITERS);
        let seed = parse(3, oorq_bench::fuzz::SMOKE_SEED);
        return gate("fuzz", oorq_bench::fuzz::fuzz_report(iters, seed));
    }
    let all = section == "all";
    let want = |s: &str| all || section == s;
    if want("fig1") {
        println!("{}", fig1_report());
    }
    if want("fig2") {
        println!("{}", fig2_report());
    }
    if want("fig3") {
        println!("{}", fig3_report());
    }
    if want("fig4") || want("fig6") {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        if want("fig4") {
            println!("{}", fig4_report(&setup));
        }
        if want("fig6") {
            println!("{}", fig6_report(&setup));
        }
    }
    if want("fig7") {
        // The §4.6 conclusion ("pushing is not worthwhile here") arises
        // when the pushed filter saves little; see the E9 crossover for
        // the full picture.
        let mut setup = PaperSetup::new(oorq_bench::reports::fig7_config());
        println!("{}", fig7_report(&mut setup));
    }
    if want("fig5") {
        println!("{}", fig5_report());
    }
    if want("pushjoin") {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        println!("{}", pushjoin_report(&mut setup));
    }
    if want("crossover") {
        println!("{}", crossover_report());
    }
    if want("strategies") {
        println!("{}", strategies_report(6));
    }
    if want("ablation") {
        println!("{}", ablation_report());
    }
    if section == "lint" {
        if let Some(flag) = std::env::args().nth(2) {
            if flag != "--explain" {
                eprintln!("usage: reproduce lint [--explain <CODE>]");
                std::process::exit(2);
            }
            let Some(code) = std::env::args().nth(3) else {
                eprintln!("usage: reproduce lint --explain <CODE>");
                std::process::exit(2);
            };
            match explain_lint_code(&code) {
                Some(entry) => println!("{entry}"),
                None => {
                    eprintln!("reproduce lint: unknown lint code `{code}`");
                    std::process::exit(2);
                }
            }
            return;
        }
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        let (report, clean) = lint_report(&setup);
        return gate("lint", if clean { Ok(report) } else { Err(report) });
    }
    if all {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        let (report, clean) = lint_report(&setup);
        println!("{report}");
        println!("{}: lint", if clean { "PASS" } else { "FAIL" });
        // `reproduce analyze <scenario>` (early exit above) selects one
        // scenario; the full run prints the whole-corpus table.
        match oorq_bench::analyze::analyze_report("all") {
            Ok(report) => println!("{report}"),
            Err(e) => eprintln!("reproduce analyze: {e}"),
        }
        // Pin the provable-pruning integration: the checked-in full-run
        // output shows the `pruned-proven` candidates with their
        // non-overlapping cost intervals (no trace files written here;
        // use `reproduce trace music-pushjoin` for the exports).
        match oorq_bench::tracing::trace_scenario("music-pushjoin") {
            Ok(art) => println!("{}", art.summary),
            Err(e) => eprintln!("reproduce trace music-pushjoin: {e}"),
        }
    }
    if want("validate") {
        println!("{}", validation_report());
    }
    if want("calibrate") {
        println!("{}", oorq_bench::calibrate::calibrate_report());
    }
    if want("feedback") {
        println!("{}", oorq_bench::feedback::feedback_report());
    }
    // Not part of `all`: refitting prints a snapshot to check in, and the
    // gates are CI steps with their own exit status.
    if section == "calibrate-fit" {
        println!("{}", oorq_bench::calibrate::calibrate_fit_report());
    }
    if section == "calibrate-gate" {
        gate("calibrate-gate", oorq_bench::calibrate::calibrate_gate());
    }
    if section == "feedback-fit" {
        println!("{}", oorq_bench::feedback::feedback_fit_report());
    }
    if section == "feedback-gate" {
        gate("feedback-gate", oorq_bench::feedback::feedback_gate());
    }
}

/// `reproduce trace <scenario> [out-dir]`: run the scenario under an
/// enabled recorder and write all three exports.
fn trace_main() {
    let scenario = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "music-fig7".to_string());
    let dir = std::env::args().nth(3).unwrap_or_else(|| ".".to_string());
    let art = match oorq_bench::tracing::trace_scenario(&scenario) {
        Ok(art) => art,
        Err(e) => {
            eprintln!("reproduce trace: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("reproduce trace: cannot create `{dir}`: {e}");
        std::process::exit(2);
    }
    let base = format!("{dir}/trace-{scenario}");
    for (path, contents) in [
        (format!("{base}.jsonl"), &art.jsonl),
        (format!("{base}.json"), &art.chrome),
        (format!("{base}.folded"), &art.folded),
    ] {
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("reproduce trace: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
    }
    println!("{}", art.summary);
    println!(
        "wrote {base}.jsonl ({} lines), {base}.json (Perfetto-loadable), {base}.folded ({} frames)",
        art.jsonl.lines().count(),
        art.folded.lines().count(),
    );
}

/// `reproduce trace-check <file>`: validate a Chrome trace file with
/// the in-repo checker; exit nonzero on any violation or schema drift.
fn trace_check_main() {
    let Some(path) = std::env::args().nth(2) else {
        eprintln!("usage: reproduce trace-check <trace.json>");
        std::process::exit(2);
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace-check: cannot read `{path}`: {e}");
            std::process::exit(2);
        }
    };
    match oorq_obs::check_chrome_trace(&contents) {
        Ok(s) => println!(
            "{path}: OK — {} events ({} duration pairs, {} complete, {} counter samples, \
             {} instants)",
            s.total_events,
            s.duration_pairs,
            s.complete_events,
            s.counter_samples,
            s.instant_events
        ),
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
