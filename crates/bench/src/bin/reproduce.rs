//! Regenerates every figure and worked example of the paper.
//!
//! Usage: `reproduce [section]` where section is one of
//! `fig1 fig2 fig3 fig4 fig5 fig6 fig7 pushjoin crossover strategies
//! ablation lint validate calibrate calibrate-fit calibrate-gate all`
//! (default: `all`). `calibrate-gate` exits nonzero when the residuals
//! regress beyond the checked-in baseline.

use oorq_bench::reports::*;
use oorq_bench::PaperSetup;

fn main() {
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = section == "all";
    let want = |s: &str| all || section == s;
    if want("fig1") {
        println!("{}", fig1_report());
    }
    if want("fig2") {
        println!("{}", fig2_report());
    }
    if want("fig3") {
        println!("{}", fig3_report());
    }
    if want("fig4") || want("fig6") {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        if want("fig4") {
            println!("{}", fig4_report(&setup));
        }
        if want("fig6") {
            println!("{}", fig6_report(&setup));
        }
    }
    if want("fig7") {
        // The §4.6 conclusion ("pushing is not worthwhile here") arises
        // when the pushed filter saves little; see the E9 crossover for
        // the full picture.
        let mut setup = PaperSetup::new(oorq_bench::reports::fig7_config());
        println!("{}", fig7_report(&mut setup));
    }
    if want("fig5") {
        println!("{}", fig5_report());
    }
    if want("pushjoin") {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        println!("{}", pushjoin_report(&mut setup));
    }
    if want("crossover") {
        println!("{}", crossover_report());
    }
    if want("strategies") {
        println!("{}", strategies_report(6));
    }
    if want("ablation") {
        println!("{}", ablation_report());
    }
    if want("lint") {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        println!("{}", lint_report(&setup));
    }
    if want("validate") {
        println!("{}", validation_report());
    }
    if want("calibrate") {
        println!("{}", oorq_bench::calibrate::calibrate_report());
    }
    // Not part of `all`: refitting prints a snapshot to check in, and the
    // gate is a CI step with its own exit status.
    if section == "calibrate-fit" {
        println!("{}", oorq_bench::calibrate::calibrate_fit_report());
    }
    if section == "calibrate-gate" {
        match oorq_bench::calibrate::calibrate_gate() {
            Ok(report) => println!("{report}"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
}
