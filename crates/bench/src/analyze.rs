//! The static-analysis reproduction section: per-node interval bounds
//! versus observed counters, and the `analyze-gate` soundness check.
//!
//! For every scenario in the corpus (music Figure-3 and §4.5 push-join,
//! the recursive parts bill-of-materials, and the non-recursive chain
//! joins — recursive queries under both the never-push and always-push
//! strategies) the harness optimizes, statically analyzes the chosen
//! plan with [`oorq_analysis::Analyzer`], executes it cold-cache, and
//! checks every observed per-operator counter against its static
//! interval ([`oorq_analysis::check_observed`]). The gate fails when
//! any counter escapes its bound — the analyzer's soundness contract,
//! enforced in CI on top of the executor's per-run debug assertion.

use std::fmt::Write as _;
use std::sync::Arc;

use oorq_analysis::{check_observed, Analyzer, AnalyzerConfig, ObservedFix, ObservedOp};
use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{parts_catalog, ChainConfig, ChainDb, PartsConfig, PartsDb};
use oorq_exec::{Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_prng::Prng;
use oorq_query::QueryGraph;
use oorq_storage::{Database, DbStats};

use crate::calibrate::parts_query;
use crate::scenarios::PaperSetup;

/// One analyzed-and-executed run.
pub struct RunCheck {
    /// Scenario/strategy label.
    pub name: String,
    /// Rendered per-node bounds-vs-observed table.
    pub table: String,
    /// Bound violations (`AB001`–`AB003`/`AB007` errors).
    pub errors: usize,
    /// Operators checked.
    pub checked: usize,
}

/// Optimize, statically analyze, execute, and check one query.
fn analyze_one(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    config: OptimizerConfig,
    name: String,
) -> Result<RunCheck, String> {
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let mut opt = Optimizer::new(model, config);
    let plan = opt
        .optimize(q)
        .map_err(|e| format!("{name}: optimization failed: {e}"))?;
    let temp_fields = opt.model.temp_fields.clone();

    let analyzer = Analyzer {
        catalog: db.catalog(),
        physical: db.physical(),
        stats: &stats,
        params: CostParams::default(),
        config: AnalyzerConfig::default(),
    };
    let analysis = analyzer
        .analyze_with_temps(&plan.pt, temp_fields)
        .map_err(|e| format!("{name}: analysis failed: {e:?}"))?;

    db.cold_cache();
    let mut ex = Executor::new(db, idx, methods);
    ex.run(&plan.pt)
        .map_err(|e| format!("{name}: execution failed: {e}"))?;
    let report = ex.report();

    let ops: Vec<ObservedOp> = report
        .ops
        .iter()
        .map(|o| ObservedOp {
            pt_node: o.pt_node,
            label: o.label.clone(),
            rows_out: o.rows_out,
            page_reads: o.page_reads,
            page_hits: o.page_hits,
            index_reads: o.index_reads,
            page_writes: o.page_writes,
        })
        .collect();
    let fixes: Vec<ObservedFix> = report
        .fix_deltas
        .iter()
        .map(|c| ObservedFix {
            pt_node: c.pt_node,
            iterations: (c.deltas.len() as u64).saturating_sub(1),
        })
        .collect();
    let check = check_observed(&analysis, &ops, &fixes);

    let mut table = String::new();
    let _ = writeln!(table, "-- {name} --");
    let _ = writeln!(
        table,
        "| node | op | rows obs ∈ bound | pages obs ∈ bound | index obs ∈ bound | writes obs ∈ bound |"
    );
    let _ = writeln!(table, "|---|---|---|---|---|---|");
    for o in &ops {
        let Some(n) = analysis.node(o.pt_node) else {
            continue;
        };
        let cell = |v: u64, b: oorq_analysis::Interval| {
            format!(
                "{} ∈ {} {}",
                v,
                b,
                if b.contains_count(v) { "✓" } else { "✗" }
            )
        };
        let _ = writeln!(
            table,
            "| {} | {} | {} | {} | {} | {} |",
            o.pt_node,
            o.label,
            cell(o.rows_out, n.rows_total),
            cell(o.page_reads + o.page_hits, n.data()),
            cell(o.index_reads, n.index()),
            cell(o.page_writes, n.writes()),
        );
    }
    for f in &fixes {
        if let Some(p) = analysis.node(f.pt_node).and_then(|n| n.passes) {
            let ok = f.iterations as f64 <= p.hi;
            let _ = writeln!(
                table,
                "fixpoint at node {}: {} semi-naive passes ≤ bound {} {}",
                f.pt_node,
                f.iterations,
                p,
                if ok { "✓" } else { "✗" }
            );
        }
    }
    for d in analysis
        .report
        .render()
        .lines()
        .chain(check.render().lines())
    {
        let _ = writeln!(table, "{d}");
    }
    let errors = check.errors().count();
    let _ = writeln!(
        table,
        "{} operators, {} fixpoint openings checked; {} violations",
        ops.len(),
        fixes.len(),
        errors
    );
    Ok(RunCheck {
        name,
        table,
        errors,
        checked: ops.len(),
    })
}

/// Run one scenario family (or everything) through the analyzer.
/// Accepted names: `music-fig3`, `music-pushjoin`, `parts`, `chain`,
/// `all`.
pub fn corpus_runs(which: &str) -> Result<Vec<RunCheck>, String> {
    let mut runs = Vec::new();
    let all = which == "all";
    let mut rng = Prng::new(0x0ab5_7a71_c000_0006);

    if all || which == "music-fig3" || which == "music-pushjoin" {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        let methods = MethodRegistry::new();
        let music = |setup: &mut PaperSetup,
                     q: &QueryGraph,
                     qname: &str,
                     runs: &mut Vec<RunCheck>|
         -> Result<(), String> {
            for (cname, config) in [
                ("nopush", OptimizerConfig::never_push()),
                ("push", OptimizerConfig::deductive_heuristic()),
            ] {
                runs.push(analyze_one(
                    &mut setup.m.db,
                    &setup.idx,
                    &methods,
                    q,
                    config,
                    format!("music/{qname}/{cname}"),
                )?);
            }
            Ok(())
        };
        if all || which == "music-fig3" {
            let q = setup.fig3();
            music(&mut setup, &q, "fig3", &mut runs)?;
        }
        if all || which == "music-pushjoin" {
            let q = setup.pushjoin();
            music(&mut setup, &q, "pushjoin", &mut runs)?;
        }
    }

    if all || which == "parts" {
        for (i, (roots, fanout, depth)) in [(2u32, 2u32, 3u32), (3, 3, 3)].into_iter().enumerate() {
            let cat = Arc::new(parts_catalog());
            let mut p = PartsDb::generate(
                Arc::clone(&cat),
                PartsConfig {
                    roots,
                    fanout,
                    depth,
                    clustered: i % 2 == 1,
                    buffer_frames: 32,
                    seed: rng.range_u32(1, 1 << 20) as u64,
                },
            );
            let q = parts_query(&cat);
            let methods = MethodRegistry::with_parts_methods(&cat);
            let idx = IndexSet::new();
            for (cname, config) in [
                ("nopush", OptimizerConfig::never_push()),
                ("push", OptimizerConfig::deductive_heuristic()),
            ] {
                runs.push(analyze_one(
                    &mut p.db,
                    &idx,
                    &methods,
                    &q,
                    config,
                    format!("parts{i}/{cname}"),
                )?);
            }
        }
    }

    if all || which == "chain" {
        for (i, (relations, rows, domain)) in [(3usize, 80u32, 16i64), (4, 50, 12)]
            .into_iter()
            .enumerate()
        {
            let mut chain = ChainDb::generate(ChainConfig {
                relations,
                rows,
                domain,
                seed: rng.range_u32(1, 1 << 20) as u64,
            });
            let methods = MethodRegistry::new();
            let idx = IndexSet::new();
            for (qname, q) in [
                ("chain", chain.chain_query(8)),
                ("tail", chain.selective_tail_query(3)),
            ] {
                runs.push(analyze_one(
                    &mut chain.db,
                    &idx,
                    &methods,
                    &q,
                    OptimizerConfig::cost_controlled(),
                    format!("chain{i}/{qname}"),
                )?);
            }
        }
    }

    if runs.is_empty() {
        return Err(format!(
            "unknown analyze scenario `{which}` (expected music-fig3, music-pushjoin, parts, \
             chain, or all)"
        ));
    }
    Ok(runs)
}

/// `reproduce analyze <scenario>`: the per-node bounds-vs-observed
/// report.
pub fn analyze_report(scenario: &str) -> Result<String, String> {
    let runs = corpus_runs(scenario)?;
    let mut out =
        String::from("=== Static bounds vs observed counters (abstract interpretation) ===\n");
    for r in &runs {
        let _ = writeln!(out, "\n{}", r.table.trim_end());
    }
    Ok(out)
}

/// `reproduce analyze-gate`: the full corpus under both strategies;
/// fails when any observed counter escapes its static interval.
pub fn analyze_gate() -> Result<String, String> {
    let runs = corpus_runs("all")?;
    let mut out = String::from("=== Soundness gate: observed counters vs static bounds ===\n");
    let mut bad = 0usize;
    let mut checked = 0usize;
    for r in &runs {
        checked += r.checked;
        if r.errors > 0 {
            bad += r.errors;
            let _ = writeln!(out, "\n{}", r.table.trim_end());
        } else {
            let _ = writeln!(out, "{}: {} operators within bounds", r.name, r.checked);
        }
    }
    let _ = writeln!(
        out,
        "{} runs, {} operators checked, {} violations",
        runs.len(),
        checked,
        bad
    );
    if bad > 0 {
        Err(out)
    } else {
        Ok(out)
    }
}
