//! A minimal wall-clock benchmark harness for the `[[bench]]` targets
//! (`harness = false`), with no dependency outside the standard library.
//!
//! The surface intentionally mirrors the subset of Criterion the benches
//! use: a named group, a configurable sample size, and one timed closure
//! per case. Each case is warmed up once, then sampled `sample_size`
//! times; min / median / max wall-clock times are printed per case.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of benchmark cases.
pub struct Group {
    name: String,
    sample_size: usize,
    printed_header: bool,
}

impl Group {
    /// New group with the default sample size (10).
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            sample_size: 10,
            printed_header: false,
        }
    }

    /// Override the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one case: warm up once, then run `sample_size` samples.
    pub fn bench_function<T>(&mut self, case: &str, mut f: impl FnMut() -> T) {
        if !self.printed_header {
            println!(
                "{:<40} {:>12} {:>12} {:>12}",
                self.name, "min", "median", "max"
            );
            self.printed_header = true;
        }
        black_box(f());
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{:<40} {:>12} {:>12} {:>12}",
            format!("{}/{}", self.name, case),
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
        );
    }

    /// End the group (parity with the Criterion API; prints a blank
    /// separator line).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}
