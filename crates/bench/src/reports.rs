//! Report generators: one section per paper figure / worked example.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use oorq_core::{OptimizerConfig, SpjStrategy};
use oorq_cost::paper_mode::{CostRow, Sym};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{ChainConfig, ChainDb, MusicConfig};
use oorq_exec::{eval_query_graph, MethodRegistry};
use oorq_query::paper::{fig2_query, fig3_query, influencer_view, music_catalog};
use oorq_storage::DbStats;

use crate::scenarios::PaperSetup;

/// Render per-fixpoint delta curves as `temp@nodeN: [..]` joined by `; `.
fn render_fix_curves(curves: &[oorq_exec::FixDeltaCurve]) -> String {
    curves
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Figure 1: the conceptual schema, validated and printed.
pub fn fig1_report() -> String {
    let cat = music_catalog();
    let mut out = String::from("=== Figure 1: the sample conceptual schema ===\n");
    for c in cat.classes() {
        let isa = c
            .isa
            .map(|p| format!(" isa {}", cat.class(p).name))
            .unwrap_or_default();
        let _ = writeln!(out, "class {}{}:", c.name, isa);
        for a in &c.attrs {
            let kind = match a.kind {
                oorq_schema::AttributeKind::Stored => "",
                oorq_schema::AttributeKind::Computed { .. } => " (computed)",
            };
            let inv = a
                .inverse
                .map(|(ic, ia)| {
                    format!(
                        " inverse of {}.{}",
                        cat.class(ic).name,
                        cat.attribute(ic, ia).name
                    )
                })
                .unwrap_or_default();
            let _ = writeln!(out, "  {}: {:?}{}{}", a.name, a.ty, kind, inv);
        }
    }
    for r in cat.relations() {
        let kind = match r.kind {
            oorq_schema::ViewKind::Stored => "relation",
            oorq_schema::ViewKind::View => "view",
        };
        let fields: Vec<String> = r
            .fields
            .iter()
            .map(|(n, t)| format!("{n}: {t:?}"))
            .collect();
        let _ = writeln!(out, "{kind} {}: [{}]", r.name, fields.join(", "));
    }
    out
}

/// Figure 2: the query graph for "the title of the works of Bach
/// including a harpsichord and a flute", in the paper's denotation.
pub fn fig2_report() -> String {
    let cat = music_catalog();
    let q = fig2_query(&cat);
    q.validate(&cat).expect("figure 2 must validate");
    format!("=== Figure 2: a query graph ===\n{}\n", q.display(&cat))
}

/// Figure 3: the recursive query over the `Influencer` view.
pub fn fig3_report() -> String {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.validate(&cat).expect("figure 3 must validate");
    format!(
        "=== Figure 3: a recursive query (P3 + Influencer view P1, P2) ===\n{}\n",
        q.display(&cat)
    )
}

/// Figure 4: the two processing trees for the Figure 3 query, produced
/// by the actual optimizer — (i) selection after the fixpoint,
/// (ii) selection pushed through recursion.
pub fn fig4_report(setup: &PaperSetup) -> String {
    let q = setup.fig3();
    let unpushed = setup.optimize(&q, OptimizerConfig::never_push());
    let pushed = setup.optimize(&q, OptimizerConfig::deductive_heuristic());
    let env = setup.env();
    let mut out = String::from("=== Figure 4: processing trees for the Figure 3 query ===\n");
    let _ = writeln!(
        out,
        "(i)  selection after the fixpoint:\n     {}",
        unpushed.pt.display(&env)
    );
    let _ = writeln!(
        out,
        "(ii) selection pushed through recursion:\n     {}",
        pushed.pt.display(&env)
    );
    out
}

/// Figure 5: the generic cost-formula table.
pub fn fig5_report() -> String {
    let mut out = String::from(
        "=== Figure 5: cost formulas (under the §4.6 simplified assumptions) ===\n\
         | PT node | cost formula |\n|---|---|\n",
    );
    for CostRow { node, formula } in oorq_cost::paper_mode::fig5_formulas() {
        let _ = writeln!(out, "| {node} | {formula} |");
    }
    out
}

/// Figure 6: the optimization-step summary, traced from a real run.
pub fn fig6_report(setup: &PaperSetup) -> String {
    let q = setup.fig3();
    let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
    // Deduplicate repeated step rows (one per arc/predicate node) into
    // the paper's four-row summary.
    let mut seen = Vec::new();
    let mut out = String::from("=== Figure 6: summary of optimization steps (traced) ===\n");
    out.push_str(
        "| Procedure | Granularity | Strategy | PT nodes generated |\n|---|---|---|---|\n",
    );
    // `summary()` renders the step table followed by per-step notes;
    // only the table rows belong in the four-row figure.
    for line in plan
        .trace
        .summary()
        .lines()
        .skip(2)
        .filter(|l| l.starts_with('|'))
    {
        let key: String = line.split('|').take(4).collect::<Vec<_>>().join("|");
        if !seen.contains(&key) {
            seen.push(key);
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// The paper's Figure 7 symbolic rows (T1..T15).
pub fn fig7_symbolic() -> Vec<CostRow> {
    let pe = Sym::pr_plus_ev;
    vec![
        CostRow::new(
            "T1",
            Sym::add([
                Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
                Sym::mul([Sym::card("Cpr"), Sym::pages("Cpr"), pe()]),
                Sym::mul([
                    Sym::add([Sym::par("n1"), Sym::Num(-1.0)]),
                    Sym::add([
                        Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
                        Sym::mul([Sym::card("Cpr"), Sym::pages("Inf_i"), pe()]),
                    ]),
                ]),
            ]),
        ),
        CostRow::new("T2", Sym::mul([Sym::pages("T1"), pe()])),
        CostRow::new(
            "T3",
            Sym::add([
                Sym::mul([Sym::pages("T2"), Sym::par("pr")]),
                Sym::mul([Sym::card("T2"), Sym::par("pr")]),
            ]),
        ),
        CostRow::new(
            "T4",
            Sym::mul([
                Sym::card("T3"),
                Sym::add([
                    Sym::par("lev"),
                    Sym::mul([Sym::par("lea"), Sym::par("inv_Cpr")]),
                ]),
            ]),
        ),
        CostRow::new("T5", Sym::mul([Sym::pages("T4"), pe()])),
        CostRow::new(
            "T6",
            Sym::add([
                Sym::mul([Sym::pages("T5"), Sym::par("pr")]),
                Sym::mul([Sym::card("T5"), Sym::par("pr")]),
            ]),
        ),
        CostRow::new(
            "T7",
            Sym::add([
                Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
                Sym::mul([Sym::card("Cpr"), Sym::par("pr")]),
            ]),
        ),
        CostRow::new(
            "T8",
            Sym::mul([
                Sym::card("T7"),
                Sym::add([
                    Sym::par("lev"),
                    Sym::mul([Sym::par("lea"), Sym::par("inv_Cpr")]),
                ]),
            ]),
        ),
        CostRow::new("T9", Sym::mul([Sym::pages("T8"), pe()])),
        CostRow::new(
            "T10",
            Sym::add([
                Sym::mul([Sym::pages("Inf'"), Sym::par("pr")]),
                Sym::mul([Sym::card("Inf'"), Sym::par("pr")]),
            ]),
        ),
        CostRow::new(
            "T11",
            Sym::mul([
                Sym::card("T10"),
                Sym::add([
                    Sym::par("lev"),
                    Sym::mul([Sym::par("lea"), Sym::par("inv_Cpr")]),
                ]),
            ]),
        ),
        CostRow::new("T12", Sym::mul([Sym::pages("T11"), pe()])),
        CostRow::new(
            "T13",
            Sym::add([
                Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
                Sym::mul([Sym::card("Cpr"), Sym::pages("T11"), pe()]),
            ]),
        ),
        CostRow::new(
            "T14",
            Sym::add([
                Sym::par("cost_Exp_T3"),
                Sym::mul([
                    Sym::add([Sym::par("n2"), Sym::Num(-1.0)]),
                    Sym::par("cost_Exp_Inf_i"),
                ]),
            ]),
        ),
        CostRow::new("T15", Sym::mul([Sym::card("T14"), pe()])),
    ]
}

/// The configuration of the Figure 7 regime: an unselective filter over
/// an expensive path expression.
pub fn fig7_config() -> MusicConfig {
    MusicConfig {
        harpsichord_fraction: 0.95,
        works_per_composer: 5,
        instruments_per_work: 4,
        instrument_pool: 16,
        ..PaperSetup::paper_scale()
    }
}

/// Figure 7 / §4.6: the comprehensive example. Prints the paper's
/// symbolic per-node table, our estimator's per-node breakdown for both
/// plans under the §4.6 simplified parameters, the estimated totals, the
/// measured execution costs, and the decision.
pub fn fig7_report(setup: &mut PaperSetup) -> String {
    let mut out = String::from(
        "=== Figure 7 / §4.6: the comprehensive example ===\n\
         (regime of the paper's conclusion: the harpsichord filter keeps most\n\
         composers, so pushing it through the recursion re-evaluates the path\n\
         expression every iteration for little benefit)\n",
    );

    // The paper's symbolic table.
    out.push_str("\nPaper's symbolic per-node costs (Cpr=Composer, Inf=Influencer):\n");
    out.push_str("| PT node | cost |\n|---|---|\n");
    for CostRow { node, formula } in fig7_symbolic() {
        let _ = writeln!(out, "| {node} | {formula} |");
    }

    // Our plans under the simplified model.
    let q = setup.fig3();
    let unpushed = setup.optimize(&q, OptimizerConfig::never_push());
    let pushed = setup.optimize(&q, OptimizerConfig::deductive_heuristic());
    let params = CostParams::paper_mode();
    let model = CostModel::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        params,
    )
    .with_temp("Influencer", setup.m.influencer_fields());
    for (label, plan) in [
        ("PT (i) — unpushed", &unpushed),
        ("PT (ii) — pushed", &pushed),
    ] {
        let pc = model.cost(&plan.pt).expect("cost");
        let _ = writeln!(
            out,
            "\n{label}: estimated per-node costs (paper-mode pr=ev=1):"
        );
        out.push_str("| node | io | cpu | est. rows |\n|---|---|---|---|\n");
        for n in &pc.breakdown {
            let _ = writeln!(
                out,
                "| {} | {:.0} | {:.0} | {:.0} |",
                n.label, n.cost.io, n.cost.cpu, n.rows
            );
        }
        let _ = writeln!(
            out,
            "| **total** | **{:.0}** | **{:.0}** | answer {:.0} |",
            pc.cost.io, pc.cost.cpu, pc.rows
        );
    }

    // The optimizer's decision (under the production cost parameters,
    // where page I/O dominates as in the paper's disk-resident setting).
    let dparams = CostParams::default();
    let cu = unpushed.cost.total(&dparams);
    let cp = pushed.cost.total(&dparams);
    let _ = writeln!(
        out,
        "\nEstimated totals (production weights): PT(i) = {cu:.0}, PT(ii) = {cp:.0} \
         -> pushing selection is {}",
        if cp > cu {
            "NOT worthwhile (the paper's conclusion)"
        } else {
            "worthwhile"
        }
    );

    // Measured execution.
    let (ri, ni) = setup.execute(&unpushed.pt);
    let (rii, nii) = setup.execute(&pushed.pt);
    let _ = writeln!(
        out,
        "\nMeasured execution (cold cache): PT(i): {} page reads + {} index reads + {} evals \
         ({} rows); PT(ii): {} + {} + {} ({} rows)",
        ri.io.page_reads,
        ri.io.index_reads,
        ri.evals,
        ni,
        rii.io.page_reads,
        rii.io.index_reads,
        rii.evals,
        nii,
    );
    let _ = writeln!(
        out,
        "Breaker traffic: PT(i): {} spill evictions, {} temp-page reads; \
         PT(ii): {}, {} (nonzero only under a breaker memory budget)",
        ri.io.spill_evictions, ri.io.temp_reads, rii.io.spill_evictions, rii.io.temp_reads,
    );
    let _ = writeln!(
        out,
        "Fixpoint delta sizes (semi-naive, seed first): PT(i): [{}]; PT(ii): [{}]",
        render_fix_curves(&ri.fix_deltas),
        render_fix_curves(&rii.fix_deltas),
    );
    let ti = ri.total(dparams.pr, dparams.ev);
    let tii = rii.total(dparams.pr, dparams.ev);
    let _ = writeln!(
        out,
        "Measured totals (same weights): PT(i) = {ti:.0}, PT(ii) = {tii:.0} -> \
         measured: pushing is {}",
        if tii > ti {
            "NOT worthwhile"
        } else {
            "worthwhile"
        }
    );

    // Per-operator accounting: the optimizer's recorded prediction for
    // the final plan against the pipeline's observed counters.
    for (label, plan, rep) in [
        ("PT (i) — unpushed", &unpushed, &ri),
        ("PT (ii) — pushed", &pushed, &rii),
    ] {
        let _ = writeln!(
            out,
            "\n{label}: per-operator predicted vs observed (cold cache):"
        );
        out.push_str(&predicted_vs_observed(
            &plan.trace.final_breakdown,
            &rep.ops,
        ));
    }
    out
}

/// Render the per-operator predicted-vs-observed table: the cost
/// model's per-node breakdown joined against the streaming executor's
/// observed counters on the shared pre-order PT node numbering
/// (`NodeCost::node` ↔ `OpReport::pt_node`). Both sides are exclusive
/// (each line excludes its children).
pub fn predicted_vs_observed(
    breakdown: &[oorq_cost::NodeCost],
    ops: &[oorq_exec::OpReport],
) -> String {
    let mut out = String::from(
        "| op | operator | est. io | obs. pages | est. cpu | obs. evals | \
         est. rows | obs. rows | writes | temp rd | spills | wall µs |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for op in ops {
        let est = breakdown.iter().find(|n| n.node == Some(op.pt_node));
        let (eio, ecpu, erows) = match est {
            Some(n) => (
                format!("{:.0}", n.cost.io),
                format!("{:.0}", n.cost.cpu),
                format!("{:.0}", n.rows),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let obs_pages = op.page_reads + op.index_reads + op.page_writes;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.0} |",
            op.id,
            op.label,
            eio,
            obs_pages,
            ecpu,
            op.evals + op.method_calls,
            erows,
            op.rows_out,
            op.page_writes,
            op.temp_reads,
            op.spill_evictions,
            op.wall_ns as f64 / 1000.0,
        );
    }
    out
}

/// §4.5: the push-join example, estimated and executed.
pub fn pushjoin_report(setup: &mut PaperSetup) -> String {
    let q = setup.pushjoin();
    let unpushed = setup.optimize(&q, OptimizerConfig::never_push());
    let chosen = setup.optimize(&q, OptimizerConfig::cost_controlled());
    let params = CostParams::default();
    let mut out = String::from("=== §4.5: pushing a selective join through recursion ===\n");
    let env = setup.env();
    let _ = writeln!(out, "unpushed: {}", unpushed.pt.display(&env));
    let _ = writeln!(out, "chosen:   {}", chosen.pt.display(&env));
    let _ = writeln!(
        out,
        "estimated totals: unpushed = {:.0}, cost-controlled choice = {:.0} (x{:.1} better)",
        unpushed.cost.total(&params),
        chosen.cost.total(&params),
        unpushed.cost.total(&params) / chosen.cost.total(&params).max(1e-9),
    );
    let (ru, nu) = setup.execute(&unpushed.pt);
    let (rc, nc) = setup.execute(&chosen.pt);
    assert_eq!(nu, nc, "both plans must return the same answer");
    let _ = writeln!(
        out,
        "measured (pr=1, ev=0.05): unpushed = {:.0}, chosen = {:.0} (x{:.1} better), {} rows",
        ru.total(1.0, 0.05),
        rc.total(1.0, 0.05),
        ru.total(1.0, 0.05) / rc.total(1.0, 0.05).max(1e-9),
        nu,
    );
    out
}

/// E9: the crossover sweep. Varies the filter selectivity (harpsichord
/// fraction) and the path-expression cost (works fan-out); reports the
/// *measured* execution cost of the pushed and unpushed plans, the
/// estimated winner, and whether the cost-controlled optimizer tracked
/// the estimated minimum. This is the experiment behind the paper's
/// thesis: neither "always push" nor "never push" is right — the
/// decision needs a cost model.
pub fn crossover_report() -> String {
    let mut out = String::from(
        "=== E9: push/no-push crossover ===\n\
         | harpsichord fraction | works/composer | est. unpushed | est. pushed | \
         meas. unpushed | meas. pushed | meas. winner | chosen = est. min |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for &fraction in &[0.05, 0.2, 0.5, 0.9] {
        for &works in &[1u32, 4u32] {
            let mut setup = PaperSetup::new(MusicConfig {
                chains: 10,
                chain_len: 10,
                works_per_composer: works,
                instruments_per_work: 2,
                harpsichord_fraction: fraction,
                ..PaperSetup::paper_scale()
            });
            let q = setup.fig3_gen(3);
            let params = CostParams::default();
            let unpushed = setup.optimize(&q, OptimizerConfig::never_push());
            let pushed = setup.optimize(&q, OptimizerConfig::deductive_heuristic());
            let chosen = setup.optimize(&q, OptimizerConfig::cost_controlled());
            let (u, p, c) = (
                unpushed.cost.total(&params),
                pushed.cost.total(&params),
                chosen.cost.total(&params),
            );
            let (mu_rep, nu) = setup.execute(&unpushed.pt);
            let (mp_rep, np) = setup.execute(&pushed.pt);
            assert_eq!(nu, np, "push must preserve the answer");
            let mu = mu_rep.total(params.pr, params.ev);
            let mp = mp_rep.total(params.pr, params.ev);
            let meas_winner = if mp < mu { "push" } else { "no-push" };
            let tracked = if (c - u.min(p)).abs() < 1e-6 {
                "yes"
            } else {
                "NO"
            };
            let _ = writeln!(
                out,
                "| {fraction} | {works} | {u:.0} | {p:.0} | {mu:.0} | {mp:.0} | \
                 {meas_winner} | {tracked} |"
            );
        }
    }
    out
}

/// E10: strategy comparison — optimization time and plan cost for
/// exhaustive \[KZ88\] vs Selinger DP vs greedy, on chain joins (time
/// scaling) and on skewed star joins (plan quality; greedy can misorder
/// the satellites).
pub fn strategies_report(max_relations: usize) -> String {
    let mut out = String::from(
        "=== E10a: strategy *time* scaling (k-way chain joins) ===\n\
         | k | exhaustive (µs / cost) | DP (µs / cost) | greedy (µs / cost) |\n|---|---|---|---|\n",
    );
    let run = |q: &oorq_query::QueryGraph,
               db: &oorq_storage::Database,
               stats: &DbStats,
               strategy: SpjStrategy| {
        let model = CostModel::new(db.catalog(), db.physical(), stats, CostParams::default());
        let mut opt = oorq_core::Optimizer::new(
            model,
            OptimizerConfig {
                spj_strategy: strategy,
                rand: None,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let plan = opt.optimize(q).expect("plans");
        (
            t0.elapsed().as_micros(),
            plan.cost.total(&CostParams::default()),
        )
    };
    for k in 2..=max_relations {
        let chain = ChainDb::generate(ChainConfig {
            relations: k,
            rows: 200,
            ..Default::default()
        });
        let stats = DbStats::collect(&chain.db);
        let q = chain.chain_query(25);
        let mut cells = Vec::new();
        for strategy in [
            SpjStrategy::Exhaustive,
            SpjStrategy::Dp,
            SpjStrategy::Greedy,
        ] {
            let (us, cost) = run(&q, &chain.db, &stats, strategy);
            cells.push(format!("{us} / {cost:.0}"));
        }
        let _ = writeln!(out, "| {k} | {} | {} | {} |", cells[0], cells[1], cells[2]);
    }

    out.push_str(
        "\n=== E10b: strategy *quality* (chain joins, selective bound on the tail) ===\n\
         | k | exhaustive | DP | greedy | syntactic (query order) | syntactic/best |\n\
         |---|---|---|---|---|---|\n",
    );
    for k in 3..=max_relations.min(6) {
        let star = ChainDb::generate(ChainConfig {
            relations: k,
            rows: 150,
            domain: 60,
            seed: 5,
        });
        let stats = DbStats::collect(&star.db);
        let q = star.selective_tail_query(2);
        let mut costs = Vec::new();
        for strategy in [
            SpjStrategy::Exhaustive,
            SpjStrategy::Dp,
            SpjStrategy::Greedy,
            SpjStrategy::Syntactic,
        ] {
            let (_, cost) = run(&q, &star.db, &stats, strategy);
            costs.push(cost);
        }
        let _ = writeln!(
            out,
            "| {k} | {:.0} | {:.0} | {:.0} | {:.0} | {:.1} |",
            costs[0],
            costs[1],
            costs[2],
            costs[3],
            costs[3] / costs[0].max(1e-9)
        );
    }
    out
}

/// E11: cost-model validation — estimated vs measured resources across
/// plan shapes.
pub fn validation_report() -> String {
    let mut out = String::from(
        "=== E11: cost model vs measured execution ===\n\
         | query | plan | est. total | measured total | ratio |\n|---|---|---|---|---|\n",
    );
    let params = CostParams::default();
    let mut row =
        |query: &str, plan_name: &str, setup: &mut PaperSetup, plan: &oorq_core::Optimized| {
            let est = plan.cost.total(&params);
            let (rep, _) = setup.execute(&plan.pt);
            let measured = rep.total(params.pr, params.ev);
            let _ = writeln!(
                out,
                "| {query} | {plan_name} | {est:.0} | {measured:.0} | {:.2} |",
                est / measured.max(1e-9)
            );
        };
    let mut setup = PaperSetup::new(PaperSetup::paper_scale());
    let q3 = setup.fig3_gen(3);
    let unpushed = setup.optimize(&q3, OptimizerConfig::never_push());
    row("fig3 (gen>=3)", "unpushed", &mut setup, &unpushed);
    let pushed = setup.optimize(&q3, OptimizerConfig::deductive_heuristic());
    row("fig3 (gen>=3)", "pushed", &mut setup, &pushed);
    let qj = setup.pushjoin();
    let jchosen = setup.optimize(&qj, OptimizerConfig::cost_controlled());
    row("§4.5 push-join", "chosen", &mut setup, &jchosen);
    let q2 = fig2_query(setup.m.db.catalog());
    let f2 = setup.optimize(&q2, OptimizerConfig::cost_controlled());
    row("fig2", "chosen", &mut setup, &f2);
    out
}

/// E12 (ablation): the physical design knobs DESIGN.md calls out —
/// clustering, buffer size, and path-index availability — measured on
/// the Figure 3 workload with the optimizer re-planning for each
/// configuration.
pub fn ablation_report() -> String {
    let mut out = String::from("=== E12: physical-design ablations (measured, fig3 gen>=3) ===\n");
    let params = CostParams::default();
    let base_cfg = MusicConfig {
        ..PaperSetup::paper_scale()
    };

    // (a) Clustering: sub-objects co-located with owners vs scattered.
    out.push_str("\n(a) clustering | est. total | measured total |\n|---|---|---|\n");
    for clustered in [false, true] {
        let mut setup = PaperSetup::new(MusicConfig {
            clustered,
            ..base_cfg.clone()
        });
        let q = setup.fig3_gen(3);
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        let (rep, _) = setup.execute(&plan.pt);
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} |",
            if clustered { "clustered" } else { "scattered" },
            plan.cost.total(&params),
            rep.total(params.pr, params.ev)
        );
    }

    // (b) Buffer size: page reads of the same plan under different LRU
    // capacities (rescans of the fixpoint inner become hits).
    out.push_str("\n(b) buffer frames | measured page reads |\n|---|---|\n");
    for frames in [4usize, 16, 64, 256] {
        let mut setup = PaperSetup::new(MusicConfig {
            buffer_frames: frames,
            ..base_cfg.clone()
        });
        let q = setup.fig3_gen(3);
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        let (rep, _) = setup.execute(&plan.pt);
        let _ = writeln!(
            out,
            "| {frames} | {} |",
            rep.io.page_reads + rep.io.index_reads
        );
    }

    // (c) Path index: with the works.instruments index the translate
    // step collapses the IJ chain into a PIJ; without it the optimizer
    // must dereference.
    out.push_str(
        "\n(c) works.instruments path index | est. total | measured total | plan uses PIJ |\n\
         |---|---|---|---|\n",
    );
    for with_index in [true, false] {
        // Build the setup manually so the index can be omitted.
        let cat = std::sync::Arc::new(music_catalog());
        let mut m = oorq_datagen::MusicDb::generate(std::sync::Arc::clone(&cat), base_cfg.clone());
        let mut idx = oorq_index::IndexSet::new();
        if with_index {
            idx.add_path(oorq_index::PathIndex::build(
                &mut m.db,
                vec![
                    (m.composer, m.works_attr),
                    (m.composition, m.instruments_attr),
                ],
            ));
        }
        idx.add_selection(oorq_index::SelectionIndex::build(
            &mut m.db,
            m.composer,
            m.name_attr,
        ));
        let stats = DbStats::collect(&m.db);
        let mut setup = PaperSetup { m, idx, stats };
        let q = setup.fig3_gen(3);
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        let mut has_pij = false;
        plan.pt.visit(&mut |n| {
            if matches!(n, oorq_pt::Pt::PIJ { .. }) {
                has_pij = true;
            }
        });
        let (rep, _) = setup.execute(&plan.pt);
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} | {} |",
            if with_index { "present" } else { "absent" },
            plan.cost.total(&params),
            rep.total(params.pr, params.ev),
            has_pij
        );
    }
    out
}

/// Sanity harness: every plan printed by the reports returns the
/// reference evaluator's answer (used by integration tests).
pub fn verify_reports_semantics() -> Result<(), String> {
    let mut setup = PaperSetup::new(MusicConfig {
        chains: 3,
        chain_len: 5,
        harpsichord_fraction: 0.5,
        ..PaperSetup::paper_scale()
    });
    let methods = MethodRegistry::new();
    for (name, q) in [
        ("fig3_gen2", setup.fig3_gen(2)),
        ("pushjoin", setup.pushjoin()),
    ] {
        let reference = eval_query_graph(&setup.m.db, &methods, &q)
            .map_err(|e| format!("{name}: reference: {e}"))?;
        for config in [
            OptimizerConfig::cost_controlled(),
            OptimizerConfig::deductive_heuristic(),
            OptimizerConfig::never_push(),
        ] {
            let plan = setup.optimize(&q, config);
            let (_, _n) = setup.execute(&plan.pt);
            let methods2 = MethodRegistry::new();
            let mut ex = oorq_exec::Executor::new(&mut setup.m.db, &setup.idx, &methods2);
            let got = ex.run(&plan.pt).map_err(|e| format!("{name}: exec: {e}"))?;
            let mut a = reference.rows.clone();
            let mut b = got.rows.clone();
            a.sort();
            b.sort();
            if a != b {
                return Err(format!("{name}: answer mismatch"));
            }
        }
    }
    Ok(())
}

/// Static verification: the lint-code table plus a worked pass over the
/// paper's recursive query — graph lint, plan verification of the
/// optimized plan, a deliberately broken plan, and the cost sanity pass.
///
/// The returned flag is `true` when every *real* pass (graph, plan,
/// cost) is clean; the deliberately broken demo plan never counts
/// against it. `reproduce lint` exits nonzero on `false`.
pub fn lint_report(setup: &PaperSetup) -> (String, bool) {
    use oorq_lint::{lint_graph, lint_plan_cost, verify_pt, LintCode};
    use oorq_pt::Pt;
    use oorq_query::Expr;

    let mut out = String::from("=== Static verification: lint codes and passes ===\n");
    let _ = writeln!(out, "| Code | Severity | Checks that |");
    let _ = writeln!(out, "|---|---|---|");
    for c in LintCode::all() {
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            c.code(),
            c.severity(),
            c.describe()
        );
    }

    // Graph pass over the expanded Figure 3 query.
    let q = setup.fig3();
    let graph = lint_graph(setup.m.db.catalog(), &q);
    let _ = writeln!(out, "\n-- graph pass: figure 3 (Influencer expanded) --");
    let _ = writeln!(
        out,
        "{}",
        if graph.is_clean() {
            "clean (notes below)"
        } else {
            "ERRORS"
        }
    );
    let _ = write!(out, "{}", graph.render());

    // Plan pass over the optimized plan.
    let plan = setup.optimize(&q, OptimizerConfig::never_push());
    let env = setup.env();
    let verified = verify_pt(&env, &plan.pt);
    let _ = writeln!(out, "\n-- plan pass: optimized figure 3 plan --");
    let _ = writeln!(
        out,
        "{}",
        if verified.is_clean() {
            "clean"
        } else {
            "ERRORS"
        }
    );
    let _ = write!(out, "{}", verified.render());

    // A deliberately broken plan: the projection drops `x.birth`, which
    // the selection above it still consumes.
    let composer_e = setup.m.db.physical().entities_of_class(setup.m.composer)[0];
    let broken = Pt::sel(
        Expr::var("x.birth").eq(Expr::int(1685)),
        Pt::proj(
            vec![("x.name".into(), Expr::path("x", &["name"]))],
            Pt::entity(composer_e, "x"),
        ),
    );
    let bad = verify_pt(&env, &broken);
    let _ = writeln!(
        out,
        "\n-- plan pass: a broken plan (selection over a dropped column) --"
    );
    let _ = write!(out, "{}", bad.render());

    // Cost sanity pass over the optimized plan.
    let model = CostModel::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        CostParams::default(),
    );
    let cost = lint_plan_cost(&model, &plan.pt);
    let _ = writeln!(out, "\n-- cost pass: optimized figure 3 plan --");
    let _ = writeln!(out, "{}", if cost.is_clean() { "clean" } else { "ERRORS" });
    let _ = write!(out, "{}", cost.render());
    let clean = graph.is_clean() && verified.is_clean() && cost.is_clean();
    (out, clean)
}

/// `reproduce lint --explain <CODE>`: the registry entry for one stable
/// lint code, or `None` when the code is unknown.
pub fn explain_lint_code(code: &str) -> Option<String> {
    let c = oorq_lint::LintCode::all()
        .iter()
        .find(|c| c.code().eq_ignore_ascii_case(code))?;
    Some(format!(
        "{}: severity {}\n  {}\n",
        c.code(),
        c.severity(),
        c.describe()
    ))
}

/// Convenience: a map environment for evaluating Figure 7 symbols from
/// statistics (exposed for EXPERIMENTS.md tooling and tests).
pub fn fig7_symbol_env(setup: &PaperSetup) -> HashMap<String, f64> {
    let composer_e = setup.m.db.physical().entities_of_class(setup.m.composer)[0];
    let es = setup.stats.entity(composer_e).expect("stats");
    let n1 = setup.stats.max_chain_depth().unwrap_or(10) as f64;
    let mut env = HashMap::new();
    env.insert("pr".into(), 1.0);
    env.insert("ev".into(), 1.0);
    env.insert("lev".into(), 2.0);
    env.insert("lea".into(), (es.cardinality as f64 / 8.0).max(1.0));
    env.insert("n1".into(), n1);
    env.insert("n2".into(), n1);
    env.insert("||Cpr||".into(), es.cardinality as f64);
    env.insert("|Cpr|".into(), es.pages as f64);
    env.insert("inv_Cpr".into(), 1.0 / es.cardinality as f64);
    env
}
