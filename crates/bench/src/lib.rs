//! Benchmark harness reproducing every figure of the paper.
//!
//! The [`scenarios`] module builds the standard experimental setups; the
//! [`reports`] module produces the tables printed by the `reproduce`
//! binary (one section per figure / worked example); the [`harness`]
//! module is the minimal wall-clock timer the `[[bench]]` targets use.

pub mod analyze;
pub mod calibrate;
pub mod feedback;
pub mod fuzz;
pub mod harness;
pub mod metrics;
pub mod parallel;
pub mod reports;
pub mod scenarios;
pub mod serve;
pub mod spill;
pub mod tracing;

pub use scenarios::PaperSetup;

#[cfg(test)]
mod tests {
    use crate::reports::{fig5_report, fig7_symbol_env, fig7_symbolic};
    use crate::scenarios::PaperSetup;
    use oorq_datagen::MusicConfig;

    #[test]
    fn fig7_symbolic_rows_evaluate_under_stats_env() {
        let setup = PaperSetup::new(MusicConfig {
            chains: 4,
            chain_len: 4,
            ..PaperSetup::paper_scale()
        });
        let mut env = fig7_symbol_env(&setup);
        // Derived sizes for the T-symbols the table references.
        for (k, v) in [
            ("|Inf_i|", 2.0),
            ("|T1|", 8.0),
            ("|T2|", 3.0),
            ("||T2||", 40.0),
        ] {
            env.insert(k.to_string(), v);
        }
        let rows = fig7_symbolic();
        assert_eq!(rows.len(), 15, "T1..T15");
        // Every row with fully bound symbols evaluates to a finite,
        // non-negative number.
        for r in &rows {
            let v = r.formula.eval(&env);
            assert!(v.is_finite() && v >= 0.0, "{}: {v}", r.node);
        }
        // T1 matches its closed form.
        let t1 = rows[0].formula.eval(&env);
        let n = env["||Cpr||"];
        let p = env["|Cpr|"];
        let n1 = env["n1"];
        let expected = p + n * p * 2.0 + (n1 - 1.0) * (p + n * 2.0 * 2.0);
        assert!((t1 - expected).abs() < 1e-9, "{t1} vs {expected}");
    }

    #[test]
    fn fig5_report_lists_all_operators() {
        let r = fig5_report();
        for op in [
            "Sel_selpred",
            "EJ_pred",
            "IJ_Ai",
            "PIJ_pathInd",
            "Fix(T, P)",
        ] {
            assert!(r.contains(op), "missing {op}:\n{r}");
        }
    }

    #[test]
    fn paper_setup_has_paper_physical_design() {
        let setup = PaperSetup::new(MusicConfig {
            chains: 2,
            chain_len: 3,
            ..PaperSetup::paper_scale()
        });
        let m = &setup.m;
        assert!(m
            .db
            .physical()
            .path_index(&[
                (m.composer, m.works_attr),
                (m.composition, m.instruments_attr)
            ])
            .is_some());
        assert!(m
            .db
            .physical()
            .selection_index(m.composer, m.name_attr)
            .is_some());
    }
}
