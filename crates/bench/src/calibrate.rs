//! The cost-model calibration harness.
//!
//! Runs the music / parts / chain scenario corpus across seeded sizes
//! under both recursion strategies, joins the optimizer's per-node cost
//! breakdown against the executor's observed per-operator counters (on
//! the shared PT pre-order node index), and fits the calibratable
//! [`CostWeights`] by deterministic weighted least squares — ridge
//! regression toward the identity weights, solved by hand-rolled
//! Gaussian elimination so the workspace stays dependency-free.
//!
//! Because every per-node estimate is a feature vector
//! ([`CostFeatures`]) dotted with the weights, fitting never re-runs
//! the estimator: the residual pairs collected once serve both the fit
//! and the before/after evaluation. The fitted parameters are persisted
//! as the checked-in `crates/cost/calibrated.toml` snapshot (loaded by
//! [`CostParams::calibrated`]); `reproduce calibrate-gate` re-runs the
//! corpus and fails when any operator kind's median relative error
//! drifts beyond the checked-in baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{
    Cost, CostFeatures, CostModel, CostParams, CostWeights, FixCurve, NodeCost, OpKind,
};
use oorq_datagen::{parts_catalog, ChainConfig, ChainDb, MusicConfig, PartsConfig, PartsDb};
use oorq_exec::{Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_lint::{lint_drift, DriftTolerance, ObservedOp, Severity};
use oorq_prng::Prng;
use oorq_pt::Pt;
use oorq_query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq_storage::{Database, DbStats};

use crate::scenarios::PaperSetup;

/// Reference weighting for the scalar error metric: one page access
/// (`pr`) and one evaluation (`ev`), fixed so "relative error" means
/// the same thing whichever parameters are being judged.
pub const REF_PR: f64 = 1.0;
/// See [`REF_PR`].
pub const REF_EV: f64 = 0.05;

/// One matched (predicted, observed) operator of one executed plan.
#[derive(Debug, Clone)]
pub struct SampleLine {
    /// Pre-order PT node index within the plan.
    pub pt_node: usize,
    /// Operator kind (report grouping key).
    pub kind: OpKind,
    /// Operator label.
    pub label: String,
    /// The estimator's feature vector for this node under the
    /// *uncalibrated* parameters ([`CostParams::default`]; already
    /// scaled by fixpoint iterations on recursive sides).
    pub feat: CostFeatures,
    /// The feature vector under the *calibrated feature model* (the
    /// residency-enabled parameters the fitted weights apply to).
    pub feat_res: CostFeatures,
    /// Predicted output rows under the *uncalibrated* parameters.
    pub pred_rows: f64,
    /// Predicted output rows under the calibrated feature model
    /// (residency + fitted fixpoint profiles) — the estimate whose
    /// cardinality quality gates fit eligibility (see [`card_ok`]).
    pub pred_rows_res: f64,
    /// True when this line sits on the recursive side of a fixpoint
    /// (or is the fixpoint node itself) — the lines whose row estimates
    /// the cardinality-feedback loop is meant to repair.
    pub in_fix_rec: bool,
    /// Observed page accesses (reads + index node reads + writes).
    pub obs_io: f64,
    /// Observed evaluations (predicate evals + method calls).
    pub obs_cpu: f64,
    /// Observed output rows.
    pub obs_rows: f64,
}

impl SampleLine {
    fn units(feat: &CostFeatures, w: &CostWeights) -> f64 {
        feat.io(w) * REF_PR + feat.cpu(w) * REF_EV
    }

    /// Predicted scalar cost under the uncalibrated features and the
    /// given weights (reference pr/ev weighting).
    pub fn predicted_units(&self, w: &CostWeights) -> f64 {
        Self::units(&self.feat, w)
    }

    /// Predicted scalar cost under the calibrated feature model and the
    /// given weights.
    pub fn predicted_units_res(&self, w: &CostWeights) -> f64 {
        Self::units(&self.feat_res, w)
    }

    /// Observed scalar cost (reference pr/ev weighting).
    pub fn observed_units(&self) -> f64 {
        self.obs_io * REF_PR + self.obs_cpu * REF_EV
    }

    /// Relative error of the uncalibrated prediction under the given
    /// weights.
    pub fn rel_err(&self, w: &CostWeights) -> f64 {
        (self.predicted_units(w) - self.observed_units()).abs() / self.observed_units().max(1.0)
    }

    /// Relative error of the calibrated-feature-model prediction under
    /// the given weights.
    pub fn rel_err_res(&self, w: &CostWeights) -> f64 {
        (self.predicted_units_res(w) - self.observed_units()).abs() / self.observed_units().max(1.0)
    }
}

/// One fixpoint of one executed plan: the modeled delta curves (under
/// both parameter sets) joined to the observed curve — the raw material
/// of the cardinality-feedback fit (`crate::feedback`).
#[derive(Debug, Clone)]
pub struct FixSample {
    /// The fixpoint's temporary.
    pub temp: String,
    /// Pre-order PT node index of the `Fix` node.
    pub pt_node: usize,
    /// The curve the *uncalibrated* estimator modeled (flat deltas).
    pub pred_default: FixCurve,
    /// The curve the calibrated feature model (profiles attached, when
    /// fitted) modeled.
    pub pred_res: FixCurve,
    /// The observed delta curve (seed first, final 0 on convergence).
    pub observed: Vec<u64>,
    /// The chain-depth statistic the estimator consulted (for
    /// fitting `iters_per_depth`).
    pub depth: f64,
}

/// Every matched operator of one optimized-and-executed plan.
#[derive(Debug, Clone)]
pub struct PlanSample {
    /// Scenario / query / strategy tag.
    pub scenario: String,
    /// Matched per-operator lines.
    pub lines: Vec<SampleLine>,
    /// Per-fixpoint modeled-vs-observed delta curves.
    pub fixes: Vec<FixSample>,
}

impl PlanSample {
    /// The drift-lint view of this sample under the given weights:
    /// re-priced breakdown lines against the recorded observations.
    /// `res` selects the calibrated feature model.
    fn drift_report(
        &self,
        w: &CostWeights,
        res: bool,
        tol: DriftTolerance,
    ) -> oorq_lint::LintReport {
        let breakdown: Vec<NodeCost> = self
            .lines
            .iter()
            .map(|l| {
                let feat = if res { l.feat_res } else { l.feat };
                NodeCost {
                    label: l.label.clone(),
                    kind: l.kind,
                    node: Some(l.pt_node),
                    cost: Cost::new(feat.io(w), feat.cpu(w)),
                    feat,
                    rows: l.pred_rows,
                    pages: 0.0,
                    fix: None,
                }
            })
            .collect();
        let observed: Vec<ObservedOp> = self
            .lines
            .iter()
            .map(|l| ObservedOp {
                pt_node: l.pt_node,
                label: l.label.clone(),
                io: l.obs_io,
                cpu: l.obs_cpu,
                rows: l.obs_rows,
            })
            .collect();
        lint_drift(&breakdown, &observed, tol)
    }
}

/// Optimize (under [`CostParams::default`]), execute cold-cache, and
/// join predicted against observed per-operator. The final plan is
/// additionally re-estimated under `res_params` (the calibrated feature
/// model, typically residency-enabled) so every matched line carries
/// both feature vectors.
fn sample_plan(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    config: OptimizerConfig,
    res_params: &CostParams,
    scenario: String,
) -> PlanSample {
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let mut opt = Optimizer::new(model, config);
    let plan = opt
        .optimize(q)
        .unwrap_or_else(|e| panic!("{scenario}: optimization failed: {e}"));
    // Re-estimate the chosen plan under the calibrated feature model;
    // the optimizer's model already registered every temporary's shape.
    let mut res_model = opt.model;
    res_model.params = CostParams {
        // The harness knows which scenario this plan came from, so the
        // re-estimate may use the exact (scenario, temp) profile rather
        // than the cross-scenario aggregate.
        profile_scope: scenario.clone(),
        ..res_params.clone()
    };
    let depth = res_model.fix_iterations();
    let res_cost = res_model
        .cost(&plan.pt)
        .unwrap_or_else(|e| panic!("{scenario}: re-estimation failed: {e}"));
    let res_feat: BTreeMap<usize, (CostFeatures, f64)> = res_cost
        .breakdown
        .iter()
        .filter_map(|n| Some((n.node?, (n.feat, n.rows))))
        .collect();
    let rec_nodes = fix_rec_nodes(&plan.pt);
    db.cold_cache();
    let mut ex = Executor::new(db, idx, methods);
    ex.run(&plan.pt)
        .unwrap_or_else(|e| panic!("{scenario}: execution failed: {e}"));
    let report = ex.report();

    // Observed totals per PT node (re-instantiated operators sum).
    let mut obs: BTreeMap<usize, (f64, f64, f64)> = BTreeMap::new();
    for op in &report.ops {
        let e = obs.entry(op.pt_node).or_insert((0.0, 0.0, 0.0));
        e.0 += (op.page_reads + op.index_reads + op.page_writes) as f64;
        e.1 += (op.evals + op.method_calls) as f64;
        e.2 += op.rows_out as f64;
    }
    // Twin operators (same kind and label — e.g. the same class scanned
    // in two branches) are merged: the executor's buffer pool attributes
    // their shared cold reads to whichever twin happens to run first,
    // an ordering the model deliberately does not predict. Their *sum*
    // is well-defined on both sides, so the merged line is the one fair
    // to fit and judge against.
    let mut lines: Vec<SampleLine> = Vec::new();
    let mut by_key: BTreeMap<(OpKind, String), usize> = BTreeMap::new();
    for n in &plan.trace.final_breakdown {
        let Some(node) = n.node else { continue };
        let Some(&(obs_io, obs_cpu, obs_rows)) = obs.get(&node) else {
            continue;
        };
        let (feat_res, rows_res) = res_feat.get(&node).copied().unwrap_or((n.feat, n.rows));
        match by_key.entry((n.kind, n.label.clone())) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let l = &mut lines[*e.get()];
                l.feat += n.feat;
                l.feat_res += feat_res;
                l.pred_rows += n.rows;
                l.pred_rows_res += rows_res;
                l.in_fix_rec |= rec_nodes.contains(&node);
                l.obs_io += obs_io;
                l.obs_cpu += obs_cpu;
                l.obs_rows += obs_rows;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(lines.len());
                lines.push(SampleLine {
                    pt_node: node,
                    kind: n.kind,
                    label: n.label.clone(),
                    feat: n.feat,
                    feat_res,
                    pred_rows: n.rows,
                    pred_rows_res: rows_res,
                    in_fix_rec: rec_nodes.contains(&node),
                    obs_io,
                    obs_cpu,
                    obs_rows,
                });
            }
        }
    }

    // Join each fixpoint's modeled delta curves (default and
    // calibrated) to its observed one, on the shared PT node index.
    let res_fix: BTreeMap<usize, FixCurve> = res_cost
        .breakdown
        .iter()
        .filter_map(|n| Some((n.node?, n.fix.clone()?)))
        .collect();
    let mut fixes = Vec::new();
    for n in &plan.trace.final_breakdown {
        let (Some(node), Some(pred_default)) = (n.node, n.fix.clone()) else {
            continue;
        };
        let Some(observed) = report
            .fix_deltas
            .iter()
            .find(|c| c.pt_node == node)
            .map(|c| c.deltas.clone())
        else {
            continue;
        };
        let pred_res = res_fix
            .get(&node)
            .cloned()
            .unwrap_or_else(|| pred_default.clone());
        fixes.push(FixSample {
            temp: pred_default.temp.clone(),
            pt_node: node,
            pred_default,
            pred_res,
            observed,
            depth,
        });
    }
    PlanSample {
        scenario,
        lines,
        fixes,
    }
}

/// Pre-order indices of every node on the recursive side of a fixpoint
/// (the `Fix` node itself included) — the operators whose row estimates
/// hinge on modeled delta cardinalities.
fn fix_rec_nodes(pt: &Pt) -> std::collections::HashSet<usize> {
    let ids = oorq_pt::node_ids(pt);
    let mut out = std::collections::HashSet::new();
    pt.visit(&mut |n| {
        if let Pt::Fix { temp, body } = n {
            if let Some(&id) = ids.get(&(n as *const Pt)) {
                out.insert(id);
            }
            if let Pt::Union { left, right } = body.as_ref() {
                let rec = if left.references_temp(temp) {
                    left.as_ref()
                } else {
                    right.as_ref()
                };
                rec.visit(&mut |r| {
                    if let Some(&id) = ids.get(&(r as *const Pt)) {
                        out.insert(id);
                    }
                });
            }
        }
    });
    out
}

/// Run the whole calibration corpus: the music scenario (recursive
/// `Influencer` chains, path + selection indexes), the parts scenario
/// (recursive bill-of-materials with a computed attribute), and the
/// chain scenario (non-recursive multi-joins) — each at several
/// [`Prng`]-seeded sizes, recursive queries under both the never-push
/// and always-push strategies. `res_params` is the calibrated feature
/// model every plan is re-estimated under (see [`SampleLine::feat_res`]).
pub fn collect_corpus(res_params: &CostParams) -> Vec<PlanSample> {
    let mut samples = Vec::new();
    let mut rng = Prng::new(0x0ca1_1b8a_7e00_0003);

    // -- music ------------------------------------------------------
    for i in 0..3u32 {
        let cfg = MusicConfig {
            chains: 3 + i,
            chain_len: 3 + 2 * i,
            works_per_composer: 1 + i,
            instruments_per_work: 2 + i % 2,
            instrument_pool: 12,
            harpsichord_fraction: [0.25, 0.5, 0.9][i as usize],
            clustered: i % 2 == 1,
            buffer_frames: 32,
            seed: rng.range_u32(1, 1 << 20) as u64,
        };
        let mut setup = PaperSetup::new(cfg);
        let q = setup.fig3_gen(2);
        let methods = MethodRegistry::new();
        for (cname, config) in [
            ("nopush", OptimizerConfig::never_push()),
            ("push", OptimizerConfig::deductive_heuristic()),
        ] {
            samples.push(sample_plan(
                &mut setup.m.db,
                &setup.idx,
                &methods,
                &q,
                config,
                res_params,
                format!("music{i}/fig3/{cname}"),
            ));
        }
        let qj = setup.pushjoin();
        samples.push(sample_plan(
            &mut setup.m.db,
            &setup.idx,
            &methods,
            &qj,
            OptimizerConfig::never_push(),
            res_params,
            format!("music{i}/pushjoin/nopush"),
        ));
    }

    // -- parts ------------------------------------------------------
    for (i, (roots, fanout, depth)) in [(2u32, 2u32, 3u32), (3, 3, 3)].into_iter().enumerate() {
        let cat = Arc::new(parts_catalog());
        let mut p = PartsDb::generate(
            Arc::clone(&cat),
            PartsConfig {
                roots,
                fanout,
                depth,
                clustered: i % 2 == 1,
                buffer_frames: 32,
                seed: rng.range_u32(1, 1 << 20) as u64,
            },
        );
        let q = parts_query(&cat);
        let methods = MethodRegistry::with_parts_methods(&cat);
        let idx = IndexSet::new();
        for (cname, config) in [
            ("nopush", OptimizerConfig::never_push()),
            ("push", OptimizerConfig::deductive_heuristic()),
        ] {
            samples.push(sample_plan(
                &mut p.db,
                &idx,
                &methods,
                &q,
                config,
                res_params,
                format!("parts{i}/{cname}"),
            ));
        }
    }

    // -- chain ------------------------------------------------------
    for (i, (relations, rows, domain)) in [(3usize, 80u32, 16i64), (4, 50, 12)]
        .into_iter()
        .enumerate()
    {
        let mut chain = ChainDb::generate(ChainConfig {
            relations,
            rows,
            domain,
            seed: rng.range_u32(1, 1 << 20) as u64,
        });
        let methods = MethodRegistry::new();
        let idx = IndexSet::new();
        for (qname, q) in [
            ("chain", chain.chain_query(8)),
            ("tail", chain.selective_tail_query(3)),
        ] {
            samples.push(sample_plan(
                &mut chain.db,
                &idx,
                &methods,
                &q,
                OptimizerConfig::cost_controlled(),
                res_params,
                format!("chain{i}/{qname}"),
            ));
        }
    }

    samples
}

/// The recursive parts bill-of-materials query ("components of `asm0`
/// heavier than 40, with their unit test cost"), with the `Contains`
/// view expanded — the bench-side twin of the differential-test
/// fixture.
pub fn parts_query(cat: &oorq_schema::Catalog) -> QueryGraph {
    let part = cat.class_by_name("Part").expect("parts schema");
    let contains = cat.relation_by_name("Contains").expect("parts schema");
    let mut reg = ViewRegistry::new();
    reg.define(
        contains,
        vec![
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Class(part), "p"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("p", &["subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::var("p")),
                    ("component".into(), Expr::var("s")),
                    ("depth".into(), Expr::int(1)),
                ],
            },
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Relation(contains), "c"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("c", &["component", "subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::path("c", &["assembly"])),
                    ("component".into(), Expr::var("s")),
                    (
                        "depth".into(),
                        Expr::path("c", &["depth"]).add(Expr::int(1)),
                    ),
                ],
            },
        ],
    );
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(contains), "k")],
            pred: Expr::path("k", &["assembly", "name"])
                .eq(Expr::text("asm0"))
                .and(Expr::path("k", &["component", "weight"]).ge(Expr::int(40))),
            out_proj: vec![
                ("component".into(), Expr::path("k", &["component", "name"])),
                (
                    "cost".into(),
                    Expr::path("k", &["component", "unit_test_cost"]),
                ),
            ],
        },
    );
    reg.expand(&mut q, cat).expect("parts view must expand");
    q
}

/// Magnitude floor of the per-equation fit weighting `1/max(obs,
/// FIT_FLOOR)²`: keeps near-zero observations (a handful of pages whose
/// cold reads the executor attributes to a twin operator) from
/// receiving unbounded relative weight and dragging a shared
/// coefficient away from the bulk of the corpus.
const FIT_FLOOR: f64 = 4.0;

/// Cardinality-drift bound for fit eligibility. The weights correct
/// *unit-cost* drift (cost per page, per probe, per evaluation); a line
/// whose own row estimate is off by more than this factor has a
/// residual dominated by cardinality mis-estimation (e.g. recursive
/// deltas inside a fixpoint) and would teach the fit wrong unit costs.
/// Such lines are excluded from the normal equations but still scored
/// by the error tables and the regression gate.
const CARD_DRIFT: f64 = 2.0;

/// Whether a row prediction is within [`CARD_DRIFT`] of the
/// observation.
pub fn card_within(pred: f64, obs: f64) -> bool {
    let p = pred.max(1.0);
    let o = obs.max(1.0);
    p <= o * CARD_DRIFT && o <= p * CARD_DRIFT
}

/// Whether a line's own cardinality estimate is close enough to the
/// observation for its cost residual to reflect unit costs. Judged
/// under the calibrated feature model's rows ([`SampleLine::
/// pred_rows_res`]) — the estimate the fitted weights actually ride on,
/// and the one the fixpoint profiles repair for rec-side lines.
fn card_ok(l: &SampleLine) -> bool {
    card_within(l.pred_rows_res, l.obs_rows)
}

/// Fit the component weights to the corpus by weighted ridge least
/// squares, pulled toward the identity weights. The fit runs over the
/// calibrated feature model ([`SampleLine::feat_res`]) — the weights it
/// produces are the ones [`CostParams::calibrated`] applies.
///
/// Each matched operator whose own row estimate held (see [`card_ok`])
/// contributes one equation per cost side —
/// `feat · w = observed` — weighted by `1/max(observed, FIT_FLOOR)²` so
/// the fit minimizes (approximately) *relative* error rather than
/// letting the largest operators dominate. The ridge term `λ‖w − 1‖²` keeps
/// features the corpus never exercises at exactly their uncalibrated
/// value and makes the normal equations unconditionally solvable. All
/// arithmetic is plain `f64` over a deterministically ordered corpus:
/// the fit is reproducible bit-for-bit.
pub fn fit_weights(samples: &[PlanSample]) -> CostWeights {
    let lines: Vec<&SampleLine> = samples
        .iter()
        .flat_map(|s| &s.lines)
        .filter(|l| card_ok(l))
        .collect();

    // io side: 5 features against observed page accesses.
    let mut ata = [[0.0f64; 5]; 5];
    let mut atb = [0.0f64; 5];
    for l in &lines {
        let a = l.feat_res.io_columns();
        let wgt = 1.0 / l.obs_io.max(FIT_FLOOR).powi(2);
        for i in 0..5 {
            for j in 0..5 {
                ata[i][j] += wgt * a[i] * a[j];
            }
            atb[i] += wgt * a[i] * l.obs_io;
        }
    }
    let w_io = ridge_solve(&mut ata, &mut atb);

    // cpu side: 2 features against observed evaluations.
    let mut ata2 = [[0.0f64; 2]; 2];
    let mut atb2 = [0.0f64; 2];
    for l in &lines {
        let a = l.feat_res.cpu_columns();
        let wgt = 1.0 / l.obs_cpu.max(FIT_FLOOR).powi(2);
        for i in 0..2 {
            for j in 0..2 {
                ata2[i][j] += wgt * a[i] * a[j];
            }
            atb2[i] += wgt * a[i] * l.obs_cpu;
        }
    }
    let w_cpu = ridge_solve(&mut ata2, &mut atb2);

    let clamp = |v: f64| v.clamp(0.05, 20.0);
    CostWeights {
        seq_page: clamp(w_io[0]),
        deref_page: clamp(w_io[1]),
        index_level: clamp(w_io[2]),
        index_leaf: clamp(w_io[3]),
        write_page: clamp(w_io[4]),
        eval: clamp(w_cpu[0]),
        method: clamp(w_cpu[1]),
    }
}

/// Add the ridge pull toward 1 and solve `(AᵀA + λI) w = Aᵀb + λ·1` by
/// Gaussian elimination with partial pivoting. The ridge strength is
/// relative to the system's own scale so it is negligible for features
/// the corpus exercises and decisive for ones it does not.
fn ridge_solve<const N: usize>(ata: &mut [[f64; N]; N], atb: &mut [f64; N]) -> [f64; N] {
    let trace: f64 = (0..N).map(|i| ata[i][i]).sum();
    let lambda = 1e-4 * (trace / N as f64) + 1e-9;
    for i in 0..N {
        ata[i][i] += lambda;
        atb[i] += lambda;
    }
    solve(ata, atb)
}

fn solve<const N: usize>(a: &mut [[f64; N]; N], b: &mut [f64; N]) -> [f64; N] {
    for col in 0..N {
        let pivot = (col..N)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        debug_assert!(p.abs() > 0.0, "ridge keeps every pivot nonzero");
        let pivot_row = a[col];
        for row in col + 1..N {
            let f = a[row][col] / p;
            for (dst, src) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; N];
    for col in (0..N).rev() {
        let mut v = b[col];
        for k in col + 1..N {
            v -= a[col][k] * x[k];
        }
        x[col] = v / a[col][col];
    }
    x
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// One row of the per-operator-kind error table.
#[derive(Debug, Clone)]
pub struct KindRow {
    /// Operator kind.
    pub kind: OpKind,
    /// Matched operators of this kind in the corpus.
    pub n: usize,
    /// Median relative error under the first (baseline) weights.
    pub med_a: f64,
    /// Median relative error under the second (candidate) weights.
    pub med_b: f64,
}

/// Per-kind and overall median relative error of the uncalibrated
/// prediction (identity features, `wa`) against the calibrated one
/// (residency features, `wb`).
pub fn kind_medians(
    samples: &[PlanSample],
    wa: &CostWeights,
    wb: &CostWeights,
) -> (Vec<KindRow>, f64, f64) {
    let mut per_kind: BTreeMap<OpKind, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    let mut all_a = Vec::new();
    let mut all_b = Vec::new();
    for l in samples.iter().flat_map(|s| &s.lines) {
        let (ea, eb) = (l.rel_err(wa), l.rel_err_res(wb));
        let e = per_kind.entry(l.kind).or_default();
        e.0.push(ea);
        e.1.push(eb);
        all_a.push(ea);
        all_b.push(eb);
    }
    let rows = per_kind
        .into_iter()
        .map(|(kind, (a, b))| KindRow {
            kind,
            n: a.len(),
            med_a: median(a),
            med_b: median(b),
        })
        .collect();
    (rows, median(all_a), median(all_b))
}

/// Total drift-lint warnings (CX001–CX003) over the corpus under the
/// given weights.
pub fn drift_warnings(samples: &[PlanSample], w: &CostWeights, res: bool) -> usize {
    samples
        .iter()
        .map(|s| {
            s.drift_report(w, res, DriftTolerance::default())
                .diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Warn)
                .count()
        })
        .sum()
}

/// The `reproduce calibrate` section: per-operator-kind relative-error
/// tables before (identity weights) and after (the checked-in fitted
/// snapshot), plus drift-lint counts.
pub fn calibrate_report() -> String {
    let calibrated = CostParams::calibrated();
    let samples = collect_corpus(&calibrated);
    let default = CostParams::default();
    render_comparison(&samples, &default.weights, &calibrated.weights)
}

fn render_comparison(samples: &[PlanSample], wa: &CostWeights, wb: &CostWeights) -> String {
    let (rows, overall_a, overall_b) = kind_medians(samples, wa, wb);
    let n_lines: usize = samples.iter().map(|s| s.lines.len()).sum();
    let mut out = String::from(
        "=== Calibration: per-operator-kind median relative error ===\n\
         (corpus: music/parts/chain scenarios, both strategies, seeded sizes;\n\
         error = |predicted - observed| / max(observed, 1) in pr/ev units)\n",
    );
    let _ = writeln!(
        out,
        "{} plans, {} matched operators\n",
        samples.len(),
        n_lines
    );
    out.push_str("| kind | n | default | calibrated | change |\n|---|---|---|---|---|\n");
    for r in &rows {
        let change = if r.med_b < r.med_a - 1e-9 {
            "improved"
        } else if r.med_b > r.med_a + 1e-9 {
            "worse"
        } else {
            "="
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {} |",
            r.kind.name(),
            r.n,
            r.med_a,
            r.med_b,
            change
        );
    }
    let _ = writeln!(
        out,
        "| **overall** | {} | **{:.3}** | **{:.3}** | {} |",
        n_lines,
        overall_a,
        overall_b,
        if overall_b < overall_a {
            "improved"
        } else {
            "NOT improved"
        }
    );
    let _ = writeln!(
        out,
        "\ndrift-lint warnings (CX001-CX003): {} under default weights, {} under calibrated",
        drift_warnings(samples, wa, false),
        drift_warnings(samples, wb, true),
    );
    let _ = writeln!(
        out,
        "\ncalibrated weights: seq_page={:.3} deref_page={:.3} index_level={:.3} \
         index_leaf={:.3} write_page={:.3} eval={:.3} method={:.3}",
        wb.seq_page,
        wb.deref_page,
        wb.index_level,
        wb.index_leaf,
        wb.write_page,
        wb.eval,
        wb.method
    );
    out
}

/// The `reproduce calibrate-fit` section: re-fit the weights on the
/// corpus and print the snapshot to check in as
/// `crates/cost/calibrated.toml`.
pub fn calibrate_fit_report() -> String {
    // The feature model the weights are fitted for: residency on, and
    // the checked-in fixpoint profiles attached (the profile fit —
    // `reproduce feedback-fit` — precedes the weight fit).
    let res_params = CostParams {
        residency: true,
        ..CostParams::calibrated()
    };
    let samples = collect_corpus(&res_params);
    let w = fit_weights(&samples);
    let p = CostParams {
        weights: w,
        ..res_params
    };
    let snapshot = p.render_snapshot(
        "Calibration snapshot fitted by `reproduce calibrate-fit` over the\n\
         # music/parts/chain scenario corpus. Check in as\n\
         # crates/cost/calibrated.toml; loaded by CostParams::calibrated().",
    );
    let mut out = render_comparison(&samples, &CostParams::default().weights, &w);
    let _ = writeln!(out, "\n--- snapshot (crates/cost/calibrated.toml) ---");
    out.push_str(&snapshot);
    out
}

/// The checked-in residual baseline (regenerate with
/// `reproduce calibrate-fit` and update alongside the snapshot).
const BASELINE: &str = include_str!("../calibration_baseline.txt");

/// Absolute slack allowed over the checked-in per-kind baseline before
/// the gate fails. Counters and the fit are deterministic, so this only
/// absorbs float-rounding differences across platforms.
pub const GATE_TOLERANCE: f64 = 0.05;

/// The `reproduce calibrate-gate` section: re-run the corpus and fail
/// (`Err`) when any operator kind's median relative error under the
/// checked-in calibrated parameters exceeds its checked-in baseline by
/// more than [`GATE_TOLERANCE`], or when the calibrated weights no
/// longer improve the overall median over the identity weights.
pub fn calibrate_gate() -> Result<String, String> {
    let default = CostParams::default();
    let calibrated = CostParams::calibrated();
    let samples = collect_corpus(&calibrated);
    let (rows, overall_default, overall_cal) =
        kind_medians(&samples, &default.weights, &calibrated.weights);

    let mut baseline: BTreeMap<String, f64> = BTreeMap::new();
    for line in BASELINE.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kind, v) = line
            .split_once('=')
            .ok_or_else(|| format!("calibration_baseline.txt: bad line `{line}`"))?;
        baseline.insert(
            kind.trim().to_string(),
            v.trim()
                .parse()
                .map_err(|e| format!("calibration_baseline.txt: {e}"))?,
        );
    }

    let mut out = String::from("=== Calibration regression gate ===\n");
    let mut failures = Vec::new();
    for r in &rows {
        let Some(&base) = baseline.get(r.kind.name()) else {
            let _ = writeln!(
                out,
                "{}: {:.3} (no baseline; informational)",
                r.kind, r.med_b
            );
            continue;
        };
        let ok = r.med_b <= base + GATE_TOLERANCE;
        let _ = writeln!(
            out,
            "{}: median rel err {:.3} vs baseline {:.3} -> {}",
            r.kind,
            r.med_b,
            base,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures.push(format!(
                "{}: median relative error {:.3} exceeds baseline {:.3} + {:.2}",
                r.kind, r.med_b, base, GATE_TOLERANCE
            ));
        }
    }
    if let Some(&base) = baseline.get("overall") {
        let ok = overall_cal <= base + GATE_TOLERANCE;
        let _ = writeln!(
            out,
            "overall: median rel err {:.3} vs baseline {:.3} -> {}",
            overall_cal,
            base,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures.push(format!(
                "overall: median relative error {overall_cal:.3} exceeds baseline {base:.3}"
            ));
        }
    }
    if overall_cal > overall_default {
        failures.push(format!(
            "calibrated weights no longer improve the overall median \
             ({overall_cal:.3} vs {overall_default:.3} under identity weights)"
        ));
    } else {
        let _ = writeln!(
            out,
            "overall improvement holds: {overall_cal:.3} (calibrated) <= \
             {overall_default:.3} (default)"
        );
    }
    if failures.is_empty() {
        out.push_str("calibration gate OK\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}\ncalibration gate FAILED:\n{}",
            failures.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_line(feat: CostFeatures, w: &CostWeights, rows: f64) -> SampleLine {
        SampleLine {
            pt_node: 0,
            kind: OpKind::Scan,
            label: "synthetic".into(),
            feat,
            feat_res: feat,
            pred_rows: rows,
            pred_rows_res: rows,
            in_fix_rec: false,
            obs_io: feat.io(w),
            obs_cpu: feat.cpu(w),
            obs_rows: rows,
        }
    }

    /// The fit recovers weights that generated the observations.
    #[test]
    fn fit_recovers_planted_weights() {
        let truth = CostWeights {
            seq_page: 0.8,
            deref_page: 1.4,
            index_level: 2.0,
            index_leaf: 0.5,
            write_page: 3.0,
            eval: 1.2,
            method: 2.5,
        };
        let mut lines = Vec::new();
        let mut rng = Prng::new(0xf17);
        for _ in 0..64 {
            let feat = CostFeatures {
                seq_pages: rng.range_u32(0, 20) as f64,
                deref_pages: rng.range_u32(0, 20) as f64,
                index_level_ios: rng.range_u32(0, 8) as f64,
                index_leaf_ios: rng.range_u32(0, 8) as f64,
                write_pages: rng.range_u32(0, 6) as f64,
                evals: rng.range_u32(0, 40) as f64,
                method_units: rng.range_u32(0, 12) as f64,
            };
            lines.push(synthetic_line(feat, &truth, 10.0));
        }
        let samples = vec![PlanSample {
            scenario: "synthetic".into(),
            lines,
            fixes: Vec::new(),
        }];
        let w = fit_weights(&samples);
        for (name, got, want) in [
            ("seq_page", w.seq_page, truth.seq_page),
            ("deref_page", w.deref_page, truth.deref_page),
            ("index_level", w.index_level, truth.index_level),
            ("index_leaf", w.index_leaf, truth.index_leaf),
            ("write_page", w.write_page, truth.write_page),
            ("eval", w.eval, truth.eval),
            ("method", w.method, truth.method),
        ] {
            assert!(
                (got - want).abs() < 0.05,
                "{name}: fitted {got} vs planted {want}"
            );
        }
    }

    /// Lines whose own cardinality estimate drifted beyond
    /// [`CARD_DRIFT`] do not contaminate the unit-cost fit.
    #[test]
    fn cardinality_drifted_lines_are_excluded_from_fit() {
        let truth = CostWeights::default();
        let clean = CostFeatures {
            seq_pages: 10.0,
            ..CostFeatures::default()
        };
        let mut lines: Vec<SampleLine> = (0..16)
            .map(|_| synthetic_line(clean, &truth, 10.0))
            .collect();
        // A contradictory line (predicts 40 pages, observes none) whose
        // row estimate is off 10x: cardinality error, not unit cost.
        let mut bad = synthetic_line(
            CostFeatures {
                seq_pages: 40.0,
                ..CostFeatures::default()
            },
            &truth,
            100.0,
        );
        bad.obs_io = 0.0;
        bad.obs_rows = 10.0;
        assert!(!card_ok(&bad));
        lines.push(bad);
        let samples = vec![PlanSample {
            scenario: "synthetic".into(),
            lines,
            fixes: Vec::new(),
        }];
        let w = fit_weights(&samples);
        assert!(
            (w.seq_page - 1.0).abs() < 0.01,
            "seq_page {} dragged by a cardinality-drifted line",
            w.seq_page
        );
    }

    /// Deliberately mis-weighted parameters make the drift lints
    /// (CX001/CX002) fire on an optimized-and-executed plan where the
    /// calibrated weights stay quiet.
    #[test]
    fn drift_lints_fire_on_misweighted_params() {
        let mut setup = PaperSetup::new(MusicConfig {
            chains: 3,
            chain_len: 3,
            works_per_composer: 1,
            instruments_per_work: 2,
            instrument_pool: 12,
            harpsichord_fraction: 0.25,
            clustered: false,
            buffer_frames: 32,
            seed: 7,
        });
        let q = setup.fig3_gen(2);
        let methods = MethodRegistry::new();
        let sample = sample_plan(
            &mut setup.m.db,
            &setup.idx,
            &methods,
            &q,
            OptimizerConfig::never_push(),
            &CostParams::calibrated(),
            "test/music".into(),
        );
        let tol = DriftTolerance::default();
        let calibrated = sample.drift_report(&CostParams::calibrated().weights, true, tol);
        let misweighted = CostWeights {
            seq_page: 20.0,
            deref_page: 20.0,
            index_level: 20.0,
            index_leaf: 20.0,
            write_page: 20.0,
            eval: 20.0,
            method: 20.0,
        };
        let bad = sample.drift_report(&misweighted, true, tol);
        let warns = |r: &oorq_lint::LintReport| {
            r.diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Warn)
                .count()
        };
        assert!(
            bad.codes().contains("CX001") || bad.codes().contains("CX002"),
            "20x weights must trip the drift lints, got {:?}",
            bad.codes()
        );
        assert!(
            warns(&bad) > warns(&calibrated),
            "mis-weighted params must drift more than the snapshot \
             ({} vs {})",
            warns(&bad),
            warns(&calibrated)
        );
    }
}
