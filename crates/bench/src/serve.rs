//! The multi-session serving harness behind `reproduce serve` and
//! `reproduce serve-gate`.
//!
//! Replays a mixed corpus — the paper's music queries (Figure 3 and the
//! §4.5 push-join, with generation-bound variants) plus chain
//! join/closure queries — through concurrent [`oorq_serve::Session`]s
//! of one [`oorq_serve::Server`] per scenario family, and checks three
//! things:
//!
//! 1. **byte-identity** — every concurrent answer equals the
//!    single-session reference replay, rendered byte for byte;
//! 2. **amortization** — the plan cache absorbs repeated optimization
//!    (`serve-gate` pins the hit rate at [`GATE_HIT_RATE`]);
//! 3. **observability** — the `serve.*` counters and the request-latency
//!    histogram report coherent totals (p50/p99 land in the report).

use std::fmt::Write as _;
use std::sync::Mutex;

use oorq_datagen::{ChainConfig, ChainDb};
use oorq_exec::{ExecConfig, MethodRegistry};
use oorq_index::IndexSet;
use oorq_query::QueryGraph;
use oorq_serve::{Server, ServerConfig};
use oorq_storage::Value;

use crate::PaperSetup;

/// CI smoke parameters: enough traffic to exercise warm/cold paths
/// without dominating the suite.
pub const SMOKE_QUERIES: usize = 120;
/// CI smoke session count.
pub const SMOKE_SESSIONS: usize = 2;
/// Full-run (and gate) query count.
pub const GATE_QUERIES: usize = 1000;
/// Full-run (and gate) concurrent-session count.
pub const GATE_SESSIONS: usize = 4;
/// Minimum plan-cache hit rate `serve-gate` accepts.
pub const GATE_HIT_RATE: f64 = 0.9;

/// One scenario family: a server plus its distinct query mix.
struct Workload {
    name: &'static str,
    server: Server,
    queries: Vec<(String, QueryGraph)>,
}

fn server_config(threads: u32, memory_budget: u64) -> ServerConfig {
    ServerConfig {
        exec: ExecConfig {
            threads,
            memory_budget_pages: memory_budget,
            ..ExecConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// The paper's music database with its physical design, serving the
/// Figure 3 and §4.5 queries plus generation-bound variants.
fn music_workload(threads: u32, memory_budget: u64) -> Workload {
    let setup = PaperSetup::new(PaperSetup::paper_scale());
    let mut queries: Vec<(String, QueryGraph)> = vec![
        ("music/fig3".into(), setup.fig3()),
        ("music/pushjoin".into(), setup.pushjoin()),
    ];
    for g in [1i64, 2, 3, 4] {
        queries.push((format!("music/fig3-gen{g}"), setup.fig3_gen(g)));
    }
    let PaperSetup { m, idx, .. } = setup;
    Workload {
        name: "music",
        server: Server::new(
            m.db,
            idx,
            MethodRegistry::new(),
            server_config(threads, memory_budget),
        ),
        queries,
    }
}

/// A linear chain of joined relations, serving join-chain and
/// selective-tail closure queries at several bounds.
fn chain_workload(threads: u32, memory_budget: u64) -> Workload {
    let chain = ChainDb::generate(ChainConfig {
        relations: 3,
        rows: 120,
        domain: 16,
        seed: 11,
    });
    let mut queries: Vec<(String, QueryGraph)> = Vec::new();
    for l in [4i64, 8, 12] {
        queries.push((format!("chain/limit{l}"), chain.chain_query(l)));
    }
    for l in [2i64, 3, 5] {
        queries.push((format!("chain/tail{l}"), chain.selective_tail_query(l)));
    }
    Workload {
        name: "chain",
        server: Server::new(
            chain.db,
            IndexSet::new(),
            MethodRegistry::new(),
            server_config(threads, memory_budget),
        ),
        queries,
    }
}

/// Render an answer's rows for byte-comparison.
fn rendered(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

/// Per-workload tallies after the replay.
struct WorkloadStats {
    name: &'static str,
    queries_run: usize,
    distinct: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    p50_us: u64,
    p99_us: u64,
    errors: Vec<String>,
}

/// Replay one workload: a single-session reference pass over every
/// distinct query, then `sessions` concurrent sessions replaying the
/// mix round-robin until `total` answers are produced, each compared
/// byte-for-byte against the reference.
fn run_workload(w: Workload, total: usize, sessions: usize) -> WorkloadStats {
    let Workload {
        name,
        server,
        queries,
    } = w;
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let reference: Vec<Option<Vec<String>>> = {
        let mut s = server.session();
        queries
            .iter()
            .map(|(qname, q)| match s.execute(q) {
                Ok(a) => Some(rendered(&a.batch.rows)),
                Err(e) => {
                    errors
                        .lock()
                        .unwrap()
                        .push(format!("{qname}: reference replay failed: {e}"));
                    None
                }
            })
            .collect()
    };

    let per_session = total.div_ceil(sessions.max(1));
    std::thread::scope(|scope| {
        for sess in 0..sessions {
            let (server, queries, reference, errors) = (&server, &queries, &reference, &errors);
            scope.spawn(move || {
                let mut s = server.session();
                for i in 0..per_session {
                    let slot = i % queries.len();
                    let (qname, q) = &queries[slot];
                    let Some(want) = &reference[slot] else {
                        continue;
                    };
                    match s.execute(q) {
                        Ok(a) => {
                            if &rendered(&a.batch.rows) != want {
                                errors.lock().unwrap().push(format!(
                                    "{qname}: session {sess} diverged from the reference replay"
                                ));
                            }
                        }
                        Err(e) => {
                            errors
                                .lock()
                                .unwrap()
                                .push(format!("{qname}: session {sess} failed: {e}"));
                        }
                    }
                }
            });
        }
    });

    let snap = server.metrics().snapshot();
    let counter = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
    let wall = snap.histograms.get("serve.query.wall_ns");
    WorkloadStats {
        name,
        queries_run: per_session * sessions,
        distinct: queries.len(),
        hits: counter("serve.cache.hits"),
        misses: counter("serve.cache.misses"),
        evictions: counter("serve.cache.evictions"),
        invalidations: counter("serve.cache.invalidations"),
        p50_us: wall.map(|h| h.p50 / 1_000).unwrap_or(0),
        p99_us: wall.map(|h| h.p99 / 1_000).unwrap_or(0),
        errors: errors.into_inner().unwrap(),
    }
}

/// The serve replay: mixed corpus, concurrent sessions, byte-identity
/// against a single-session reference. Returns the report and the
/// overall plan-cache hit rate; `Err` carries the report when any
/// answer diverged or failed.
fn serve_run(
    total: usize,
    sessions: usize,
    threads: u32,
    memory_budget: u64,
) -> Result<(String, f64), String> {
    let split = total / 2;
    let stats = [
        run_workload(music_workload(threads, memory_budget), split, sessions),
        run_workload(
            chain_workload(threads, memory_budget),
            total - split,
            sessions,
        ),
    ];

    let mut out = String::new();
    let _ = writeln!(out, "-- serve: multi-session serving harness --");
    let _ = writeln!(
        out,
        "{} sessions per workload, {} concurrent queries + {} reference replays",
        sessions,
        stats.iter().map(|s| s.queries_run).sum::<usize>(),
        stats.iter().map(|s| s.distinct).sum::<usize>(),
    );
    let _ = writeln!(
        out,
        "| workload | distinct | queries | hits | misses | evict | inval | p50(us) | p99(us) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut errors: Vec<&String> = Vec::new();
    for s in &stats {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            s.name,
            s.distinct,
            s.queries_run,
            s.hits,
            s.misses,
            s.evictions,
            s.invalidations,
            s.p50_us,
            s.p99_us
        );
        hits += s.hits;
        misses += s.misses;
        errors.extend(&s.errors);
    }
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    let _ = writeln!(
        out,
        "plan-cache hit rate: {rate:.3} ({hits} hits / {misses} misses)"
    );

    if errors.is_empty() {
        let _ = writeln!(
            out,
            "byte-identity: OK — every concurrent answer matched the single-session replay"
        );
        Ok((out, rate))
    } else {
        let _ = writeln!(out, "byte-identity: FAILED ({} divergences)", errors.len());
        for e in errors.iter().take(10) {
            let _ = writeln!(out, "  {e}");
        }
        Err(out)
    }
}

/// `reproduce serve`: print the replay report; answer divergence is the
/// only failure.
pub fn serve_report(
    total: usize,
    sessions: usize,
    threads: u32,
    memory_budget: u64,
) -> Result<String, String> {
    serve_run(total, sessions, threads, memory_budget).map(|(report, _)| report)
}

/// `reproduce serve-gate`: the full-size replay, additionally pinning
/// the plan-cache hit rate at [`GATE_HIT_RATE`].
pub fn serve_gate() -> Result<String, String> {
    let (mut report, rate) = serve_run(GATE_QUERIES, GATE_SESSIONS, 0, 0)?;
    let _ = writeln!(
        report,
        "gate: hit rate {rate:.3} (minimum {GATE_HIT_RATE:.3})"
    );
    if rate < GATE_HIT_RATE {
        Err(report)
    } else {
        Ok(report)
    }
}
