//! `reproduce metrics <scenario>`: replay one scenario under an
//! always-on [`oorq_obs::MetricsRegistry`], then print the aggregated
//! series (log-bucketed percentiles), the EXPLAIN ANALYZE tree joining
//! predicted to observed figures per operator, and the Prometheus-style
//! text exposition.
//!
//! `reproduce metrics-gate` is the CI contract for the subsystem:
//!
//! 1. **Stable names** — the series a canonical workload interns must
//!    match `crates/bench/metrics_baseline.txt` exactly (two-way diff);
//!    renaming a metric breaks every dashboard scraping it, so a rename
//!    must show up as a deliberate baseline edit in review.
//! 2. **Disabled-path overhead** — detached handles are the always-on
//!    promise: a counter bump or histogram record against a disabled
//!    registry must stay under a hard per-op cap (one `Option` branch).
//! 3. **Enabled-path overhead** — the same fixed workload, metered
//!    versus unmetered, must not slow down beyond a generous factor.

use std::fmt::Write as _;
use std::time::Instant;

use oorq_analysis::{Analyzer, AnalyzerConfig};
use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{ChainConfig, ChainDb, MusicConfig};
use oorq_exec::{explain_analyze, ExecConfig, Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_obs::{CounterHandle, HistogramHandle, MetricsRegistry};
use oorq_query::QueryGraph;
use oorq_storage::{Database, DbStats};

use crate::scenarios::PaperSetup;

/// The scenarios `reproduce metrics` understands.
pub const METRICS_SCENARIOS: &[&str] = &["music", "pushjoin", "chain"];

/// Replays per `reproduce metrics` run — enough samples for the
/// histogram percentiles to mean something.
pub const METRICS_REPLAYS: usize = 5;

/// One metered optimize-and-execute replay's residue (the registry
/// itself accumulates across replays).
pub struct MeteredRun {
    /// Answer rows.
    pub rows: usize,
    /// Worker lanes the executor forked (0 = fully serial).
    pub lanes: usize,
    /// The rendered EXPLAIN ANALYZE tree for this replay.
    pub explain: String,
}

/// Optimize and execute one query with the registry attached to every
/// layer, and render EXPLAIN ANALYZE from the lowered physical plan.
#[allow(clippy::too_many_arguments)]
fn run_metered(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    config: OptimizerConfig,
    registry: &MetricsRegistry,
    threads: u32,
    budget: u64,
) -> Result<MeteredRun, String> {
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let mut opt =
        Optimizer::new(model, OptimizerConfig { threads, ..config }).with_metrics(registry);
    let plan = opt
        .optimize(q)
        .map_err(|e| format!("optimization failed: {e}"))?;
    let temp_fields = opt.model.temp_fields.clone();

    // The §11 sound bounds for the chosen plan, so EXPLAIN ANALYZE can
    // flag an observed counter escaping its interval.
    let analyzer = Analyzer {
        catalog: db.catalog(),
        physical: db.physical(),
        stats: &stats,
        params: CostParams::default(),
        config: AnalyzerConfig::default(),
    };
    let analysis = analyzer.analyze_with_temps(&plan.pt, temp_fields).ok();

    db.cold_cache();
    let mut ex = Executor::new(db, idx, methods)
        .with_config(ExecConfig {
            threads,
            memory_budget_pages: budget,
            ..ExecConfig::default()
        })
        .with_parallel(plan.parallel.clone())
        .with_metrics(registry.clone());
    let out = ex
        .run(&plan.pt)
        .map_err(|e| format!("execution failed: {e}"))?;
    let report = ex.report();
    let explain = ex
        .last_plan()
        .map(|p| explain_analyze(p, &plan.cost.breakdown, analysis.as_ref(), &report))
        .unwrap_or_default();
    Ok(MeteredRun {
        rows: out.rows.len(),
        lanes: report.workers.len(),
        explain,
    })
}

/// Run a named scenario `replays` times into one registry; returns the
/// last replay's residue.
pub fn replay_scenario(
    scenario: &str,
    registry: &MetricsRegistry,
    threads: u32,
    budget: u64,
    replays: usize,
) -> Result<MeteredRun, String> {
    match scenario {
        "music" | "pushjoin" => {
            let mut setup = PaperSetup::new(PaperSetup::paper_scale());
            let methods = MethodRegistry::new();
            let q = if scenario == "pushjoin" {
                setup.pushjoin()
            } else {
                setup.fig3()
            };
            replay_query(
                &mut setup.m.db,
                &setup.idx,
                &methods,
                &q,
                registry,
                threads,
                budget,
                replays,
            )
        }
        "chain" => {
            // The O(n²) nested-loop regime from the parallel corpus —
            // big enough that a worker budget actually forks lanes.
            let mut chain = ChainDb::generate(ChainConfig {
                relations: 2,
                rows: 1400,
                domain: 64,
                seed: 0x5eed,
            });
            let methods = MethodRegistry::new();
            let idx = IndexSet::new();
            let q = chain.chain_query(64);
            replay_query(
                &mut chain.db,
                &idx,
                &methods,
                &q,
                registry,
                threads,
                budget,
                replays,
            )
        }
        other => Err(format!(
            "unknown metrics scenario `{other}` (known: {})",
            METRICS_SCENARIOS.join(", ")
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn replay_query(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    registry: &MetricsRegistry,
    threads: u32,
    budget: u64,
    replays: usize,
) -> Result<MeteredRun, String> {
    let mut last = None;
    for _ in 0..replays.max(1) {
        last = Some(run_metered(
            db,
            idx,
            methods,
            q,
            OptimizerConfig::cost_controlled(),
            registry,
            threads,
            budget,
        )?);
    }
    Ok(last.expect("at least one replay"))
}

/// `reproduce metrics <scenario>`: the aggregated-series table, the
/// EXPLAIN ANALYZE tree, and the Prometheus exposition.
pub fn metrics_report(scenario: &str, threads: u32, budget: u64) -> Result<String, String> {
    let registry = MetricsRegistry::new();
    let run = replay_scenario(scenario, &registry, threads, budget, METRICS_REPLAYS)?;
    let mut out = format!(
        "=== Query metrics: {scenario} × {METRICS_REPLAYS} replays \
         (threads {threads}, breaker budget {budget} pages) ===\n"
    );
    let _ = writeln!(
        out,
        "answer rows: {}; worker lanes (last replay): {}",
        run.rows, run.lanes
    );
    out.push('\n');
    out.push_str(&registry.render_table());
    out.push('\n');
    out.push_str(&run.explain);
    out.push_str("\n### Prometheus exposition\n\n");
    out.push_str(&registry.render_prometheus());
    Ok(out)
}

/// The fixed workload behind the gate's name baseline and overhead
/// comparison: one serial, unbounded replay of a small music Figure-3
/// run (recursive, indexed, with a fixpoint — it interns every
/// optimizer, executor, fixpoint and storage series).
fn gate_workload(registry: &MetricsRegistry) -> Result<MeteredRun, String> {
    let mut setup = PaperSetup::new(MusicConfig {
        chains: 4,
        chain_len: 4,
        ..PaperSetup::paper_scale()
    });
    let methods = MethodRegistry::new();
    let q = setup.fig3();
    replay_query(&mut setup.m.db, &setup.idx, &methods, &q, registry, 0, 0, 1)
}

/// The checked-in stable-name baseline (regenerate with
/// `reproduce metrics-fit`).
const BASELINE: &str = include_str!("../metrics_baseline.txt");

/// Hard cap on one detached-handle probe. A detached bump is one
/// `Option` branch; 25 ns leaves an order of magnitude of headroom over
/// anything resembling a healthy build.
const DISABLED_NS_PER_OP_CAP: f64 = 25.0;

/// Enabled-path budget: metered workload wall ≤ this factor over the
/// unmetered one, plus fixed slack for timer noise on small workloads.
const ENABLED_FACTOR_CAP: f64 = 2.0;
const ENABLED_SLACK_MS: f64 = 50.0;

/// `reproduce metrics-fit`: print the canonical workload's interned
/// series, ready to check in as `crates/bench/metrics_baseline.txt`.
pub fn metrics_fit_report() -> Result<String, String> {
    let registry = MetricsRegistry::new();
    gate_workload(&registry)?;
    let mut out = String::from(
        "# Stable metric names interned by the canonical workload\n\
         # (small music fig3, serial, unbounded). Regenerate with\n\
         # `reproduce metrics-fit`; a diff here is a dashboard-breaking\n\
         # rename and must be deliberate.\n",
    );
    for name in registry.names() {
        let _ = writeln!(out, "{name}");
    }
    Ok(out)
}

/// `reproduce metrics-gate`: stable names + overhead caps.
pub fn metrics_gate() -> Result<String, String> {
    let mut out = String::from("=== Metrics gate: stable names and overhead caps ===\n");
    let mut bad = 0usize;

    // (1) Stable metric names: exact two-way diff against the baseline.
    let registry = MetricsRegistry::new();
    gate_workload(&registry)?;
    let got = registry.names();
    let want: Vec<&str> = BASELINE
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    for name in &want {
        if !got.iter().any(|g| g == name) {
            let _ = writeln!(out, "MISSING series `{name}` (in baseline, not interned)");
            bad += 1;
        }
    }
    for name in &got {
        if !want.contains(&name.as_str()) {
            let _ = writeln!(out, "UNKNOWN series `{name}` (interned, not in baseline)");
            bad += 1;
        }
    }
    let _ = writeln!(
        out,
        "stable names: {} series interned, {} in baseline",
        got.len(),
        want.len()
    );

    // (2) Disabled-path cost: detached handles against a hard ns/op cap.
    let counter = CounterHandle::default();
    let hist = HistogramHandle::default();
    let iters: u64 = 2_000_000;
    let t0 = Instant::now();
    for i in 0..iters {
        counter.add(std::hint::black_box(1));
        hist.record(std::hint::black_box(i));
    }
    let ns_per_op = t0.elapsed().as_nanos() as f64 / (iters * 2) as f64;
    let _ = writeln!(
        out,
        "disabled-path probe: {ns_per_op:.2} ns/op over {} ops (cap {DISABLED_NS_PER_OP_CAP})",
        iters * 2
    );
    if ns_per_op > DISABLED_NS_PER_OP_CAP {
        let _ = writeln!(out, "disabled-path cost exceeds the cap");
        bad += 1;
    }

    // (3) Enabled-path cost: metered vs unmetered fixed workload.
    let t0 = Instant::now();
    gate_workload(&MetricsRegistry::disabled())?;
    let off_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    gate_workload(&MetricsRegistry::new())?;
    let on_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cap_ms = off_ms * ENABLED_FACTOR_CAP + ENABLED_SLACK_MS;
    let _ = writeln!(
        out,
        "enabled-path workload: {on_ms:.1} ms metered vs {off_ms:.1} ms unmetered \
         (cap {cap_ms:.1} ms)"
    );
    if on_ms > cap_ms {
        let _ = writeln!(out, "metered workload exceeds the overhead cap");
        bad += 1;
    }

    let _ = writeln!(out, "{bad} violation(s)");
    if bad > 0 {
        Err(out)
    } else {
        Ok(out)
    }
}

/// A deterministic small-config EXPLAIN ANALYZE rendering, wall-time
/// scrubbed — the golden-test subject (`golden_explain_{music,chain}.txt`).
/// Everything except wall time is machine-independent: seeded data,
/// cold cache, serial execution.
pub fn golden_explain(scenario: &str) -> Result<String, String> {
    let registry = MetricsRegistry::disabled();
    let run = match scenario {
        "music" => {
            let mut setup = PaperSetup::new(MusicConfig {
                chains: 3,
                chain_len: 4,
                ..PaperSetup::paper_scale()
            });
            let methods = MethodRegistry::new();
            let q = setup.fig3();
            replay_query(
                &mut setup.m.db,
                &setup.idx,
                &methods,
                &q,
                &registry,
                0,
                0,
                1,
            )?
        }
        "chain" => {
            let mut chain = ChainDb::generate(ChainConfig {
                relations: 3,
                rows: 60,
                domain: 12,
                seed: 0x5eed,
            });
            let methods = MethodRegistry::new();
            let idx = IndexSet::new();
            let q = chain.chain_query(8);
            replay_query(&mut chain.db, &idx, &methods, &q, &registry, 0, 0, 1)?
        }
        other => return Err(format!("no golden for scenario `{other}`")),
    };
    Ok(scrub_wall(&run.explain))
}

/// Scrub wall-clock figures (`wall=12.3µs`, and the gate's `ms`
/// figures) out of an EXPLAIN ANALYZE rendering so deterministic parts
/// can be golden-tested across machines.
pub fn scrub_wall(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find("wall=") {
        let (head, tail) = rest.split_at(pos + "wall=".len());
        out.push_str(head);
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(tail.len());
        out.push('?');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_rejected() {
        let registry = MetricsRegistry::new();
        assert!(replay_scenario("no-such", &registry, 0, 0, 1).is_err());
    }

    /// Satellite: the EXPLAIN ANALYZE rendering is pinned for one music
    /// and one chain plan (wall times scrubbed; everything else — tree
    /// shape, observed counters, predictions — is deterministic).
    /// Regenerate by writing `golden_explain(scenario)` back to
    /// `crates/bench/golden_explain_<scenario>.txt` after a deliberate
    /// format or plan change.
    #[test]
    fn explain_analyze_matches_music_golden() {
        let got = golden_explain("music").expect("music golden runs");
        assert_eq!(got, include_str!("../golden_explain_music.txt"));
    }

    #[test]
    fn explain_analyze_matches_chain_golden() {
        let got = golden_explain("chain").expect("chain golden runs");
        assert_eq!(got, include_str!("../golden_explain_chain.txt"));
    }

    #[test]
    fn scrub_wall_erases_only_wall_figures() {
        let s = "#0 Fix  rows obs=3 wall=12.5µs\n#1 EJ wall=0.9µs est rows=4.0\n";
        assert_eq!(
            scrub_wall(s),
            "#0 Fix  rows obs=3 wall=?µs\n#1 EJ wall=?µs est rows=4.0\n"
        );
    }

    /// The tentpole integration check: a small metered replay interns
    /// series from every layer, and the per-query histograms carry one
    /// sample per replay.
    #[test]
    fn gate_workload_interns_every_layer() {
        let registry = MetricsRegistry::new();
        gate_workload(&registry).expect("workload runs");
        let names = registry.names();
        for expect in [
            "optimizer.queries",
            "optimizer.optimize_ns",
            "optimizer.candidates.enumerated",
            "exec.queries",
            "exec.query.wall_ns",
            "exec.fix.iterations",
            "storage.page_misses",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        assert_eq!(registry.counter("exec.queries").get(), 1);
        assert_eq!(registry.histogram("exec.query.wall_ns").count(), 1);
        assert_eq!(
            registry.counter("optimizer.candidates.enumerated").get(),
            registry.counter("optimizer.candidates.accepted").get()
                + registry.counter("optimizer.candidates.rejected").get()
                + registry.counter("optimizer.candidates.pruned").get()
                + registry.counter("optimizer.candidates.pruned_proven").get(),
            "every enumerated candidate lands in exactly one bucket"
        );
    }

    /// Satellite: worker-lane registries fork and merge back — under a
    /// real parallel run with a tight breaker budget, the registry sees
    /// every lane and the spill traffic.
    #[test]
    fn registry_merges_parallel_worker_lanes() {
        let registry = MetricsRegistry::new();
        let run = replay_scenario("chain", &registry, 4, 8, 1).expect("chain scenario runs");
        assert!(
            run.lanes > 0,
            "the chain big-join must fork worker lanes at 4 threads"
        );
        assert_eq!(
            registry.histogram("exec.worker.wall_ns").count() as usize,
            run.lanes,
            "one worker wall sample per lane, merged from the lane forks"
        );
        assert_eq!(
            registry.histogram("exec.worker.rows").count() as usize,
            run.lanes
        );
        assert!(
            registry.counter("storage.page_misses").get() > 0,
            "worker-lane buffer traffic lands in the shared storage series"
        );
    }
}
