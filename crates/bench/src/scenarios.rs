//! Standard experimental setups shared by the `reproduce` binary and the
//! Criterion benches.

use std::sync::Arc;

use oorq_core::{Optimized, Optimizer, OptimizerConfig};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{MusicConfig, MusicDb};
use oorq_exec::{ExecReport, Executor, MethodRegistry};
use oorq_index::{IndexSet, PathIndex, SelectionIndex};
use oorq_pt::{Pt, PtEnv};
use oorq_query::paper::{fig3_query, influencer_view, music_catalog, sec45_pushjoin_query};
use oorq_query::{Expr, NameRef, QArc, QueryGraph, SpjNode};
use oorq_storage::DbStats;

/// A music database with the paper's physical design (the
/// `works.instruments` path index and a selection index on names),
/// statistics, and built index structures.
pub struct PaperSetup {
    /// The generated database.
    pub m: MusicDb,
    /// Built index structures.
    pub idx: IndexSet,
    /// Collected statistics.
    pub stats: DbStats,
}

impl PaperSetup {
    /// Build a setup at the given configuration.
    pub fn new(cfg: MusicConfig) -> Self {
        let cat = Arc::new(music_catalog());
        let mut m = MusicDb::generate(cat, cfg);
        let mut idx = IndexSet::new();
        idx.add_path(PathIndex::build(
            &mut m.db,
            vec![
                (m.composer, m.works_attr),
                (m.composition, m.instruments_attr),
            ],
        ));
        idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
        let stats = DbStats::collect(&m.db);
        PaperSetup { m, idx, stats }
    }

    /// The default §4.6-scale configuration: 100 composers in chains of
    /// 10, 4 works each, 3 instruments per work — the regime of the
    /// paper's comprehensive example, where the pushed selection's path
    /// expression is expensive relative to its filtering power.
    pub fn paper_scale() -> MusicConfig {
        MusicConfig {
            chains: 10,
            chain_len: 10,
            works_per_composer: 4,
            instruments_per_work: 3,
            instrument_pool: 12,
            harpsichord_fraction: 0.25,
            clustered: false,
            buffer_frames: 32,
            seed: 1992,
        }
    }

    /// The Figure 3 query with the `Influencer` view expanded.
    pub fn fig3(&self) -> QueryGraph {
        let cat = self.m.db.catalog();
        let mut q = fig3_query(cat);
        influencer_view(cat).expand(&mut q, cat).unwrap();
        q
    }

    /// Figure 3 with a custom generation bound (so tiny databases can
    /// have non-empty answers).
    pub fn fig3_gen(&self, gen: i64) -> QueryGraph {
        let cat = self.m.db.catalog();
        let influencer = cat.relation_by_name("Influencer").expect("music schema");
        let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
        q.add_spj(
            NameRef::Derived("Answer".into()),
            SpjNode {
                inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
                pred: Expr::path("i", &["master", "works", "instruments", "name"])
                    .eq(Expr::text("harpsichord"))
                    .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
                out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
            },
        );
        influencer_view(cat).expand(&mut q, cat).unwrap();
        q
    }

    /// The §4.5 push-join query with the view expanded.
    pub fn pushjoin(&self) -> QueryGraph {
        let cat = self.m.db.catalog();
        let mut q = sec45_pushjoin_query(cat);
        influencer_view(cat).expand(&mut q, cat).unwrap();
        q
    }

    /// Optimize a query under the given configuration.
    pub fn optimize(&self, q: &QueryGraph, config: OptimizerConfig) -> Optimized {
        self.optimize_traced(q, config, oorq_obs::Recorder::disabled())
    }

    /// Optimize with a structured-tracing recorder attached (one span
    /// per §4 step, one `candidate` event per enumerated plan).
    pub fn optimize_traced(
        &self,
        q: &QueryGraph,
        config: OptimizerConfig,
        obs: oorq_obs::Recorder,
    ) -> Optimized {
        self.optimize_metered(q, config, obs, &oorq_obs::MetricsRegistry::disabled())
    }

    /// Optimize with both a recorder and an aggregating metrics registry
    /// attached (the registry accumulates across queries; the recorder
    /// traces one run).
    pub fn optimize_metered(
        &self,
        q: &QueryGraph,
        config: OptimizerConfig,
        obs: oorq_obs::Recorder,
        registry: &oorq_obs::MetricsRegistry,
    ) -> Optimized {
        let model = CostModel::new(
            self.m.db.catalog(),
            self.m.db.physical(),
            &self.stats,
            CostParams::default(),
        );
        Optimizer::new(model, config)
            .with_recorder(obs)
            .with_metrics(registry)
            .optimize(q)
            .expect("optimization must succeed")
    }

    /// Execute a plan cold-cache and report resources + answer size.
    pub fn execute(&mut self, pt: &Pt) -> (ExecReport, usize) {
        self.execute_traced(pt, oorq_obs::Recorder::disabled())
    }

    /// Execute with a structured-tracing recorder attached (per-operator
    /// spans, fixpoint-iteration events, buffer-manager page events).
    pub fn execute_traced(&mut self, pt: &Pt, obs: oorq_obs::Recorder) -> (ExecReport, usize) {
        self.execute_metered(pt, obs, &oorq_obs::MetricsRegistry::disabled())
    }

    /// Execute with both a recorder and a metrics registry attached
    /// (per-query snapshots land in the registry's aggregated series).
    pub fn execute_metered(
        &mut self,
        pt: &Pt,
        obs: oorq_obs::Recorder,
        registry: &oorq_obs::MetricsRegistry,
    ) -> (ExecReport, usize) {
        let methods = MethodRegistry::new();
        self.m.db.cold_cache();
        let mut ex = Executor::new(&mut self.m.db, &self.idx, &methods)
            .with_recorder(obs)
            .with_metrics(registry.clone());
        let out = ex.run(pt).expect("execution must succeed");
        (ex.report(), out.len())
    }

    /// A display environment for plans over this setup.
    pub fn env(&self) -> PtEnv<'_> {
        PtEnv {
            catalog: self.m.db.catalog(),
            physical: self.m.db.physical(),
            temp_fields: [("Influencer".to_string(), self.m.influencer_fields())]
                .into_iter()
                .collect(),
        }
    }
}
