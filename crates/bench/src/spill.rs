//! The spill calibration harness: does the residency model place the
//! spill cliff where the executor actually falls off it?
//!
//! Every other harness runs under an unbounded breaker budget, where
//! pipeline-breaker temporaries (fixpoint accumulator/delta, the
//! materialized nested-loop inner) stay resident and their re-reads are
//! free. Under `ExecConfig::memory_budget_pages` the buffer manager
//! caps resident breaker pages and LRU-spills the rest, so the same
//! plan's physical page reads jump once the breaker footprint crosses
//! the budget. The cost model mirrors the cliff through
//! `CostParams::memory_budget_pages` (see
//! `CostParams::breaker_frames`): breaker re-reads cost zero while the
//! footprint fits and full page fetches once it does not.
//!
//! This module sweeps a transitive-closure workload
//! ([`oorq_datagen::ClosureDb`] — quadratic accumulator over a linear
//! chain) across the cliff at a fixed budget, executes each point
//! under the budget, feeds the observed delta curve back as a
//! [`FixProfile`] (the same loop as `crate::feedback`, so cardinality
//! error does not masquerade as residency error), re-estimates under
//! the calibrated weights *with* the budget, and compares predicted
//! against observed physical page reads on each side. `reproduce
//! spill-gate` fails when either side's median relative error regresses
//! beyond the checked-in `crates/bench/spill_baseline.txt`, exceeds the
//! absolute [`MAX_SIDE_ERR`] cap, or the model mis-places any point
//! relative to the cliff.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use oorq_core::{Optimizer, OptimizerConfig};
use oorq_cost::{CostParams, FixProfile};
use oorq_datagen::{ClosureConfig, ClosureDb};
use oorq_exec::{ExecConfig, Executor, MethodRegistry};
use oorq_index::IndexSet;
use oorq_lint::{lint_breaker_budget, lint_spill_drift, DriftTolerance};

/// The sweep's breaker memory budget, in pages. Small enough that the
/// closure accumulator crosses it mid-sweep (128 closure rows per page
/// at the default 4 KiB page; n·(n−1)/2 rows ≈ the budget near n=46),
/// large enough that the resident side is not degenerate.
pub const SPILL_BUDGET_PAGES: u64 = 8;

/// Chain sizes swept across the budget cliff: the first half's
/// accumulators fit in [`SPILL_BUDGET_PAGES`], the second half's spill.
const SWEEP: &[u32] = &[16, 24, 32, 40, 56, 72, 96, 128];

/// One sweep point: a closure workload executed under the budget and
/// re-estimated under the calibrated residency model with the same
/// budget.
#[derive(Debug, Clone)]
pub struct SpillPoint {
    /// Chain length (nodes) of the workload.
    pub nodes: u32,
    /// Closure rows produced (sanity: must equal n·(n−1)/2).
    pub rows: u64,
    /// Largest modeled breaker write footprint in the plan, in pages.
    pub footprint_pages: f64,
    /// Model's side of the cliff: footprint exceeds the budget.
    pub pred_spilled: bool,
    /// Executor's side of the cliff: the buffer manager spilled.
    pub obs_spilled: bool,
    /// Predicted physical page reads (read-side features dotted with
    /// the calibrated weights; writes excluded — the gate metric is
    /// reads, where the cliff shows).
    pub pred_reads: f64,
    /// Observed physical page reads (data + index pages).
    pub obs_reads: f64,
    /// Budget-exhaustion evictions the buffer manager recorded.
    pub spill_evictions: u64,
    /// `PX010` warnings from [`lint_breaker_budget`] on the re-estimate.
    pub budget_warns: usize,
    /// `CX007` warnings from [`lint_spill_drift`] against the run.
    pub drift_warns: usize,
}

impl SpillPoint {
    /// Relative page-read error, floored at one page of denominator.
    pub fn rel_err(&self) -> f64 {
        (self.pred_reads - self.obs_reads).abs() / self.obs_reads.max(1.0)
    }
}

/// Run one closure workload under the budget and join the model's
/// re-estimate against the executor's counters.
fn spill_point(nodes: u32, budget: u64) -> SpillPoint {
    let scope = format!("spill{nodes}");
    let mut c = ClosureDb::generate(ClosureConfig { nodes });
    let q = c.closure_query();
    // The model borrows schema and statistics for its whole life, and
    // this harness (unlike `calibrate`) re-estimates *after* the run —
    // so borrow clones, keeping `c.db` free for the executor.
    let catalog = c.db.catalog().clone();
    let physical = c.db.physical().clone();
    let stats = oorq_storage::DbStats::collect(&c.db);
    let model = oorq_cost::CostModel::new(&catalog, &physical, &stats, CostParams::default());
    let mut opt = Optimizer::new(model, OptimizerConfig::cost_controlled());
    let plan = opt
        .optimize(&q)
        .unwrap_or_else(|e| panic!("{scope}: optimization failed: {e}"));

    // Execute under the breaker budget, cold.
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    c.db.cold_cache();
    let mut ex = Executor::new(&mut c.db, &idx, &methods).with_config(ExecConfig {
        memory_budget_pages: budget,
        ..ExecConfig::default()
    });
    let out = ex
        .run(&plan.pt)
        .unwrap_or_else(|e| panic!("{scope}: execution failed: {e}"));
    let report = ex.report();

    // Feed the observed delta curve back as an exact-scope profile so
    // the re-estimate's residual error is residency error, not
    // fixpoint-cardinality error.
    let mut res_model = opt.model;
    let mut res_params = CostParams {
        residency: true,
        memory_budget_pages: budget,
        profile_scope: scope.clone(),
        ..CostParams::calibrated()
    };
    res_model.params = res_params.clone();
    let depth = res_model.fix_iterations();
    let obs_curves: BTreeMap<usize, Vec<u64>> = report
        .fix_deltas
        .iter()
        .map(|f| (f.pt_node, f.deltas.clone()))
        .collect();
    for n in &plan.trace.final_breakdown {
        let (Some(node), Some(curve)) = (n.node, n.fix.as_ref()) else {
            continue;
        };
        let Some(observed) = obs_curves.get(&node) else {
            continue;
        };
        let Some(p) = FixProfile::fit(observed, curve.base_rows, depth) else {
            continue;
        };
        res_params
            .fix_profiles
            .insert(format!("{scope}/{}", curve.temp), p);
    }
    res_model.params = res_params.clone();
    let res_cost = res_model
        .cost(&plan.pt)
        .unwrap_or_else(|e| panic!("{scope}: re-estimation failed: {e}"));

    let w = &res_params.weights;
    let mut pred_reads = 0.0;
    let mut footprint_pages: f64 = 0.0;
    for l in &res_cost.breakdown {
        pred_reads += l.feat.seq_pages * w.seq_page
            + l.feat.deref_pages * w.deref_page
            + l.feat.index_level_ios * w.index_level
            + l.feat.index_leaf_ios * w.index_leaf;
        footprint_pages = footprint_pages.max(l.feat.write_pages);
    }

    let budget_warns = lint_breaker_budget(&res_cost.breakdown, budget)
        .diagnostics
        .len();
    let drift_warns = lint_spill_drift(
        &res_cost.breakdown,
        budget,
        report.io.spill_evictions as f64,
        DriftTolerance::default(),
    )
    .diagnostics
    .len();

    let n = nodes as u64;
    let expected = n * (n - 1) / 2;
    assert_eq!(
        out.rows.len() as u64,
        expected,
        "{scope}: closure produced {} rows, expected {expected}",
        out.rows.len()
    );

    SpillPoint {
        nodes,
        rows: out.rows.len() as u64,
        footprint_pages,
        pred_spilled: footprint_pages > budget as f64,
        obs_spilled: report.io.spill_evictions > 0,
        pred_reads,
        obs_reads: (report.io.page_reads + report.io.index_reads) as f64,
        spill_evictions: report.io.spill_evictions,
        budget_warns,
        drift_warns,
    }
}

/// Sweep every [`SWEEP`] size at the given budget.
pub fn spill_sweep(budget: u64) -> Vec<SpillPoint> {
    SWEEP.iter().map(|&n| spill_point(n, budget)).collect()
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Per-side medians of a sweep, split by the *observed* cliff side.
pub struct SpillStats {
    /// Points whose run stayed resident / spilled.
    pub n_resident: usize,
    /// See [`SpillStats::n_resident`].
    pub n_spilled: usize,
    /// Median relative page-read error over the resident side.
    pub resident_med_err: f64,
    /// Median relative page-read error over the spilled side.
    pub spilled_med_err: f64,
    /// Points where the model's cliff side disagrees with the run's.
    pub misplaced: usize,
}

/// Split a sweep by observed side and take per-side error medians.
pub fn spill_stats(points: &[SpillPoint]) -> SpillStats {
    let (spilled, resident): (Vec<_>, Vec<_>) = points.iter().partition(|p| p.obs_spilled);
    SpillStats {
        n_resident: resident.len(),
        n_spilled: spilled.len(),
        resident_med_err: median(resident.iter().map(|p| p.rel_err()).collect()),
        spilled_med_err: median(spilled.iter().map(|p| p.rel_err()).collect()),
        misplaced: points
            .iter()
            .filter(|p| p.pred_spilled != p.obs_spilled)
            .count(),
    }
}

fn render_sweep(out: &mut String, points: &[SpillPoint], budget: u64) {
    let _ = writeln!(
        out,
        "transitive closure over a linear chain, breaker budget {budget} pages"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>6} {:>6} {:>10} {:>10} {:>8} {:>7} {:>6} {:>6}",
        "nodes",
        "rows",
        "footprint",
        "pred",
        "obs",
        "pred_rd",
        "obs_rd",
        "rel_err",
        "spills",
        "PX010",
        "CX007"
    );
    for p in points {
        let side = |s: bool| if s { "spill" } else { "fit" };
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>10.1} {:>6} {:>6} {:>10.1} {:>10.1} {:>8.3} {:>7} {:>6} {:>6}",
            p.nodes,
            p.rows,
            p.footprint_pages,
            side(p.pred_spilled),
            side(p.obs_spilled),
            p.pred_reads,
            p.obs_reads,
            p.rel_err(),
            p.spill_evictions,
            p.budget_warns,
            p.drift_warns,
        );
    }
}

fn render_stats(out: &mut String, st: &SpillStats) {
    let _ = writeln!(
        out,
        "resident side: {} points, median relative page-read error {:.3}",
        st.n_resident, st.resident_med_err
    );
    let _ = writeln!(
        out,
        "spilled side:  {} points, median relative page-read error {:.3}",
        st.n_spilled, st.spilled_med_err
    );
    let _ = writeln!(out, "cliff-side mispredictions: {}", st.misplaced);
}

/// The `reproduce spill` section: sweep, table, per-side medians.
pub fn spill_report(budget: u64) -> String {
    let mut out = String::from("=== Spill calibration: predicted vs observed page reads ===\n");
    let points = spill_sweep(budget);
    render_sweep(&mut out, &points, budget);
    render_stats(&mut out, &spill_stats(&points));
    out
}

/// The checked-in spill baseline (regenerate by pasting the
/// `reproduce spill` medians).
const BASELINE: &str = include_str!("../spill_baseline.txt");

/// Absolute slack on the baseline error figures (deterministic sweep,
/// float rounding only).
pub const GATE_TOLERANCE: f64 = 0.05;

/// Hard cap on either side's median relative page-read error — the
/// reproduction target the residency model must hold, independent of
/// the baseline.
pub const MAX_SIDE_ERR: f64 = 0.15;

/// The `reproduce spill-gate` section: re-run the sweep and fail
/// (`Err`, nonzero exit) when either side's median page-read error
/// regresses beyond the checked-in baseline, exceeds [`MAX_SIDE_ERR`],
/// when the model mis-places any point relative to the cliff, or the
/// sweep no longer crosses it.
pub fn spill_gate() -> Result<String, String> {
    let points = spill_sweep(SPILL_BUDGET_PAGES);
    let st = spill_stats(&points);

    let mut baseline: BTreeMap<String, f64> = Default::default();
    for line in BASELINE.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, v) = line
            .split_once('=')
            .ok_or_else(|| format!("spill_baseline.txt: bad line `{line}`"))?;
        baseline.insert(
            key.trim().to_string(),
            v.trim()
                .parse()
                .map_err(|e| format!("spill_baseline.txt: {e}"))?,
        );
    }

    let mut out = String::from("=== Spill regression gate ===\n");
    render_sweep(&mut out, &points, SPILL_BUDGET_PAGES);
    render_stats(&mut out, &st);

    let mut failures = Vec::new();
    if st.n_resident == 0 || st.n_spilled == 0 {
        failures.push(format!(
            "sweep no longer crosses the cliff ({} resident / {} spilled points)",
            st.n_resident, st.n_spilled
        ));
    }
    if st.misplaced > 0 {
        failures.push(format!(
            "model places {} point(s) on the wrong side of the spill cliff",
            st.misplaced
        ));
    }
    for (side, err) in [
        ("resident", st.resident_med_err),
        ("spilled", st.spilled_med_err),
    ] {
        if err > MAX_SIDE_ERR {
            failures.push(format!(
                "{side}-side median page-read error {err:.3} exceeds the {MAX_SIDE_ERR:.2} cap"
            ));
        }
        let key = format!("{side}_med_rel_err");
        if let Some(&base) = baseline.get(&key) {
            if err > base + GATE_TOLERANCE {
                failures.push(format!(
                    "{side}-side median page-read error {err:.3} exceeds baseline {base:.3} + {GATE_TOLERANCE:.2}"
                ));
            }
        }
    }
    let drift: usize = points.iter().map(|p| p.drift_warns).sum();
    if drift > 0 {
        failures.push(format!(
            "CX007 spill-drift fired on {drift} point(s): modeled cliff side disagrees with observed spill evictions"
        ));
    }

    if failures.is_empty() {
        out.push_str("spill gate OK\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}\nspill gate FAILED:\n{}",
            failures.join("\n")
        ))
    }
}
