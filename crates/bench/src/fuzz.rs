//! A seeded plan-mutation soundness fuzzer.
//!
//! Starting from the optimizer's chosen plans for the music corpus, the
//! fuzzer applies random local mutations (access-method and
//! join-algorithm toggles, predicate rewrites, projection edits,
//! wrapper insertion) and demands, for every mutant, one of exactly two
//! outcomes:
//!
//! - the static verifier or the analyzer *rejects* the plan
//!   (lint errors, or a typing error from [`oorq_analysis::Analyzer`]);
//! - the plan executes without panicking, and every observed counter
//!   lies inside the analyzer's static interval.
//!
//! Anything else — a panic, or an observed counter escaping its bound —
//! is a soundness bug and fails the run. The walk is [`Prng`]-seeded
//! and fully deterministic: a failing `(seed, iteration)` pair is a
//! reproducible bug report. CI runs a fixed smoke (`reproduce fuzz`);
//! longer sweeps are one flag away (`reproduce fuzz 2000 <seed>`).

use std::fmt::Write as _;

use oorq_analysis::{check_observed, Analyzer, ObservedFix, ObservedOp};
use oorq_core::OptimizerConfig;
use oorq_exec::{Executor, MethodRegistry};
use oorq_prng::Prng;
use oorq_pt::{AccessMethod, JoinAlgo, Pt, PtEnv};
use oorq_query::{Expr, Literal};
use oorq_storage::{DbStats, IndexId};

use crate::reports::fig7_config;
use crate::scenarios::PaperSetup;

/// Outcome tally of one fuzz run.
#[derive(Debug, Default)]
pub struct FuzzStats {
    /// Mutants rejected by the static verifier.
    pub rejected_lint: usize,
    /// Mutants the analyzer could not type (rejected pre-execution).
    pub rejected_analysis: usize,
    /// Mutants that executed and passed every bound check.
    pub executed_ok: usize,
    /// Mutants that executed but failed at runtime with a clean error
    /// (e.g. a diverging fixpoint hitting its iteration cap).
    pub exec_error: usize,
    /// Soundness violations (bound escapes) — must stay zero.
    pub violations: usize,
}

/// Default CI smoke parameters.
pub const SMOKE_ITERS: u64 = 200;
/// See [`SMOKE_ITERS`].
pub const SMOKE_SEED: u64 = 0x0f52_a11d_0000_0007;

/// Run `iters` seeded mutations; returns the report, or an error
/// describing the first soundness violation.
pub fn fuzz_report(iters: u64, seed: u64) -> Result<String, String> {
    let mut setup = PaperSetup::new(fig7_config());
    let methods = MethodRegistry::new();
    let base: Vec<Pt> = {
        let fig3 = setup.fig3();
        let push = setup.pushjoin();
        vec![
            setup.optimize(&fig3, OptimizerConfig::never_push()).pt,
            setup
                .optimize(&fig3, OptimizerConfig::deductive_heuristic())
                .pt,
            setup.optimize(&push, OptimizerConfig::never_push()).pt,
        ]
    };
    let index_ids: Vec<IndexId> = setup
        .m
        .db
        .physical()
        .indexes()
        .iter()
        .map(|d| d.id)
        .collect();
    let mut rng = Prng::new(seed);
    let mut stats = FuzzStats::default();
    let mut out =
        format!("=== Plan-mutation soundness fuzz ({iters} iterations, seed {seed:#x}) ===\n");

    for i in 0..iters {
        let pt = &base[rng.index(base.len())];
        let target = rng.index(pt.size());
        let kind = rng.range_u32(0, 8);
        let mutant = {
            let mut counter = 0usize;
            mutate(pt, &mut counter, target, kind, &mut rng, &index_ids)
        };

        // Scope the immutable borrows (lint env, stats, analyzer) so the
        // executor can take the store mutably afterwards.
        let analysis = {
            let env = PtEnv {
                catalog: setup.m.db.catalog(),
                physical: setup.m.db.physical(),
                temp_fields: Default::default(),
            };
            if !oorq_lint::verify_pt(&env, &mutant).is_clean() {
                stats.rejected_lint += 1;
                continue;
            }
            let db_stats = DbStats::collect(&setup.m.db);
            let analyzer = Analyzer::new(
                setup.m.db.catalog(),
                setup.m.db.physical(),
                &db_stats,
                Default::default(),
            );
            match analyzer.analyze(&mutant) {
                Ok(a) => a,
                Err(_) => {
                    stats.rejected_analysis += 1;
                    continue;
                }
            }
        };

        setup.m.db.cold_cache();
        let mut ex = Executor::new(&mut setup.m.db, &setup.idx, &methods);
        if ex.run(&mutant).is_err() {
            stats.exec_error += 1;
            continue;
        }
        let report = ex.report();
        let ops: Vec<ObservedOp> = report
            .ops
            .iter()
            .map(|o| ObservedOp {
                pt_node: o.pt_node,
                label: o.label.clone(),
                rows_out: o.rows_out,
                page_reads: o.page_reads,
                page_hits: o.page_hits,
                index_reads: o.index_reads,
                page_writes: o.page_writes,
            })
            .collect();
        let fixes: Vec<ObservedFix> = report
            .fix_deltas
            .iter()
            .map(|c| ObservedFix {
                pt_node: c.pt_node,
                iterations: (c.deltas.len() as u64).saturating_sub(1),
            })
            .collect();
        let check = check_observed(&analysis, &ops, &fixes);
        if check.is_clean() {
            stats.executed_ok += 1;
        } else {
            // A violation aborts the run; the tally stays at zero in
            // every report the caller ever prints.
            return Err(format!(
                "{out}\nsoundness violation at iteration {i} (seed {seed:#x}, mutation kind \
                 {kind}, node {target}):\n{}",
                check.render()
            ));
        }
    }

    let _ = writeln!(
        out,
        "rejected by lint: {}\nrejected by analysis: {}\nexecuted within bounds: {}\nclean \
         runtime errors: {}\nsoundness violations: {}",
        stats.rejected_lint,
        stats.rejected_analysis,
        stats.executed_ok,
        stats.exec_error,
        stats.violations
    );
    let _ = writeln!(
        out,
        "(longer sweeps: `reproduce fuzz <iterations> <seed>`; a failure reports its \
         reproducible seed/iteration pair)"
    );
    Ok(out)
}

/// Rebuild the tree, applying mutation `kind` at pre-order `target`.
fn mutate(
    pt: &Pt,
    counter: &mut usize,
    target: usize,
    kind: u32,
    rng: &mut Prng,
    index_ids: &[IndexId],
) -> Pt {
    let my = *counter;
    *counter += 1;
    if my == target {
        if let Some(m) = mutate_here(pt, kind, rng, index_ids) {
            return m;
        }
    }
    match pt {
        Pt::Entity { .. } | Pt::Temp { .. } => pt.clone(),
        Pt::Sel {
            pred,
            method,
            input,
        } => Pt::Sel {
            pred: pred.clone(),
            method: *method,
            input: Box::new(mutate(input, counter, target, kind, rng, index_ids)),
        },
        Pt::Proj { cols, input } => Pt::Proj {
            cols: cols.clone(),
            input: Box::new(mutate(input, counter, target, kind, rng, index_ids)),
        },
        Pt::IJ {
            on,
            step,
            out,
            input,
            target: tgt,
        } => Pt::IJ {
            on: on.clone(),
            step: step.clone(),
            out: out.clone(),
            input: Box::new(mutate(input, counter, target, kind, rng, index_ids)),
            target: Box::new(mutate(tgt, counter, target, kind, rng, index_ids)),
        },
        Pt::PIJ {
            index,
            on,
            outs,
            input,
            targets,
        } => Pt::PIJ {
            index: *index,
            on: on.clone(),
            outs: outs.clone(),
            input: Box::new(mutate(input, counter, target, kind, rng, index_ids)),
            targets: targets
                .iter()
                .map(|t| mutate(t, counter, target, kind, rng, index_ids))
                .collect(),
        },
        Pt::EJ {
            pred,
            algo,
            left,
            right,
        } => Pt::EJ {
            pred: pred.clone(),
            algo: *algo,
            left: Box::new(mutate(left, counter, target, kind, rng, index_ids)),
            right: Box::new(mutate(right, counter, target, kind, rng, index_ids)),
        },
        Pt::Union { left, right } => Pt::Union {
            left: Box::new(mutate(left, counter, target, kind, rng, index_ids)),
            right: Box::new(mutate(right, counter, target, kind, rng, index_ids)),
        },
        Pt::Fix { temp, body } => Pt::Fix {
            temp: temp.clone(),
            body: Box::new(mutate(body, counter, target, kind, rng, index_ids)),
        },
    }
}

/// The mutation menu; `None` when the kind does not apply to this node
/// (the iteration then executes the unmutated plan, which must also
/// stay inside its bounds).
fn mutate_here(pt: &Pt, kind: u32, rng: &mut Prng, index_ids: &[IndexId]) -> Option<Pt> {
    match (kind, pt) {
        // Toggle a selection's access method.
        (
            0,
            Pt::Sel {
                pred,
                method,
                input,
            },
        ) => {
            let method = match method {
                AccessMethod::Scan if !index_ids.is_empty() => {
                    AccessMethod::Index(index_ids[rng.index(index_ids.len())])
                }
                AccessMethod::Scan => return None,
                AccessMethod::Index(_) => AccessMethod::Scan,
            };
            Some(Pt::Sel {
                pred: pred.clone(),
                method,
                input: input.clone(),
            })
        }
        // Toggle a join's algorithm.
        (
            1,
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            },
        ) => {
            let algo = match algo {
                JoinAlgo::NestedLoop if !index_ids.is_empty() => {
                    JoinAlgo::IndexJoin(index_ids[rng.index(index_ids.len())])
                }
                JoinAlgo::NestedLoop => return None,
                JoinAlgo::IndexJoin(_) => JoinAlgo::NestedLoop,
            };
            Some(Pt::EJ {
                pred: pred.clone(),
                algo,
                left: left.clone(),
                right: right.clone(),
            })
        }
        // Drop a selection's predicate.
        (2, Pt::Sel { method, input, .. }) => Some(Pt::Sel {
            pred: Expr::True,
            method: *method,
            input: input.clone(),
        }),
        // Swap a join's operands.
        (
            3,
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            },
        ) => Some(Pt::EJ {
            pred: pred.clone(),
            algo: *algo,
            left: right.clone(),
            right: left.clone(),
        }),
        // Drop a projection column.
        (4, Pt::Proj { cols, input }) if cols.len() > 1 => {
            let mut cols = cols.clone();
            cols.remove(rng.index(cols.len()));
            Some(Pt::Proj {
                cols,
                input: input.clone(),
            })
        }
        // Rename a projection column (breaks consumers; lint's job).
        (5, Pt::Proj { cols, input }) if !cols.is_empty() => {
            let mut cols = cols.clone();
            let i = rng.index(cols.len());
            cols[i].0 = format!("fz_{}", rng.range_u32(0, 1 << 16));
            Some(Pt::Proj {
                cols,
                input: input.clone(),
            })
        }
        // Wrap the node in a pass-through selection.
        (6, _) => Some(Pt::Sel {
            pred: Expr::True,
            method: AccessMethod::Scan,
            input: Box::new(pt.clone()),
        }),
        // Perturb the integer literals of a selection predicate.
        (
            7,
            Pt::Sel {
                pred,
                method,
                input,
            },
        ) => {
            let delta = rng.range_i64(-3, 4);
            let pred = pred.map_leaves(&mut |e| match e {
                Expr::Lit(Literal::Int(v)) => Some(Expr::Lit(Literal::Int(v + delta))),
                _ => None,
            });
            Some(Pt::Sel {
                pred,
                method: *method,
                input: input.clone(),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short seeded run must complete with zero soundness violations
    /// and classify every iteration. (CI runs the longer smoke via
    /// `reproduce fuzz`.)
    #[test]
    fn fuzz_short_run_is_sound() {
        let out = fuzz_report(25, SMOKE_SEED).expect("no soundness violations");
        assert!(out.contains("soundness violations: 0"), "{out}");
        // Every iteration lands in exactly one bucket.
        let count = |prefix: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("missing `{prefix}` in:\n{out}"))
        };
        assert_eq!(
            count("rejected by lint:")
                + count("rejected by analysis:")
                + count("executed within bounds:")
                + count("clean runtime errors:"),
            25
        );
    }
}
