//! E8 (§4.5): pushing a very selective join through recursion — the
//! transformation this paper is the first to explore.

use oorq_bench::harness::Group;
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn main() {
    let mut group = Group::new("push_join");
    group.sample_size(10);
    let cfg = MusicConfig {
        chains: 12,
        chain_len: 8,
        ..PaperSetup::paper_scale()
    };

    {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.pushjoin();
        let plan = setup.optimize(&q, OptimizerConfig::never_push());
        group.bench_function("execute_unpushed", || setup.execute(&plan.pt));
    }
    {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.pushjoin();
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        group.bench_function("execute_pushed_semijoin", || setup.execute(&plan.pt));
    }
    group.finish();
}
