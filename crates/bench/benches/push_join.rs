//! E8 (§4.5): pushing a very selective join through recursion — the
//! transformation this paper is the first to explore.

use criterion::{criterion_group, criterion_main, Criterion};
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_join");
    group.sample_size(10);
    let cfg = MusicConfig { chains: 12, chain_len: 8, ..PaperSetup::paper_scale() };

    group.bench_function("execute_unpushed", |b| {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.pushjoin();
        let plan = setup.optimize(&q, OptimizerConfig::never_push());
        b.iter(|| setup.execute(&plan.pt));
    });
    group.bench_function("execute_pushed_semijoin", |b| {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.pushjoin();
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        b.iter(|| setup.execute(&plan.pt));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
