//! E10: join-enumeration strategies (exhaustive \[KZ88\] vs Selinger DP vs
//! greedy) — optimization time as the join count grows.

use oorq_bench::harness::Group;
use oorq_core::{Optimizer, OptimizerConfig, SpjStrategy};
use oorq_cost::{CostModel, CostParams};
use oorq_datagen::{ChainConfig, ChainDb};
use oorq_storage::DbStats;

fn main() {
    let mut group = Group::new("strategies");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let chain = ChainDb::generate(ChainConfig {
            relations: k,
            rows: 100,
            ..Default::default()
        });
        let stats = DbStats::collect(&chain.db);
        let q = chain.chain_query(25);
        for (name, strategy) in [
            ("exhaustive", SpjStrategy::Exhaustive),
            ("dp", SpjStrategy::Dp),
            ("greedy", SpjStrategy::Greedy),
        ] {
            group.bench_function(&format!("{name}/{k}"), || {
                let model = CostModel::new(
                    chain.db.catalog(),
                    chain.db.physical(),
                    &stats,
                    CostParams::default(),
                );
                Optimizer::new(
                    model,
                    OptimizerConfig {
                        spj_strategy: strategy,
                        rand: None,
                        ..Default::default()
                    },
                )
                .optimize(&q)
                .expect("optimizes")
            });
        }
    }
    group.finish();
}
