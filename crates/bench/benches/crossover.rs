//! E9: the push/no-push crossover — executing both plans at the extreme
//! selectivities shows why the decision needs a cost model.

use oorq_bench::harness::Group;
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn main() {
    let mut group = Group::new("crossover");
    group.sample_size(10);
    for fraction in [0.05f64, 0.9] {
        let cfg = MusicConfig {
            chains: 8,
            chain_len: 8,
            harpsichord_fraction: fraction,
            ..PaperSetup::paper_scale()
        };
        for (name, config) in [
            ("unpushed", OptimizerConfig::never_push()),
            ("pushed", OptimizerConfig::deductive_heuristic()),
        ] {
            let mut setup = PaperSetup::new(cfg.clone());
            let q = setup.fig3_gen(3);
            let plan = setup.optimize(&q, config.clone());
            group.bench_function(&format!("{name}/{fraction}"), || setup.execute(&plan.pt));
        }
    }
    group.finish();
}
