//! E9: the push/no-push crossover — executing both plans at the extreme
//! selectivities shows why the decision needs a cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    for fraction in [0.05f64, 0.9] {
        let cfg = MusicConfig {
            chains: 8,
            chain_len: 8,
            harpsichord_fraction: fraction,
            ..PaperSetup::paper_scale()
        };
        for (name, config) in [
            ("unpushed", OptimizerConfig::never_push()),
            ("pushed", OptimizerConfig::deductive_heuristic()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, fraction),
                &fraction,
                |b, _| {
                    let mut setup = PaperSetup::new(cfg.clone());
                    let q = setup.fig3_gen(3);
                    let plan = setup.optimize(&q, config.clone());
                    b.iter(|| setup.execute(&plan.pt));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
