//! E7 (Figure 7 / §4.6): the comprehensive example — optimize the
//! Figure 3 query with and without pushing, and execute both plans.

use oorq_bench::harness::Group;
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn main() {
    let mut group = Group::new("fig7");
    group.sample_size(10);
    let cfg = MusicConfig {
        chains: 6,
        chain_len: 6,
        ..PaperSetup::paper_scale()
    };

    {
        let setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        group.bench_function("optimize_cost_controlled", || {
            setup.optimize(&q, OptimizerConfig::cost_controlled())
        });
    }
    {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        let plan = setup.optimize(&q, OptimizerConfig::never_push());
        group.bench_function("execute_pt_i_unpushed", || setup.execute(&plan.pt));
    }
    {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        let plan = setup.optimize(&q, OptimizerConfig::deductive_heuristic());
        group.bench_function("execute_pt_ii_pushed", || setup.execute(&plan.pt));
    }
    group.finish();
}
