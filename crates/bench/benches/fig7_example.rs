//! E7 (Figure 7 / §4.6): the comprehensive example — optimize the
//! Figure 3 query with and without pushing, and execute both plans.

use criterion::{criterion_group, criterion_main, Criterion};
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;
use oorq_datagen::MusicConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    let cfg = MusicConfig { chains: 6, chain_len: 6, ..PaperSetup::paper_scale() };

    group.bench_function("optimize_cost_controlled", |b| {
        let setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        b.iter(|| setup.optimize(&q, OptimizerConfig::cost_controlled()));
    });
    group.bench_function("execute_pt_i_unpushed", |b| {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        let plan = setup.optimize(&q, OptimizerConfig::never_push());
        b.iter(|| setup.execute(&plan.pt));
    });
    group.bench_function("execute_pt_ii_pushed", |b| {
        let mut setup = PaperSetup::new(cfg.clone());
        let q = setup.fig3();
        let plan = setup.optimize(&q, OptimizerConfig::deductive_heuristic());
        b.iter(|| setup.execute(&plan.pt));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
