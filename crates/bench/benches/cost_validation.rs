//! E11: cost-model validation — the executor runs the plans the model
//! priced; the harness measures the wall-clock side of the story while
//! the `reproduce validate` table compares the resource counts.

use oorq_bench::harness::Group;
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;

fn main() {
    let mut group = Group::new("cost_validation");
    group.sample_size(10);
    {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        let q = setup.fig3_gen(3);
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        group.bench_function("fig3_execute_and_account", || setup.execute(&plan.pt));
    }
    {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        let q = setup.fig3_gen(3);
        group.bench_function("fig3_estimate_only", || {
            setup
                .optimize(&q, OptimizerConfig::cost_controlled())
                .cost
                .total(&oorq_cost::CostParams::default())
        });
    }
    group.finish();
}
