//! E11: cost-model validation — the executor runs the plans the model
//! priced; Criterion measures the wall-clock side of the story while the
//! `reproduce validate` table compares the resource counts.

use criterion::{criterion_group, criterion_main, Criterion};
use oorq_bench::PaperSetup;
use oorq_core::OptimizerConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_validation");
    group.sample_size(10);
    group.bench_function("fig3_execute_and_account", |b| {
        let mut setup = PaperSetup::new(PaperSetup::paper_scale());
        let q = setup.fig3_gen(3);
        let plan = setup.optimize(&q, OptimizerConfig::cost_controlled());
        b.iter(|| setup.execute(&plan.pt));
    });
    group.bench_function("fig3_estimate_only", |b| {
        let setup = PaperSetup::new(PaperSetup::paper_scale());
        let q = setup.fig3_gen(3);
        b.iter(|| setup.optimize(&q, OptimizerConfig::cost_controlled()).cost.total(
            &oorq_cost::CostParams::default(),
        ));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
