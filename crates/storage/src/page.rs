//! Page model and record width estimation.
//!
//! The store does not serialize records to bytes; it models disk layout by
//! assigning each record a page number according to an estimated record
//! width, so that the buffer manager can account page I/O faithfully.

use oorq_schema::ResolvedType;

/// Identifier of a page: a storage entity plus a page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Owning entity (extension, fragment or temporary).
    pub entity: crate::physical::EntityId,
    /// Page number within the entity.
    pub page: u32,
}

/// Parameters of the width model used to map records to pages.
#[derive(Debug, Clone, Copy)]
pub struct WidthModel {
    /// Page size in bytes.
    pub page_size: usize,
    /// Assumed average width of a text value.
    pub text_width: usize,
    /// Assumed average member count of a set/list value, used when the
    /// actual value is not available (estimation only).
    pub avg_members: usize,
}

impl Default for WidthModel {
    fn default() -> Self {
        WidthModel {
            page_size: 4096,
            text_width: 24,
            avg_members: 8,
        }
    }
}

impl WidthModel {
    /// Estimated width in bytes of a value of the given type.
    pub fn type_width(&self, ty: &ResolvedType) -> usize {
        match ty {
            ResolvedType::Atomic(a) => match a {
                oorq_schema::AtomicType::Int | oorq_schema::AtomicType::Float => 8,
                oorq_schema::AtomicType::Bool => 1,
                oorq_schema::AtomicType::Text => self.text_width,
            },
            ResolvedType::Object(_) => 8,
            ResolvedType::Tuple(fs) => fs.iter().map(|(_, t)| self.type_width(t)).sum(),
            ResolvedType::Set(e) | ResolvedType::List(e) => {
                8 + self.avg_members * self.type_width(e)
            }
        }
    }

    /// Estimated record width for a record with the given field types.
    pub fn record_width(&self, fields: &[ResolvedType]) -> usize {
        8 + fields.iter().map(|t| self.type_width(t)).sum::<usize>()
    }

    /// Records that fit on one page (at least 1).
    pub fn records_per_page(&self, fields: &[ResolvedType]) -> u32 {
        (self.page_size / self.record_width(fields)).max(1) as u32
    }

    /// Pages needed for `n` records of the given shape.
    pub fn pages_for(&self, n: u64, fields: &[ResolvedType]) -> u64 {
        let rpp = self.records_per_page(fields) as u64;
        n.div_ceil(rpp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oorq_schema::{AtomicType, ResolvedType};

    #[test]
    fn widths_add_up() {
        let m = WidthModel::default();
        let int = ResolvedType::Atomic(AtomicType::Int);
        let text = ResolvedType::Atomic(AtomicType::Text);
        assert_eq!(m.type_width(&int), 8);
        assert_eq!(m.type_width(&text), 24);
        let tup = ResolvedType::Tuple(vec![("a".into(), int.clone()), ("b".into(), text)]);
        assert_eq!(m.type_width(&tup), 32);
        let set = ResolvedType::Set(Box::new(int.clone()));
        assert_eq!(m.type_width(&set), 8 + 8 * 8);
        // record adds an oid header of 8 bytes
        assert_eq!(m.record_width(std::slice::from_ref(&int)), 16);
        assert_eq!(m.records_per_page(std::slice::from_ref(&int)), 4096 / 16);
        assert_eq!(m.pages_for(0, std::slice::from_ref(&int)), 0);
        assert_eq!(m.pages_for(1, std::slice::from_ref(&int)), 1);
        assert_eq!(m.pages_for(257, &[int]), 2);
    }

    #[test]
    fn at_least_one_record_per_page() {
        let m = WidthModel {
            page_size: 4,
            ..WidthModel::default()
        };
        let text = ResolvedType::Atomic(AtomicType::Text);
        assert_eq!(m.records_per_page(&[text]), 1);
    }
}
