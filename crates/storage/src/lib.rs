//! Object store substrate for OORQ.
//!
//! Implements the physical database model of §3 of the paper: the *direct
//! storage* approach of \[VKC86\] (sub-object oids stored within owners),
//! page-based extensions with a buffer manager that accounts physical
//! I/O, static clustering, horizontal/vertical decomposition into atomic
//! entities, temporary files for intermediate results, and the statistics
//! (`|C|`, `‖C‖`, selectivities, fan-outs, chain depths) consumed by the
//! cost model.

mod buffer;
mod database;
mod error;
mod page;
pub mod physical;
mod segment;
mod stats;
mod value;

pub use buffer::{BufferManager, IoStats};
pub use database::{Database, ScanIter, StorageConfig};
pub use error::StorageError;
pub use page::{PageId, WidthModel};
pub use physical::{
    EntityDesc, EntityId, EntitySource, FragmentSpec, IndexDesc, IndexId, IndexKindDesc,
    IndexStats, PhysicalSchema,
};
pub use segment::{Row, Segment};
pub use stats::{AttrStats, ChainDepth, DbStats, EntityStats};
pub use value::{Oid, Value};

#[cfg(test)]
mod tests;
