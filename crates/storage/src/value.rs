//! Runtime values and object identifiers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use oorq_schema::ClassId;

/// An object identifier: the class of the object plus its position in the
/// class's *logical* extension. Physical placement (page, slot) is a
/// property of the storage segment, not of the oid — the paper's direct
/// storage model \[VKC86\] stores oids of sub-objects inside owner objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// Class of the object.
    pub class: ClassId,
    /// Logical index in the class extension.
    pub index: u32,
}

impl Oid {
    /// Convenience constructor.
    pub fn new(class: ClassId, index: u32) -> Self {
        Oid { class, index }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:{}", self.class.0, self.index)
    }
}

/// A runtime value: an atomic value, an object reference, or a
/// constructed (tuple/set/list) value.
///
/// `Value` implements a *total* equality, ordering and hash (floats
/// compare by their bit pattern via [`f64::total_cmp`]) so that values can
/// be deduplicated in fixpoint deltas and used as index keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value (e.g. a root composer's `master`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Object reference.
    Oid(Oid),
    /// Set of values (kept in insertion order; equality is order-sensitive
    /// on purpose — sets are normalized at construction by the store).
    Set(Vec<Value>),
    /// List of values.
    List(Vec<Value>),
    /// Tuple of values.
    Tuple(Vec<Value>),
}

impl Value {
    /// Text constructor.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Discriminant rank used to order values of different kinds.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
            Value::Oid(_) => 5,
            Value::Set(_) => 6,
            Value::List(_) => 7,
            Value::Tuple(_) => 8,
        }
    }

    /// As integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As text, if it is one.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// As oid, if it is one.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// The elements of a set or list value; a scalar is viewed as a
    /// singleton and `Null` as empty. This is how implicit joins iterate a
    /// reference-valued attribute uniformly.
    pub fn members(&self) -> &[Value] {
        match self {
            Value::Set(vs) | Value::List(vs) => vs,
            Value::Null => &[],
            other => std::slice::from_ref(other),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Numeric cross-kind comparison: compare as floats.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Oid(a), Oid(b)) => a.cmp(b),
            (Set(a), Set(b)) | (List(a), List(b)) | (Tuple(a), Tuple(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal may compare equal via
            // the Int/Float arm of `cmp`, so hash all numbers as f64 bits.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Oid(o) => {
                5u8.hash(state);
                o.hash(state);
            }
            Value::Set(vs) => {
                6u8.hash(state);
                vs.hash(state);
            }
            Value::List(vs) => {
                7u8.hash(state);
                vs.hash(state);
            }
            Value::Tuple(vs) => {
                8u8.hash(state);
                vs.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::Set(vs) => write_seq(f, "{", vs, "}"),
            Value::List(vs) => write_seq(f, "<", vs, ">"),
            Value::Tuple(vs) => write_seq(f, "[", vs, "]"),
        }
    }
}

fn write_seq(f: &mut fmt::Formatter<'_>, open: &str, vs: &[Value], close: &str) -> fmt::Result {
    write!(f, "{open}")?;
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{v}")?;
    }
    write!(f, "{close}")
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Oid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_views_scalars_and_collections_uniformly() {
        let set = Value::Set(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(set.members().len(), 2);
        let scalar = Value::Int(7);
        assert_eq!(scalar.members(), &[Value::Int(7)]);
        assert!(Value::Null.members().is_empty());
    }

    #[test]
    fn total_order_is_consistent() {
        let a = Value::Int(1);
        let b = Value::Float(1.0);
        assert_eq!(a, b);
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Null < Value::Int(0));
        assert!(Value::text("a") < Value::text("b"));
    }

    #[test]
    fn equal_numbers_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn display_uses_paper_constructors() {
        let v = Value::Tuple(vec![
            Value::text("x"),
            Value::Set(vec![Value::Int(1)]),
            Value::List(vec![Value::Bool(true)]),
        ]);
        assert_eq!(v.to_string(), "[\"x\", {1}, <true>]");
    }

    #[test]
    fn oid_display() {
        assert_eq!(Oid::new(ClassId(2), 5).to_string(), "@2:5");
    }
}
