//! LRU buffer manager with I/O accounting.
//!
//! The buffer manager does not hold data (segments do); it simulates a
//! page cache so that the number of *physical* page reads reported matches
//! what a disk-resident system would do. This realizes the paper's
//! footnote 2: "when estimating access_cost, we take into account the fact
//! that some of the needed data are already in main memory".

use std::collections::HashMap;

use crate::page::PageId;

/// Counters accumulated by the buffer manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched that were not resident (physical reads).
    pub page_reads: u64,
    /// Pages fetched that were resident (logical hits).
    pub page_hits: u64,
    /// Pages written out (temporary materialization).
    pub page_writes: u64,
    /// Index pages read (B+-tree levels and leaves traversed).
    pub index_reads: u64,
}

impl IoStats {
    /// Total logical fetches.
    pub fn fetches(&self) -> u64 {
        self.page_reads + self.page_hits
    }

    /// Total physical reads including index pages.
    pub fn total_reads(&self) -> u64 {
        self.page_reads + self.index_reads
    }

    /// Fold another worker's counters into this one (exchange merge).
    pub fn absorb(&mut self, other: IoStats) {
        self.page_reads += other.page_reads;
        self.page_hits += other.page_hits;
        self.page_writes += other.page_writes;
        self.index_reads += other.index_reads;
    }
}

/// An LRU page cache of a fixed number of frames.
#[derive(Debug)]
pub struct BufferManager {
    capacity: usize,
    /// page -> clock stamp of last use.
    resident: HashMap<PageId, u64>,
    clock: u64,
    stats: IoStats,
    /// Trace recorder (disabled by default; page hit/miss/eviction
    /// events then cost a single branch).
    obs: oorq_obs::Recorder,
}

impl BufferManager {
    /// A buffer with the given number of frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BufferManager {
            capacity: capacity.max(1),
            resident: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
            obs: oorq_obs::Recorder::disabled(),
        }
    }

    /// Attach a trace recorder; every subsequent page hit, miss and
    /// eviction fires a structured event on it.
    pub fn set_recorder(&mut self, obs: oorq_obs::Recorder) {
        self.obs = obs;
    }

    /// Fold a worker view's counters into this buffer's statistics.
    pub fn absorb_stats(&mut self, io: IoStats) {
        self.stats.absorb(io);
    }

    /// Spawn a per-worker accounting view: an empty buffer of `frames`
    /// frames sharing this buffer's recorder. Workers fetch through their
    /// own view (no cross-thread frame contention); the view's counters
    /// are merged back via [`IoStats::absorb`] when the worker joins.
    pub fn fork(&self, frames: usize) -> BufferManager {
        BufferManager {
            capacity: frames.max(1),
            resident: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
            obs: self.obs.clone(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Evict the least recently used page to make room.
    fn evict_lru(&mut self) {
        if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &s)| s) {
            self.resident.remove(&victim);
            self.obs.counter_add("storage.page_evictions", 1.0);
            self.obs.event("storage", "page-evict", page_fields(victim));
        }
    }

    /// Fetch a page, returning `true` on a physical read (miss).
    pub fn fetch(&mut self, page: PageId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = clock;
            self.stats.page_hits += 1;
            self.obs.counter_add("storage.page_hits", 1.0);
            self.obs.event("storage", "page-hit", page_fields(page));
            false
        } else {
            if self.resident.len() >= self.capacity {
                self.evict_lru();
            }
            self.resident.insert(page, clock);
            self.stats.page_reads += 1;
            self.obs.counter_add("storage.page_misses", 1.0);
            self.obs.event("storage", "page-miss", page_fields(page));
            true
        }
    }

    /// Record a page write (temporary materialization). The written page
    /// becomes resident; writes are counted separately from reads.
    pub fn write(&mut self, page: PageId) {
        self.clock += 1;
        self.stats.page_writes += 1;
        self.obs.counter_add("storage.page_writes", 1.0);
        if !self.resident.contains_key(&page) && self.resident.len() >= self.capacity {
            self.evict_lru();
        }
        self.resident.insert(page, self.clock);
    }

    /// Drop every resident page of an entity (e.g. when a temporary is
    /// cleared between fixpoint iterations).
    pub fn invalidate_entity(&mut self, entity: crate::physical::EntityId) {
        self.resident.retain(|p, _| p.entity != entity);
    }

    /// Count index page reads (index nodes are outside the data buffer).
    pub fn add_index_reads(&mut self, n: u64) {
        self.stats.index_reads += n;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reset counters (keeps residency).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Drop all residency and counters.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.stats = IoStats::default();
        self.clock = 0;
    }
}

/// Structured event payload identifying a page.
fn page_fields(page: PageId) -> oorq_obs::Fields {
    vec![
        ("entity".into(), page.entity.0.into()),
        ("page".into(), page.page.into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EntityId;

    fn pid(e: u32, p: u32) -> PageId {
        PageId {
            entity: EntityId(e),
            page: p,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut b = BufferManager::new(4);
        assert!(b.fetch(pid(0, 0)));
        assert!(!b.fetch(pid(0, 0)));
        assert_eq!(b.stats().page_reads, 1);
        assert_eq!(b.stats().page_hits, 1);
        assert_eq!(b.stats().fetches(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = BufferManager::new(2);
        b.fetch(pid(0, 0));
        b.fetch(pid(0, 1));
        b.fetch(pid(0, 0)); // refresh page 0
        b.fetch(pid(0, 2)); // evicts page 1
        assert!(!b.fetch(pid(0, 0)), "page 0 still resident");
        assert!(b.fetch(pid(0, 1)), "page 1 was evicted");
    }

    #[test]
    fn sequential_scan_misses_every_page_when_larger_than_buffer() {
        let mut b = BufferManager::new(3);
        for round in 0..2 {
            for p in 0..10 {
                b.fetch(pid(0, p));
            }
            // With LRU and a scan longer than the buffer, every fetch is a
            // miss on both rounds.
            assert_eq!(b.stats().page_reads, 10 * (round + 1));
        }
    }

    #[test]
    fn invalidate_entity_only_drops_that_entity() {
        let mut b = BufferManager::new(8);
        b.fetch(pid(0, 0));
        b.fetch(pid(1, 0));
        b.invalidate_entity(EntityId(0));
        assert!(b.fetch(pid(0, 0)), "entity 0 page dropped");
        assert!(!b.fetch(pid(1, 0)), "entity 1 page kept");
    }

    #[test]
    fn writes_counted_separately() {
        let mut b = BufferManager::new(2);
        b.write(pid(0, 0));
        assert_eq!(b.stats().page_writes, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = BufferManager::new(2);
        b.fetch(pid(0, 0));
        b.clear();
        assert_eq!(b.stats(), IoStats::default());
        assert!(b.fetch(pid(0, 0)));
    }
}
