//! LRU buffer manager with I/O accounting.
//!
//! The buffer manager does not hold data (segments do); it simulates a
//! page cache so that the number of *physical* page reads reported matches
//! what a disk-resident system would do. This realizes the paper's
//! footnote 2: "when estimating access_cost, we take into account the fact
//! that some of the needed data are already in main memory".

use std::collections::HashMap;

use crate::page::PageId;

/// Counters accumulated by the buffer manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched that were not resident (physical reads).
    pub page_reads: u64,
    /// Pages fetched that were resident (logical hits).
    pub page_hits: u64,
    /// Pages written out (temporary materialization).
    pub page_writes: u64,
    /// Index pages read (B+-tree levels and leaves traversed).
    pub index_reads: u64,
    /// Temporary pages evicted because the breaker memory budget was
    /// exhausted (spills); capacity evictions are not counted here.
    pub spill_evictions: u64,
    /// Physical reads of *temporary* pages (spilled breaker state
    /// re-fetched from the page store); a subset of `page_reads`.
    pub temp_reads: u64,
}

impl IoStats {
    /// Total logical fetches.
    pub fn fetches(&self) -> u64 {
        self.page_reads + self.page_hits
    }

    /// Total physical reads including index pages.
    pub fn total_reads(&self) -> u64 {
        self.page_reads + self.index_reads
    }

    /// Fold another worker's counters into this one (exchange merge).
    pub fn absorb(&mut self, other: IoStats) {
        self.page_reads += other.page_reads;
        self.page_hits += other.page_hits;
        self.page_writes += other.page_writes;
        self.index_reads += other.index_reads;
        self.spill_evictions += other.spill_evictions;
        self.temp_reads += other.temp_reads;
    }
}

/// Pre-resolved metric series for the buffer's hot path: handles are
/// interned once at [`BufferManager::set_metrics`] time, so each page
/// operation costs one branch (detached) or one relaxed atomic add.
#[derive(Debug, Clone, Default)]
struct BufferMetrics {
    page_hits: oorq_obs::CounterHandle,
    page_misses: oorq_obs::CounterHandle,
    page_writes: oorq_obs::CounterHandle,
    page_evictions: oorq_obs::CounterHandle,
    spill_evictions: oorq_obs::CounterHandle,
    temp_page_reads: oorq_obs::CounterHandle,
}

impl BufferMetrics {
    fn resolve(registry: &oorq_obs::MetricsRegistry) -> Self {
        BufferMetrics {
            page_hits: registry.counter("storage.page_hits"),
            page_misses: registry.counter("storage.page_misses"),
            page_writes: registry.counter("storage.page_writes"),
            page_evictions: registry.counter("storage.page_evictions"),
            spill_evictions: registry.counter("storage.spill_evictions"),
            temp_page_reads: registry.counter("storage.temp_page_reads"),
        }
    }
}

/// Residency record for one buffered page.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Clock stamp of last use (LRU victim = smallest stamp).
    stamp: u64,
    /// Whether the page belongs to a temporary entity (breaker state);
    /// only these count against the breaker memory budget.
    temp: bool,
}

/// An LRU page cache of a fixed number of frames.
#[derive(Debug)]
pub struct BufferManager {
    capacity: usize,
    /// Breaker memory budget: maximum resident *temporary* pages
    /// (0 = unbounded, the default). When a temporary page would push
    /// the temp-resident count past this budget, the least recently
    /// used temporary page is spilled first.
    temp_budget: usize,
    /// Resident temporary pages (maintained incrementally so budget
    /// checks are O(1)).
    temp_resident: usize,
    /// page -> residency record (LRU stamp + temp flag).
    resident: HashMap<PageId, Frame>,
    clock: u64,
    stats: IoStats,
    /// Trace recorder (disabled by default; page hit/miss/eviction
    /// events then cost a single branch).
    obs: oorq_obs::Recorder,
    /// Aggregated metric series (detached by default; same one-branch
    /// discipline as the recorder). Handles share their atomics across
    /// [`BufferManager::fork`] views, so worker-lane traffic lands in
    /// the same series without a merge step.
    metrics: BufferMetrics,
}

impl BufferManager {
    /// A buffer with the given number of frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BufferManager {
            capacity: capacity.max(1),
            temp_budget: 0,
            temp_resident: 0,
            resident: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
            obs: oorq_obs::Recorder::disabled(),
            metrics: BufferMetrics::default(),
        }
    }

    /// Attach a trace recorder; every subsequent page hit, miss and
    /// eviction fires a structured event on it.
    pub fn set_recorder(&mut self, obs: oorq_obs::Recorder) {
        self.obs = obs;
    }

    /// Attach a metrics registry; every subsequent page hit, miss,
    /// write, eviction and spill bumps its `storage.*` counter series.
    pub fn set_metrics(&mut self, registry: &oorq_obs::MetricsRegistry) {
        self.metrics = BufferMetrics::resolve(registry);
    }

    /// Fold a worker view's counters into this buffer's statistics.
    pub fn absorb_stats(&mut self, io: IoStats) {
        self.stats.absorb(io);
    }

    /// Spawn a per-worker accounting view: an empty buffer of `frames`
    /// frames sharing this buffer's recorder. Workers fetch through their
    /// own view (no cross-thread frame contention); the view's counters
    /// are merged back via [`IoStats::absorb`] when the worker joins.
    /// `temp_budget` is the worker's slice of the breaker memory budget
    /// (0 = unbounded).
    pub fn fork(&self, frames: usize, temp_budget: usize) -> BufferManager {
        BufferManager {
            capacity: frames.max(1),
            temp_budget,
            temp_resident: 0,
            resident: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
            obs: self.obs.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cap resident temporary (breaker) pages; 0 lifts the cap.
    pub fn set_temp_budget(&mut self, pages: usize) {
        self.temp_budget = pages;
    }

    /// The breaker memory budget in pages (0 = unbounded).
    pub fn temp_budget(&self) -> usize {
        self.temp_budget
    }

    /// Remove `victim` from the frame table, maintaining the temp count.
    fn drop_frame(&mut self, victim: PageId) -> Option<Frame> {
        let frame = self.resident.remove(&victim);
        if let Some(f) = frame {
            if f.temp {
                self.temp_resident -= 1;
            }
        }
        frame
    }

    /// Evict the least recently used page to make room.
    fn evict_lru(&mut self) {
        if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, f)| f.stamp) {
            self.drop_frame(victim);
            self.metrics.page_evictions.inc();
            self.obs.counter_add("storage.page_evictions", 1.0);
            self.obs.event("storage", "page-evict", page_fields(victim));
        }
    }

    /// Evict the least recently used *temporary* page — a spill forced by
    /// the breaker memory budget, counted separately from capacity
    /// evictions.
    fn spill_lru_temp(&mut self) {
        let victim = self
            .resident
            .iter()
            .filter(|(_, f)| f.temp)
            .min_by_key(|(_, f)| f.stamp)
            .map(|(&p, _)| p);
        if let Some(victim) = victim {
            self.drop_frame(victim);
            self.stats.spill_evictions += 1;
            self.metrics.spill_evictions.inc();
            self.obs.counter_add("storage.spill_evictions", 1.0);
            self.obs
                .event("storage", "spill-evict", page_fields(victim));
        }
    }

    /// Make room for one incoming page (temp or not): first enforce the
    /// breaker budget for temporary pages, then overall capacity.
    fn make_room(&mut self, temp: bool) {
        if temp && self.temp_budget > 0 {
            while self.temp_resident >= self.temp_budget {
                self.spill_lru_temp();
            }
        }
        if self.resident.len() >= self.capacity {
            self.evict_lru();
        }
    }

    /// Fetch a page, returning `true` on a physical read (miss). `temp`
    /// marks pages of temporary entities (breaker state), which are the
    /// only ones counted against the breaker memory budget.
    pub fn fetch(&mut self, page: PageId, temp: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(frame) = self.resident.get_mut(&page) {
            frame.stamp = clock;
            self.stats.page_hits += 1;
            self.metrics.page_hits.inc();
            self.obs.counter_add("storage.page_hits", 1.0);
            self.obs.event("storage", "page-hit", page_fields(page));
            false
        } else {
            self.make_room(temp);
            self.resident.insert(page, Frame { stamp: clock, temp });
            if temp {
                self.temp_resident += 1;
                self.stats.temp_reads += 1;
                self.metrics.temp_page_reads.inc();
            }
            self.stats.page_reads += 1;
            self.metrics.page_misses.inc();
            self.obs.counter_add("storage.page_misses", 1.0);
            self.obs.event("storage", "page-miss", page_fields(page));
            true
        }
    }

    /// Record a page write (temporary materialization). The written page
    /// becomes resident; writes are counted separately from reads.
    pub fn write(&mut self, page: PageId, temp: bool) {
        self.clock += 1;
        self.stats.page_writes += 1;
        self.metrics.page_writes.inc();
        self.obs.counter_add("storage.page_writes", 1.0);
        let clock = self.clock;
        if let Some(frame) = self.resident.get_mut(&page) {
            // An entity's temp-ness never changes, so the flag is stable.
            debug_assert_eq!(frame.temp, temp);
            frame.stamp = clock;
            return;
        }
        self.make_room(temp);
        self.resident.insert(page, Frame { stamp: clock, temp });
        if temp {
            self.temp_resident += 1;
        }
    }

    /// Drop every resident page of an entity (e.g. when a temporary is
    /// cleared between fixpoint iterations).
    pub fn invalidate_entity(&mut self, entity: crate::physical::EntityId) {
        let mut dropped_temps = 0usize;
        self.resident.retain(|p, f| {
            let keep = p.entity != entity;
            if !keep && f.temp {
                dropped_temps += 1;
            }
            keep
        });
        self.temp_resident -= dropped_temps;
    }

    /// Count index page reads (index nodes are outside the data buffer).
    pub fn add_index_reads(&mut self, n: u64) {
        self.stats.index_reads += n;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reset counters (keeps residency).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Drop all residency and counters.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.temp_resident = 0;
        self.stats = IoStats::default();
        self.clock = 0;
    }
}

/// Structured event payload identifying a page.
fn page_fields(page: PageId) -> oorq_obs::Fields {
    vec![
        ("entity".into(), page.entity.0.into()),
        ("page".into(), page.page.into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EntityId;

    fn pid(e: u32, p: u32) -> PageId {
        PageId {
            entity: EntityId(e),
            page: p,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut b = BufferManager::new(4);
        assert!(b.fetch(pid(0, 0), false));
        assert!(!b.fetch(pid(0, 0), false));
        assert_eq!(b.stats().page_reads, 1);
        assert_eq!(b.stats().page_hits, 1);
        assert_eq!(b.stats().fetches(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = BufferManager::new(2);
        b.fetch(pid(0, 0), false);
        b.fetch(pid(0, 1), false);
        b.fetch(pid(0, 0), false); // refresh page 0
        b.fetch(pid(0, 2), false); // evicts page 1
        assert!(!b.fetch(pid(0, 0), false), "page 0 still resident");
        assert!(b.fetch(pid(0, 1), false), "page 1 was evicted");
    }

    #[test]
    fn sequential_scan_misses_every_page_when_larger_than_buffer() {
        let mut b = BufferManager::new(3);
        for round in 0..2 {
            for p in 0..10 {
                b.fetch(pid(0, p), false);
            }
            // With LRU and a scan longer than the buffer, every fetch is a
            // miss on both rounds.
            assert_eq!(b.stats().page_reads, 10 * (round + 1));
        }
    }

    #[test]
    fn invalidate_entity_only_drops_that_entity() {
        let mut b = BufferManager::new(8);
        b.fetch(pid(0, 0), false);
        b.fetch(pid(1, 0), false);
        b.invalidate_entity(EntityId(0));
        assert!(b.fetch(pid(0, 0), false), "entity 0 page dropped");
        assert!(!b.fetch(pid(1, 0), false), "entity 1 page kept");
    }

    #[test]
    fn writes_counted_separately() {
        let mut b = BufferManager::new(2);
        b.write(pid(0, 0), false);
        assert_eq!(b.stats().page_writes, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = BufferManager::new(2);
        b.fetch(pid(0, 0), false);
        b.clear();
        assert_eq!(b.stats(), IoStats::default());
        assert!(b.fetch(pid(0, 0), false));
    }

    #[test]
    fn temp_budget_spills_lru_temp_page() {
        let mut b = BufferManager::new(16);
        b.set_temp_budget(2);
        assert_eq!(b.temp_budget(), 2);
        b.write(pid(5, 0), true);
        b.write(pid(5, 1), true);
        // Third temp page exceeds the budget: page 0 (LRU temp) spills.
        b.write(pid(5, 2), true);
        assert_eq!(b.stats().spill_evictions, 1);
        assert!(b.fetch(pid(5, 0), true), "spilled page re-read is a miss");
        // The re-fetch of page 0 in turn spills page 1 (now the LRU temp).
        assert_eq!(b.stats().spill_evictions, 2);
        assert!(!b.fetch(pid(5, 0), true), "just-fetched page is resident");
    }

    #[test]
    fn temp_budget_does_not_touch_base_pages() {
        let mut b = BufferManager::new(16);
        b.set_temp_budget(1);
        b.fetch(pid(0, 0), false);
        b.fetch(pid(0, 1), false);
        b.write(pid(5, 0), true);
        b.write(pid(5, 1), true); // spills temp page 0, not the base pages
        assert_eq!(b.stats().spill_evictions, 1);
        assert!(!b.fetch(pid(0, 0), false), "base page survived the spill");
        assert!(!b.fetch(pid(0, 1), false), "base page survived the spill");
        assert!(b.fetch(pid(5, 0), true), "temp page 0 was spilled");
    }

    #[test]
    fn zero_budget_means_unbounded() {
        let mut b = BufferManager::new(16);
        for p in 0..8 {
            b.write(pid(5, p), true);
        }
        assert_eq!(b.stats().spill_evictions, 0);
        for p in 0..8 {
            assert!(!b.fetch(pid(5, p), true), "all temp pages resident");
        }
    }

    #[test]
    fn invalidate_entity_releases_budget() {
        let mut b = BufferManager::new(16);
        b.set_temp_budget(2);
        b.write(pid(5, 0), true);
        b.write(pid(5, 1), true);
        b.invalidate_entity(EntityId(5));
        // Budget fully released: two fresh temp pages fit without a spill.
        b.write(pid(6, 0), true);
        b.write(pid(6, 1), true);
        assert_eq!(b.stats().spill_evictions, 0);
    }

    #[test]
    fn temp_reads_count_only_temp_page_misses() {
        let mut b = BufferManager::new(16);
        b.fetch(pid(0, 0), false); // base miss
        b.fetch(pid(5, 0), true); // temp miss
        b.fetch(pid(5, 0), true); // temp hit: not a temp read
        assert_eq!(b.stats().page_reads, 2);
        assert_eq!(b.stats().temp_reads, 1);
        let other = IoStats {
            temp_reads: 3,
            ..Default::default()
        };
        let mut io = b.stats();
        io.absorb(other);
        assert_eq!(io.temp_reads, 4);
    }

    #[test]
    fn metrics_registry_counts_buffer_traffic_across_forks() {
        let m = oorq_obs::MetricsRegistry::new();
        let mut b = BufferManager::new(2);
        b.set_metrics(&m);
        b.set_temp_budget(1);
        b.fetch(pid(0, 0), false); // miss
        b.fetch(pid(0, 0), false); // hit
        b.write(pid(5, 0), true);
        b.write(pid(5, 1), true); // spills temp page 0
        b.fetch(pid(0, 1), false); // miss; capacity-evicts something
                                   // A worker view shares the same series atomics.
        let mut w = b.fork(2, 0);
        w.fetch(pid(0, 7), true); // temp miss in the fork
        let snap = m.snapshot();
        assert_eq!(snap.counters["storage.page_misses"], 3);
        assert_eq!(snap.counters["storage.page_hits"], 1);
        assert_eq!(snap.counters["storage.page_writes"], 2);
        assert_eq!(snap.counters["storage.spill_evictions"], 1);
        assert_eq!(snap.counters["storage.temp_page_reads"], 1);
        assert!(snap.counters["storage.page_evictions"] >= 1);
    }

    #[test]
    fn capacity_eviction_not_counted_as_spill() {
        let mut b = BufferManager::new(2);
        b.fetch(pid(0, 0), false);
        b.fetch(pid(0, 1), false);
        b.fetch(pid(0, 2), false); // capacity eviction
        assert_eq!(b.stats().spill_evictions, 0);
    }
}
