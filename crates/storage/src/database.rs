//! The object store: a page-accounted, single-node object database
//! following the direct storage model of \[VKC86\].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use oorq_schema::{AttrId, AttributeKind, Catalog, ClassId, RelationId, ResolvedType, ViewKind};

use crate::buffer::{BufferManager, IoStats};
use crate::error::StorageError;
use crate::page::{PageId, WidthModel};
use crate::physical::{EntityId, EntitySource, FragmentSpec, PhysicalSchema};
use crate::segment::{Row, Segment};
use crate::value::{Oid, Value};

/// Configuration of the store.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Number of buffer frames.
    pub buffer_frames: usize,
    /// Width model mapping records to pages.
    pub width: WidthModel,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            buffer_frames: 64,
            width: WidthModel::default(),
        }
    }
}

/// How a class extension is laid out across atomic entities.
#[derive(Debug, Clone)]
enum ClassLayout {
    /// One non-decomposed extension.
    Single(EntityId),
    /// Vertical fragments; each holds a subset of the attributes.
    Vertical(Vec<(EntityId, Vec<AttrId>)>),
    /// Horizontal fragments.
    Horizontal(Vec<EntityId>),
}

/// The object database: conceptual catalog + physical schema + segments +
/// buffer manager.
///
/// All read paths account page I/O through the buffer manager. The store
/// is shared-read, per-worker-accounted: segments sit behind an `RwLock`
/// that is only write-locked during (single-threaded) loading, and every
/// I/O accounting call routes through either the shared buffer manager
/// (a `Mutex`, uncontended in serial execution) or — when an exchange
/// worker has installed one via [`Database::install_worker_buffer`] — a
/// thread-local per-worker view whose counters are merged back with
/// [`Database::absorb_io`]. Bulk loading does not count I/O; call
/// [`Database::reset_io`] before a measured run anyway.
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    physical: PhysicalSchema,
    segments: RwLock<Vec<Arc<Segment>>>,
    class_layout: HashMap<ClassId, ClassLayout>,
    relation_home: HashMap<RelationId, EntityId>,
    class_count: HashMap<ClassId, u32>,
    relation_count: HashMap<RelationId, u32>,
    buffer: Mutex<BufferManager>,
    width: WidthModel,
}

thread_local! {
    /// The calling thread's private buffer-accounting view, if any.
    /// Installed by exchange workers for the duration of their partition
    /// so page accounting never contends on the shared buffer lock.
    static WORKER_BUFFER: RefCell<Option<BufferManager>> = const { RefCell::new(None) };
}

impl Database {
    /// Create a store for the given catalog: one entity per class and per
    /// stored relation (views get no extension).
    pub fn new(catalog: Arc<Catalog>, config: StorageConfig) -> Self {
        let mut physical = PhysicalSchema::new();
        let mut segments = Vec::new();
        let mut class_layout = HashMap::new();
        let mut relation_home = HashMap::new();
        for (i, c) in catalog.classes().iter().enumerate() {
            let cid = ClassId(i as u32);
            let id = physical.add_entity(c.name.clone(), EntitySource::Class(cid), None);
            segments.push(Arc::new(Self::class_segment(
                &catalog,
                cid,
                None,
                &config.width,
            )));
            debug_assert_eq!(id.0 as usize, segments.len() - 1);
            class_layout.insert(cid, ClassLayout::Single(id));
        }
        for (i, r) in catalog.relations().iter().enumerate() {
            if r.kind != ViewKind::Stored {
                continue;
            }
            let rid = RelationId(i as u32);
            let id = physical.add_entity(r.name.clone(), EntitySource::Relation(rid), None);
            let types: Vec<ResolvedType> = r.fields.iter().map(|(_, t)| t.clone()).collect();
            let rpp = config.width.records_per_page(&types);
            segments.push(Arc::new(Segment::with_rpp(types, rpp)));
            debug_assert_eq!(id.0 as usize, segments.len() - 1);
            relation_home.insert(rid, id);
        }
        Database {
            catalog,
            physical,
            segments: RwLock::new(segments),
            class_layout,
            relation_home,
            class_count: HashMap::new(),
            relation_count: HashMap::new(),
            buffer: Mutex::new(BufferManager::new(config.buffer_frames)),
            width: config.width,
        }
    }

    /// Build a segment for (a fragment of) a class extension. Computed
    /// attributes occupy a slot (holding `Null`) but contribute no width.
    fn class_segment(
        catalog: &Catalog,
        class: ClassId,
        attrs: Option<&[AttrId]>,
        width: &WidthModel,
    ) -> Segment {
        let all = &catalog.class(class).attrs;
        let selected: Vec<usize> = match attrs {
            Some(subset) => subset.iter().map(|a| a.0 as usize).collect(),
            None => (0..all.len()).collect(),
        };
        let types: Vec<ResolvedType> = selected.iter().map(|&i| all[i].ty.clone()).collect();
        let stored_types: Vec<ResolvedType> = selected
            .iter()
            .filter(|&&i| all[i].kind == AttributeKind::Stored)
            .map(|&i| all[i].ty.clone())
            .collect();
        let rpp = width.records_per_page(&stored_types);
        Segment::with_rpp(types, rpp)
    }

    /// The conceptual catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Shared handle to the catalog.
    pub fn catalog_rc(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// The physical schema (entities, fragments, clustering, indexes).
    pub fn physical(&self) -> &PhysicalSchema {
        &self.physical
    }

    /// Mutable access to the physical schema (registering indexes,
    /// declaring clustering).
    pub fn physical_mut(&mut self) -> &mut PhysicalSchema {
        &mut self.physical
    }

    /// The width model in use.
    pub fn width_model(&self) -> &WidthModel {
        &self.width
    }

    /// An independent read view of this database for a serving session.
    ///
    /// Segment data is shared copy-on-write (each segment sits behind an
    /// `Arc`; a later mutation on either side clones just the touched
    /// segment), the cheap metadata (physical schema, layouts, counts)
    /// is cloned, and the snapshot gets its own empty buffer manager so
    /// every session accounts page I/O — and spends its breaker memory
    /// budget — independently. Queries executed against the snapshot
    /// return byte-identical answers to the source database: position
    /// order, record keys and page boundaries are all part of the shared
    /// segment state.
    pub fn snapshot(&self) -> Database {
        Database {
            catalog: Arc::clone(&self.catalog),
            physical: self.physical.clone(),
            segments: RwLock::new(self.segments.read().unwrap().clone()),
            class_layout: self.class_layout.clone(),
            relation_home: self.relation_home.clone(),
            class_count: self.class_count.clone(),
            relation_count: self.relation_count.clone(),
            buffer: Mutex::new(BufferManager::new(self.buffer_frames())),
            width: self.width,
        }
    }

    // ------------------------------------------------------------------
    // Loading
    // ------------------------------------------------------------------

    /// Positions (attr ids) of the stored attributes of a class.
    pub fn stored_layout(&self, class: ClassId) -> Vec<AttrId> {
        self.catalog
            .class(class)
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttributeKind::Stored)
            .map(|(i, _)| AttrId(i as u16))
            .collect()
    }

    /// Insert an object, supplying values for the *stored* attributes in
    /// layout order; computed attribute slots are filled with `Null`.
    pub fn insert_object(
        &mut self,
        class: ClassId,
        stored_values: Vec<Value>,
    ) -> Result<Oid, StorageError> {
        let layout = self.stored_layout(class);
        if stored_values.len() != layout.len() {
            return Err(StorageError::ArityMismatch {
                context: format!("insert into `{}`", self.catalog.class(class).name),
                expected: layout.len(),
                got: stored_values.len(),
            });
        }
        let home = match self.class_layout.get(&class) {
            Some(ClassLayout::Single(e)) => *e,
            Some(_) => return Err(StorageError::Decomposed(class)),
            None => return Err(StorageError::NoHome(class)),
        };
        let n_attrs = self.catalog.class(class).attrs.len();
        let mut values = vec![Value::Null; n_attrs];
        for (attr, v) in layout.into_iter().zip(stored_values) {
            values[attr.0 as usize] = v;
        }
        let count = self.class_count.entry(class).or_insert(0);
        let index = *count;
        *count += 1;
        Arc::make_mut(&mut self.segments.write().unwrap()[home.0 as usize])
            .append(Row { key: index, values });
        Ok(Oid::new(class, index))
    }

    /// Update a stored attribute of an existing object (used by loaders to
    /// wire cyclic references such as `master`).
    pub fn set_attr(&mut self, oid: Oid, attr: AttrId, value: Value) -> Result<(), StorageError> {
        let entity = self.entity_holding(oid, attr)?;
        let mut segs = self.segments.write().unwrap();
        let seg = Arc::make_mut(&mut segs[entity.0 as usize]);
        let pos = seg
            .position_of(oid.index)
            .ok_or(StorageError::DanglingOid(oid))?;
        // Row mutation in place.
        let slot = self.attr_slot(entity, oid.class, attr);
        let row_values = {
            let row = seg.row_at(pos).ok_or(StorageError::DanglingOid(oid))?;
            let mut v = row.values.clone();
            if slot >= v.len() {
                return Err(StorageError::DanglingOid(oid));
            }
            v[slot] = value;
            v
        };
        seg.replace_values(pos, row_values);
        Ok(())
    }

    /// Insert a row into a stored relation.
    pub fn insert_row(
        &mut self,
        relation: RelationId,
        values: Vec<Value>,
    ) -> Result<u32, StorageError> {
        let home = *self
            .relation_home
            .get(&relation)
            .ok_or(StorageError::BadEntity(EntityId(u32::MAX)))?;
        let expected = self.catalog.relation(relation).fields.len();
        if values.len() != expected {
            return Err(StorageError::ArityMismatch {
                context: format!("insert into `{}`", self.catalog.relation(relation).name),
                expected,
                got: values.len(),
            });
        }
        let count = self.relation_count.entry(relation).or_insert(0);
        let id = *count;
        *count += 1;
        Arc::make_mut(&mut self.segments.write().unwrap()[home.0 as usize])
            .append(Row { key: id, values });
        Ok(id)
    }

    /// Number of objects in a class extension.
    pub fn object_count(&self, class: ClassId) -> u32 {
        self.class_count.get(&class).copied().unwrap_or(0)
    }

    /// Scatter the physical placement of an entity (models an unclustered
    /// extension; see [`Segment::shuffle`]).
    pub fn shuffle_entity(&mut self, entity: EntityId, seed: u64) {
        Arc::make_mut(&mut self.segments.write().unwrap()[entity.0 as usize]).shuffle(seed);
        self.with_buffer(|b| b.invalidate_entity(entity));
    }

    // ------------------------------------------------------------------
    // Decomposition
    // ------------------------------------------------------------------

    /// Decompose a class extension vertically into fragments holding the
    /// given attribute groups (every attribute must appear in exactly one
    /// group). Returns the fragment entities.
    pub fn decompose_vertical(
        &mut self,
        class: ClassId,
        groups: &[Vec<AttrId>],
    ) -> Result<Vec<EntityId>, StorageError> {
        let home = match self.class_layout.get(&class) {
            Some(ClassLayout::Single(e)) => *e,
            _ => return Err(StorageError::Decomposed(class)),
        };
        let cname = self.catalog.class(class).name.clone();
        let mut fragments = Vec::new();
        for (i, group) in groups.iter().enumerate() {
            let id = self.physical.add_entity(
                format!("{cname}_v{i}"),
                EntitySource::Class(class),
                Some(FragmentSpec::Vertical {
                    attrs: group.clone(),
                }),
            );
            let seg = Self::class_segment(&self.catalog, class, Some(group), &self.width);
            self.segments.write().unwrap().push(Arc::new(seg));
            fragments.push(id);
        }
        // Move the data.
        {
            let mut segs = self.segments.write().unwrap();
            let rows: Vec<Row> = segs[home.0 as usize].iter().cloned().collect();
            for row in rows {
                for (fi, group) in groups.iter().enumerate() {
                    let vals: Vec<Value> = group
                        .iter()
                        .map(|a| row.values[a.0 as usize].clone())
                        .collect();
                    Arc::make_mut(&mut segs[fragments[fi].0 as usize]).append(Row {
                        key: row.key,
                        values: vals,
                    });
                }
            }
            Arc::make_mut(&mut segs[home.0 as usize]).clear();
        }
        self.with_buffer(|b| b.invalidate_entity(home));
        self.physical.deactivate_entity(home);
        self.class_layout.insert(
            class,
            ClassLayout::Vertical(
                fragments
                    .iter()
                    .copied()
                    .zip(groups.iter().cloned())
                    .collect(),
            ),
        );
        Ok(fragments)
    }

    /// Decompose a class extension horizontally; `route` maps a record to
    /// a fragment number in `0..n_fragments`. `predicates` describe each
    /// fragment for the physical schema.
    pub fn decompose_horizontal(
        &mut self,
        class: ClassId,
        n_fragments: usize,
        predicates: &[String],
        route: impl Fn(&[Value]) -> usize,
    ) -> Result<Vec<EntityId>, StorageError> {
        let home = match self.class_layout.get(&class) {
            Some(ClassLayout::Single(e)) => *e,
            _ => return Err(StorageError::Decomposed(class)),
        };
        let cname = self.catalog.class(class).name.clone();
        let total = self.object_count(class).max(1) as f64;
        // First pass: count per fragment for the fraction statistic.
        let mut counts = vec![0u64; n_fragments];
        {
            let segs = self.segments.read().unwrap();
            for row in segs[home.0 as usize].iter() {
                counts[route(&row.values).min(n_fragments - 1)] += 1;
            }
        }
        let mut fragments = Vec::new();
        for (i, count) in counts.iter().enumerate() {
            let id = self.physical.add_entity(
                format!("{cname}_h{i}"),
                EntitySource::Class(class),
                Some(FragmentSpec::Horizontal {
                    predicate: predicates.get(i).cloned().unwrap_or_default(),
                    fraction: *count as f64 / total,
                }),
            );
            let seg = Self::class_segment(&self.catalog, class, None, &self.width);
            self.segments.write().unwrap().push(Arc::new(seg));
            fragments.push(id);
        }
        {
            let mut segs = self.segments.write().unwrap();
            let rows: Vec<Row> = segs[home.0 as usize].iter().cloned().collect();
            for row in rows {
                let f = route(&row.values).min(n_fragments - 1);
                Arc::make_mut(&mut segs[fragments[f].0 as usize]).append(row);
            }
            Arc::make_mut(&mut segs[home.0 as usize]).clear();
        }
        self.with_buffer(|b| b.invalidate_entity(home));
        self.physical.deactivate_entity(home);
        self.class_layout
            .insert(class, ClassLayout::Horizontal(fragments.clone()));
        Ok(fragments)
    }

    // ------------------------------------------------------------------
    // Temporaries
    // ------------------------------------------------------------------

    /// Create a temporary entity (intermediate result file).
    pub fn create_temp(
        &mut self,
        name: impl Into<String>,
        field_types: Vec<ResolvedType>,
    ) -> EntityId {
        let id = self
            .physical
            .add_entity(name, EntitySource::Temporary, None);
        let rpp = self.width.records_per_page(&field_types);
        self.segments
            .write()
            .unwrap()
            .push(Arc::new(Segment::with_rpp(field_types, rpp)));
        id
    }

    /// Append a row to a temporary, counting a page write whenever a new
    /// page is started.
    pub fn append_temp(&self, entity: EntityId, values: Vec<Value>) -> Result<u32, StorageError> {
        if self.physical.entity(entity).source != EntitySource::Temporary {
            return Err(StorageError::NotTemporary(entity));
        }
        let mut segs = self.segments.write().unwrap();
        let seg = Arc::make_mut(&mut segs[entity.0 as usize]);
        let key = seg.len() as u32;
        let pos = seg.append(Row { key, values });
        let page = seg.page_of_position(pos);
        if pos.is_multiple_of(seg.rows_per_page()) {
            self.with_buffer(|b| b.write(PageId { entity, page }, true));
        }
        Ok(key)
    }

    /// Clear a temporary's contents. Residency is dropped from both the
    /// calling worker's buffer view (if one is installed) and the shared
    /// buffer, so no stale frames survive a truncate under any lane.
    pub fn truncate_temp(&self, entity: EntityId) -> Result<(), StorageError> {
        if self.physical.entity(entity).source != EntitySource::Temporary {
            return Err(StorageError::NotTemporary(entity));
        }
        Arc::make_mut(&mut self.segments.write().unwrap()[entity.0 as usize]).clear();
        let in_worker = WORKER_BUFFER.with(|w| {
            if let Some(view) = w.borrow_mut().as_mut() {
                view.invalidate_entity(entity);
                true
            } else {
                false
            }
        });
        if in_worker {
            self.buffer.lock().unwrap().invalidate_entity(entity);
        } else {
            self.with_buffer(|b| b.invalidate_entity(entity));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reading (I/O accounted)
    // ------------------------------------------------------------------

    /// Number of pages of an entity.
    pub fn num_pages(&self, entity: EntityId) -> u32 {
        self.segments.read().unwrap()[entity.0 as usize].num_pages()
    }

    /// Number of records of an entity.
    pub fn entity_len(&self, entity: EntityId) -> u32 {
        self.segments.read().unwrap()[entity.0 as usize].len() as u32
    }

    /// Field types of an entity's records.
    pub fn entity_field_types(&self, entity: EntityId) -> Vec<ResolvedType> {
        self.segments.read().unwrap()[entity.0 as usize]
            .field_types()
            .to_vec()
    }

    /// Fetch one page of an entity and return its records (cloned).
    /// Returns `None` past the last page.
    pub fn scan_page(&self, entity: EntityId, page: u32) -> Option<Vec<Row>> {
        let segs = self.segments.read().unwrap();
        let seg = &segs[entity.0 as usize];
        if page >= seg.num_pages() {
            return None;
        }
        let temp = self.is_temp_entity(entity);
        self.with_buffer(|b| b.fetch(PageId { entity, page }, temp));
        Some(seg.page_rows(page).to_vec())
    }

    /// Stream an entity page-at-a-time through the buffer manager: each
    /// page is fetched (and accounted) only when the iterator first needs
    /// a record from it, so consumers never hold more than one page of
    /// records at a time.
    pub fn scan_iter(&self, entity: EntityId) -> ScanIter<'_> {
        self.scan_iter_range(entity, 0, u32::MAX)
    }

    /// Stream the pages `page_lo..page_hi` of an entity (clamped to the
    /// entity's page count). Partition workers scan disjoint page ranges,
    /// so concatenating their outputs in partition order reproduces the
    /// serial scan order exactly.
    pub fn scan_iter_range(&self, entity: EntityId, page_lo: u32, page_hi: u32) -> ScanIter<'_> {
        ScanIter {
            db: self,
            entity,
            page: page_lo,
            end: page_hi,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Scan a whole entity, fetching every page (convenience).
    pub fn scan(&self, entity: EntityId) -> Vec<Row> {
        self.scan_iter(entity).collect()
    }

    /// Scan without I/O accounting (bulk index builds, statistics).
    pub fn scan_raw(&self, entity: EntityId) -> Vec<Row> {
        self.segments.read().unwrap()[entity.0 as usize]
            .iter()
            .cloned()
            .collect()
    }

    /// Which entity holds the given attribute of the given object.
    fn entity_holding(&self, oid: Oid, attr: AttrId) -> Result<EntityId, StorageError> {
        match self
            .class_layout
            .get(&oid.class)
            .ok_or(StorageError::NoHome(oid.class))?
        {
            ClassLayout::Single(e) => Ok(*e),
            ClassLayout::Vertical(frags) => frags
                .iter()
                .find(|(_, attrs)| attrs.contains(&attr))
                .map(|(e, _)| *e)
                .ok_or(StorageError::DanglingOid(oid)),
            ClassLayout::Horizontal(frags) => {
                let segs = self.segments.read().unwrap();
                frags
                    .iter()
                    .find(|e| segs[e.0 as usize].position_of(oid.index).is_some())
                    .copied()
                    .ok_or(StorageError::DanglingOid(oid))
            }
        }
    }

    /// Slot of `attr` within the records of `entity` (vertical fragments
    /// store only a subset of attributes).
    fn attr_slot(&self, entity: EntityId, _class: ClassId, attr: AttrId) -> usize {
        match &self.physical.entity(entity).fragment {
            Some(FragmentSpec::Vertical { attrs }) => {
                attrs.iter().position(|a| *a == attr).unwrap_or(usize::MAX)
            }
            _ => attr.0 as usize,
        }
    }

    /// Read one attribute of an object *without* I/O accounting (index
    /// builds, statistics, reference loaders).
    pub fn read_attr_raw(&self, oid: Oid, attr: AttrId) -> Result<Value, StorageError> {
        let entity = self.entity_holding(oid, attr)?;
        let segs = self.segments.read().unwrap();
        let seg = &segs[entity.0 as usize];
        let pos = seg
            .position_of(oid.index)
            .ok_or(StorageError::DanglingOid(oid))?;
        let slot = self.attr_slot(entity, oid.class, attr);
        seg.row_at(pos)
            .and_then(|r| r.values.get(slot))
            .cloned()
            .ok_or(StorageError::DanglingOid(oid))
    }

    /// Read one attribute of an object, fetching (and accounting) only the
    /// page of the fragment holding that attribute.
    pub fn read_attr(&self, oid: Oid, attr: AttrId) -> Result<Value, StorageError> {
        let entity = self.entity_holding(oid, attr)?;
        let segs = self.segments.read().unwrap();
        let seg = &segs[entity.0 as usize];
        let pos = seg
            .position_of(oid.index)
            .ok_or(StorageError::DanglingOid(oid))?;
        let page = seg.page_of_position(pos);
        self.with_buffer(|b| b.fetch(PageId { entity, page }, false));
        let slot = self.attr_slot(entity, oid.class, attr);
        seg.row_at(pos)
            .and_then(|r| r.values.get(slot))
            .cloned()
            .ok_or(StorageError::DanglingOid(oid))
    }

    /// Read a whole object (assembling vertical fragments), accounting a
    /// page fetch per fragment touched.
    pub fn read_object(&self, oid: Oid) -> Result<Vec<Value>, StorageError> {
        let layout = self
            .class_layout
            .get(&oid.class)
            .ok_or(StorageError::NoHome(oid.class))?
            .clone();
        match layout {
            ClassLayout::Single(e) => self.read_object_from(oid, e),
            ClassLayout::Horizontal(frags) => {
                let entity = {
                    let segs = self.segments.read().unwrap();
                    frags
                        .iter()
                        .find(|e| segs[e.0 as usize].position_of(oid.index).is_some())
                        .copied()
                        .ok_or(StorageError::DanglingOid(oid))?
                };
                self.read_object_from(oid, entity)
            }
            ClassLayout::Vertical(frags) => {
                let n_attrs = self.catalog.class(oid.class).attrs.len();
                let mut values = vec![Value::Null; n_attrs];
                for (entity, attrs) in frags {
                    let segs = self.segments.read().unwrap();
                    let seg = &segs[entity.0 as usize];
                    let pos = seg
                        .position_of(oid.index)
                        .ok_or(StorageError::DanglingOid(oid))?;
                    let page = seg.page_of_position(pos);
                    self.with_buffer(|b| b.fetch(PageId { entity, page }, false));
                    let row = seg.row_at(pos).ok_or(StorageError::DanglingOid(oid))?;
                    for (slot, attr) in attrs.iter().enumerate() {
                        values[attr.0 as usize] = row.values[slot].clone();
                    }
                }
                Ok(values)
            }
        }
    }

    fn read_object_from(&self, oid: Oid, entity: EntityId) -> Result<Vec<Value>, StorageError> {
        let segs = self.segments.read().unwrap();
        let seg = &segs[entity.0 as usize];
        let pos = seg
            .position_of(oid.index)
            .ok_or(StorageError::DanglingOid(oid))?;
        let page = seg.page_of_position(pos);
        self.with_buffer(|b| b.fetch(PageId { entity, page }, false));
        Ok(seg
            .row_at(pos)
            .ok_or(StorageError::DanglingOid(oid))?
            .values
            .clone())
    }

    // ------------------------------------------------------------------
    // I/O accounting
    // ------------------------------------------------------------------

    /// Run an accounting operation against the calling thread's buffer
    /// view: the thread-local worker view when one is installed, else the
    /// shared buffer manager.
    fn with_buffer<R>(&self, f: impl FnOnce(&mut BufferManager) -> R) -> R {
        WORKER_BUFFER.with(|w| {
            let mut w = w.borrow_mut();
            match w.as_mut() {
                Some(view) => f(view),
                None => f(&mut self.buffer.lock().unwrap()),
            }
        })
    }

    /// Install a private buffer-accounting view for the calling thread
    /// (`frames` frames, sharing the main buffer's recorder, with
    /// `temp_budget` as the worker's slice of the breaker memory budget;
    /// 0 = unbounded). Every subsequent fetch/write/index-read on this
    /// thread accounts against the view until
    /// [`Database::take_worker_buffer`] removes it.
    pub fn install_worker_buffer(&self, frames: usize, temp_budget: usize) {
        let view = self.buffer.lock().unwrap().fork(frames, temp_budget);
        WORKER_BUFFER.with(|w| *w.borrow_mut() = Some(view));
    }

    /// Remove the calling thread's buffer view and return its counters
    /// (merge them into the shared stats with [`Database::absorb_io`]).
    /// Returns zeroed stats if no view was installed.
    pub fn take_worker_buffer(&self) -> IoStats {
        WORKER_BUFFER
            .with(|w| w.borrow_mut().take())
            .map(|b| b.stats())
            .unwrap_or_default()
    }

    /// Fold a worker view's counters into the shared buffer statistics,
    /// so `io_stats` deltas bracket parallel subtrees exactly.
    pub fn absorb_io(&self, io: IoStats) {
        self.buffer.lock().unwrap().absorb_stats(io);
    }

    /// Number of frames of the shared buffer manager (parallel workers
    /// split this among themselves for their private views).
    pub fn buffer_frames(&self) -> usize {
        self.buffer.lock().unwrap().capacity()
    }

    /// Whether an entity is a temporary (breaker state whose pages count
    /// against the breaker memory budget).
    pub fn is_temp_entity(&self, entity: EntityId) -> bool {
        self.physical.entity(entity).source == EntitySource::Temporary
    }

    /// Cap resident temporary (breaker) pages in the shared buffer;
    /// 0 lifts the cap. Parallel workers split this budget among their
    /// private views.
    pub fn set_temp_budget(&self, pages: usize) {
        self.buffer.lock().unwrap().set_temp_budget(pages);
    }

    /// The breaker memory budget in pages (0 = unbounded).
    pub fn temp_budget_pages(&self) -> usize {
        self.buffer.lock().unwrap().temp_budget()
    }

    /// Count index page reads performed by an index probe.
    pub fn note_index_reads(&self, n: u64) {
        self.with_buffer(|b| b.add_index_reads(n));
    }

    /// Accumulated I/O statistics.
    pub fn io_stats(&self) -> IoStats {
        self.with_buffer(|b| b.stats())
    }

    /// Reset I/O counters (keeps buffer residency).
    pub fn reset_io(&self) {
        self.with_buffer(|b| b.reset_stats());
    }

    /// Drop buffer residency and counters (cold-cache measurement).
    pub fn cold_cache(&self) {
        self.buffer.lock().unwrap().clear();
    }

    /// Attach a trace recorder to the buffer manager: every subsequent
    /// page hit, miss and eviction fires a structured event on it.
    pub fn set_recorder(&self, obs: oorq_obs::Recorder) {
        self.buffer.lock().unwrap().set_recorder(obs);
    }

    /// Attach a metrics registry to the buffer manager: every subsequent
    /// page hit, miss, write, eviction and spill bumps the `storage.*`
    /// counter series. Worker views forked after this call share the
    /// same series atomics.
    pub fn set_metrics(&self, registry: &oorq_obs::MetricsRegistry) {
        self.buffer.lock().unwrap().set_metrics(registry);
    }
}

/// A streaming, page-at-a-time scan of one entity (see
/// [`Database::scan_iter`]). The iterator keeps only the records of the
/// page it is currently draining; page fetches are accounted through the
/// buffer manager exactly when they happen, so interleaved consumers
/// (e.g. a pipelined executor) observe honest LRU behaviour.
#[derive(Debug)]
pub struct ScanIter<'a> {
    db: &'a Database,
    entity: EntityId,
    page: u32,
    end: u32,
    buf: Vec<Row>,
    pos: usize,
}

impl Iterator for ScanIter<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if self.pos < self.buf.len() {
                let row = self.buf[self.pos].clone();
                self.pos += 1;
                return Some(row);
            }
            if self.page >= self.end {
                return None;
            }
            self.buf = self.db.scan_page(self.entity, self.page)?;
            self.page += 1;
            self.pos = 0;
        }
    }
}
