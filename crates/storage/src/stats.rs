//! Database statistics feeding the cost model.
//!
//! Statistics are collected by scanning segments directly (no I/O
//! accounting — a real system would maintain them incrementally).

use std::collections::{HashMap, HashSet};

use oorq_schema::{AttrId, ClassId};

use crate::database::Database;
use crate::physical::{EntityId, EntitySource};
use crate::value::Value;

/// Per-field statistics of an entity.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Number of distinct values (collections: distinct members).
    pub distinct: u64,
    /// Average number of members for collection values; 1.0 for scalars
    /// (counting non-null only).
    pub avg_fanout: f64,
    /// Fraction of records whose value is `Null`.
    pub null_fraction: f64,
    /// Largest member count of any single (non-null) value — a sound
    /// upper bound on the fanout of one record.
    pub max_fanout: u64,
    /// Largest number of records sharing one member value — a sound
    /// upper bound on the output of an equality selection.
    pub max_dup: u64,
}

impl Default for AttrStats {
    fn default() -> Self {
        AttrStats {
            distinct: 0,
            avg_fanout: 0.0,
            null_fraction: 1.0,
            max_fanout: 0,
            max_dup: 0,
        }
    }
}

/// Statistics of one atomic entity.
#[derive(Debug, Clone, Default)]
pub struct EntityStats {
    /// `‖C‖`: number of records.
    pub cardinality: u64,
    /// `|C|`: number of pages.
    pub pages: u64,
    /// Per-field statistics, in layout order.
    pub attrs: Vec<AttrStats>,
}

/// Statistics of the whole database.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    per_entity: HashMap<EntityId, EntityStats>,
    /// For self-referencing scalar attributes (e.g. `Composer.master`),
    /// the maximum and average chain length — used to estimate the number
    /// of semi-naive iterations of a fixpoint.
    chain_depth: HashMap<(ClassId, AttrId), ChainDepth>,
}

/// Chain-length statistics of a self-referencing attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainDepth {
    /// Longest chain (bounds the iteration count of the fixpoint).
    pub max: u32,
    /// Mean chain length.
    pub avg: f64,
}

impl DbStats {
    /// Collect statistics for every entity of the database.
    pub fn collect(db: &Database) -> Self {
        let mut per_entity = HashMap::new();
        for desc in db.physical().entities() {
            if desc.source == EntitySource::Temporary {
                continue;
            }
            per_entity.insert(desc.id, Self::entity_stats(db, desc.id));
        }
        let mut chain_depth = HashMap::new();
        for (ci, class) in db.catalog().classes().iter().enumerate() {
            let cid = ClassId(ci as u32);
            for (ai, attr) in class.attrs.iter().enumerate() {
                let aid = AttrId(ai as u16);
                if attr.ty.referenced_class() == Some(cid) && !attr.ty.is_collection() {
                    if let Some(d) = Self::chain_stats(db, cid, aid) {
                        chain_depth.insert((cid, aid), d);
                    }
                }
            }
        }
        DbStats {
            per_entity,
            chain_depth,
        }
    }

    fn entity_stats(db: &Database, entity: EntityId) -> EntityStats {
        let rows = db.scan_raw(entity);
        let n_fields = db.entity_field_types(entity).len();
        let cardinality = rows.len() as u64;
        let pages = db.num_pages(entity) as u64;
        let mut attrs = Vec::with_capacity(n_fields);
        for f in 0..n_fields {
            let mut distinct: HashSet<&Value> = HashSet::new();
            let mut dup: HashMap<&Value, u64> = HashMap::new();
            let mut members = 0u64;
            let mut nulls = 0u64;
            let mut non_null = 0u64;
            let mut max_fanout = 0u64;
            for row in &rows {
                match &row.values[f] {
                    Value::Null => nulls += 1,
                    v => {
                        non_null += 1;
                        let mut row_members = 0u64;
                        for m in v.members() {
                            distinct.insert(m);
                            *dup.entry(m).or_insert(0) += 1;
                            members += 1;
                            row_members += 1;
                        }
                        max_fanout = max_fanout.max(row_members);
                    }
                }
            }
            attrs.push(AttrStats {
                distinct: distinct.len() as u64,
                avg_fanout: if non_null == 0 {
                    0.0
                } else {
                    members as f64 / non_null as f64
                },
                null_fraction: if cardinality == 0 {
                    1.0
                } else {
                    nulls as f64 / cardinality as f64
                },
                max_fanout,
                max_dup: dup.values().copied().max().unwrap_or(0),
            });
        }
        EntityStats {
            cardinality,
            pages,
            attrs,
        }
    }

    /// Follow `attr` chains from every object of `class` until `Null`
    /// (with a cycle guard), computing chain-depth statistics.
    fn chain_stats(db: &Database, class: ClassId, attr: AttrId) -> Option<ChainDepth> {
        let n = db.object_count(class);
        if n == 0 {
            return None;
        }
        // Build the successor map without I/O accounting.
        let entity = *db.physical().entities_of_class(class).first()?;
        let mut succ: HashMap<u32, Option<u32>> = HashMap::new();
        for row in db.scan_raw(entity) {
            let next = match &row.values[attr.0 as usize] {
                Value::Oid(o) if o.class == class => Some(o.index),
                _ => None,
            };
            succ.insert(row.key, next);
        }
        let mut max = 0u32;
        let mut total = 0u64;
        for start in succ.keys() {
            let mut depth = 0u32;
            let mut cur = Some(*start);
            let mut hops = 0u32;
            while let Some(k) = cur {
                if hops > succ.len() as u32 {
                    break; // cycle guard
                }
                hops += 1;
                match succ.get(&k) {
                    Some(Some(next)) => {
                        depth += 1;
                        cur = Some(*next);
                    }
                    _ => cur = None,
                }
            }
            max = max.max(depth);
            total += depth as u64;
        }
        Some(ChainDepth {
            max,
            avg: total as f64 / succ.len().max(1) as f64,
        })
    }

    /// Statistics of one entity.
    pub fn entity(&self, id: EntityId) -> Option<&EntityStats> {
        self.per_entity.get(&id)
    }

    /// Insert or replace statistics for an entity (used for temporaries
    /// whose sizes are estimated rather than measured).
    pub fn set_entity(&mut self, id: EntityId, stats: EntityStats) {
        self.per_entity.insert(id, stats);
    }

    /// Chain-depth statistics of a self-referencing attribute.
    pub fn chain(&self, class: ClassId, attr: AttrId) -> Option<ChainDepth> {
        self.chain_depth.get(&(class, attr)).copied()
    }

    /// The deepest chain of any self-referencing attribute — bounds the
    /// iteration count of fixpoints over the database.
    pub fn max_chain_depth(&self) -> Option<u32> {
        self.chain_depth.values().map(|c| c.max).max()
    }

    /// The largest average chain depth of any self-referencing attribute.
    pub fn avg_chain_depth(&self) -> Option<f64> {
        self.chain_depth
            .values()
            .map(|c| c.avg)
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) if v > a => v,
                    Some(a) => a,
                })
            })
    }
}
